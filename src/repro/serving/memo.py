"""The network-level layer-result memo cache.

A serving trace asks for the same (accelerator, layer, batch) triples
millions of times: every batch of ``b`` ResNet50 images replays the
same 50-odd layer simulations.  :class:`LayerMemoCache` memoises
:meth:`AcceleratorModel.simulate_layer` on exactly that triple — keyed
by *structural* value, not object identity — which makes simulating a
million-request trace cost O(distinct layer x batch pairs) instead of
O(requests x layers).

Hashing those deep frozen-dataclass triples used to dominate the
serving hot path, so lookups now go through an :class:`Interner`:
every distinct accelerator / layer / network value maps to a small
integer id (identity-keyed fast path, structural fallback for
equal-but-distinct objects), and the memo keys are plain
``(int, int, int)`` tuples.  The steady-state 98%+-hit path is one
small-tuple dict hit; a deep hash happens once per object *identity*
ever seen (and the hashed dataclasses cache their own hash, so even
the structural fallback amortises).

A second, derived level memoises whole-network :class:`RunResult`s and
their scalar totals — batch latency, batch energy, and the summed
weight-deployment time the engine's model-switch charge needs — so
repeated batches do not even re-sum layers.  Identical layers *shared
between networks* (every zoo model ends in the same FC-sized tails,
ResNet blocks repeat internally) hit the layer level too.

The scalar-totals level is also what persists across runs: ROADMAP
noted the cold path is dominated by first-touch layer simulations, so
:func:`load_persistent_memo` / :func:`store_persistent_memo` round the
(latency, energy, deploy) totals through the runtime
:class:`~repro.runtime.cache.ResultCache` — content-addressed by
*stable structural fingerprints* (SHA-256 of the dataclass reprs;
Python object hashes are salted per process and useless on disk) and
keyed by the package code version, so editing any model invalidates
the persisted pool instead of serving stale physics.  A warm start
then serves every totals lookup without a single layer simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.systolic.layers import ConvLayer, Network
from repro.systolic.simulator import AcceleratorModel, LayerResult, RunResult

#: Experiment name the persisted memo pool is stored under in the
#: runtime result cache (one pool per code version).
MEMO_EXPERIMENT = "serving_memo"


class Interner:
    """Maps structurally-equal objects to one small integer id.

    The fast path is identity: an object seen before resolves through
    an ``id()``-keyed dict without hashing its value.  A new identity
    falls back to one structural lookup (hash + equality on the value)
    and is then pinned — interned objects are kept alive so their
    ``id()`` can never be recycled onto a different object.
    """

    __slots__ = ("_by_identity", "_by_value", "_pinned")

    def __init__(self) -> None:
        self._by_identity: dict[int, int] = {}
        self._by_value: dict[object, int] = {}
        self._pinned: list[object] = []

    def __len__(self) -> int:
        """Distinct structural values seen."""
        return len(self._by_value)

    def intern(self, obj: object) -> int:
        """The small-int id of ``obj``'s structural value."""
        token = self._by_identity.get(id(obj))
        if token is None:
            token = self._by_value.setdefault(obj, len(self._by_value))
            self._by_identity[id(obj)] = token
            self._pinned.append(obj)
        return token


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for the memo cache.

    Attributes:
        hits: layer simulations served from the memo.
        misses: layer simulations actually evaluated.
        energy_hits: whole-batch energy totals served from the memo.
        energy_misses: energy totals actually evaluated (each also
            drives the layer-level counters through its network run).
        seeded: totals rows installed from a persisted pool or a
            :class:`MemoSnapshot` broadcast (cells shipped).
        seed_hits: lookups answered by promoting one of those seeded
            rows — the warm hits a prewarm broadcast actually bought.
    """

    hits: int = 0
    misses: int = 0
    energy_hits: int = 0
    energy_misses: int = 0
    seeded: int = 0
    seed_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total layer-simulation requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of layer lookups served from the memo."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def energy_lookups(self) -> int:
        """Total whole-batch energy requests."""
        return self.energy_hits + self.energy_misses


class LayerMemoCache:
    """Memoises per-layer, per-network and per-energy simulations.

    Args:
        enabled: when False every lookup misses and nothing is stored
            — the uncached reference path, with identical results.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats = CacheStats()
        self._intern = Interner()
        self._layers: dict[tuple[int, int, int], LayerResult] = {}
        self._runs: dict[tuple[int, int, int], RunResult] = {}
        self._energy: dict[tuple[int, int, int], float] = {}
        self._latency: dict[tuple[int, int, int], float] = {}
        self._deploy: dict[tuple[int, int, int], float] = {}
        # persisted totals keyed by stable structural fingerprints,
        # consulted once per (accelerator, network, batch) miss and
        # then promoted into the interned-key dicts above
        self._seeded: dict[tuple[str, str, int],
                           tuple[float, float, float]] = {}
        self._fingerprints: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._layers)

    def simulate_layer(self, accelerator: AcceleratorModel,
                       layer: ConvLayer, batch: int) -> LayerResult:
        """Memoised :meth:`AcceleratorModel.simulate_layer`."""
        if self.enabled:
            intern = self._intern.intern
            key = (intern(accelerator), intern(layer), batch)
            cached = self._layers.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        result = accelerator.simulate_layer(layer, batch)
        if self.enabled:
            self._layers[key] = result
        return result

    def simulate(self, accelerator: AcceleratorModel, network: Network,
                 batch: int) -> RunResult:
        """Memoised whole-network simulation (per-layer granularity)."""
        if self.enabled:
            intern = self._intern.intern
            run_key = (intern(accelerator), intern(network), batch)
            cached = self._runs.get(run_key)
            if cached is not None:
                self.stats.hits += len(network.layers)
                return cached
        layers = tuple(self.simulate_layer(accelerator, layer, batch)
                       for layer in network.layers)
        run = RunResult(network=network, batch=batch, layers=layers)
        if self.enabled:
            self._runs[run_key] = run
        return run

    def energy_total(self, accelerator: AcceleratorModel,
                     network: Network, batch: int) -> float:
        """Memoised whole-batch energy (J) of one network run.

        The energy model is derived from the accelerator configuration
        (the only thing the memo key can see), not passed in — a
        caller-supplied model could silently collide across calls.
        """
        if self.enabled:
            intern = self._intern.intern
            key = (intern(accelerator), intern(network), batch)
            cached = self._energy.get(key)
            if cached is not None:
                self.stats.energy_hits += 1
                return cached
        if self.enabled and self._seed(key, accelerator, network, batch):
            self.stats.energy_hits += 1
            return self._energy[key]
        self.stats.energy_misses += 1
        from repro.core import make_energy_model
        run = self.simulate(accelerator, network, batch)
        total = make_energy_model(accelerator).evaluate(run).total
        if self.enabled:
            self._energy[key] = total
        return total

    def latency_total(self, accelerator: AcceleratorModel,
                      network: Network, batch: int) -> float:
        """Memoised whole-batch latency (s) of one network run.

        The scalar twin of :meth:`simulate`: a hit (memoised or
        persisted) counts like a run-level hit — one saved simulation
        per network layer — so the stats read identically whether the
        caller takes the :class:`RunResult` or just its latency.
        """
        if not self.enabled:
            return self.simulate(accelerator, network, batch).latency
        intern = self._intern.intern
        key = (intern(accelerator), intern(network), batch)
        cached = self._latency.get(key)
        if cached is None and self._seed(key, accelerator, network,
                                         batch):
            cached = self._latency[key]
        if cached is not None:
            self.stats.hits += len(network.layers)
            return cached
        value = self.simulate(accelerator, network, batch).latency
        self._latency[key] = value
        return value

    def deploy_total(self, accelerator: AcceleratorModel,
                     network: Network, batch: int) -> float:
        """Memoised whole-network weight-deployment time (s).

        The engine charges this when a replica switches models
        back-to-back: another model's weights were resident, so the
        incoming network's deployments cannot overlap and are paid
        whole, on top of the batch latency (which already includes
        the steady-state deploy component).
        """
        if not self.enabled:
            run = self.simulate(accelerator, network, batch)
            return sum(l.deploy_time for l in run.layers)
        intern = self._intern.intern
        key = (intern(accelerator), intern(network), batch)
        cached = self._deploy.get(key)
        if cached is None and self._seed(key, accelerator, network,
                                         batch):
            cached = self._deploy[key]
        if cached is not None:
            self.stats.hits += len(network.layers)
            return cached
        run = self.simulate(accelerator, network, batch)
        value = sum(l.deploy_time for l in run.layers)
        self._deploy[key] = value
        return value

    # -- cross-run persistence -------------------------------------------
    def _fingerprint(self, token: int, obj: object) -> str:
        """Stable structural fingerprint of one interned object."""
        fingerprint = self._fingerprints.get(token)
        if fingerprint is None:
            digest = hashlib.sha256(repr(obj).encode()).hexdigest()[:20]
            fingerprint = self._fingerprints[token] = digest
        return fingerprint

    def _seed(self, key: tuple[int, int, int],
              accelerator: AcceleratorModel, network: Network,
              batch: int) -> bool:
        """Promote a persisted totals triple under ``key``, if any."""
        if not self._seeded:
            return False
        a_token, n_token, _ = key
        seeded = self._seeded.get(
            (self._fingerprint(a_token, accelerator),
             self._fingerprint(n_token, network), batch)
        )
        if seeded is None:
            return False
        latency, energy, deploy = seeded
        self._latency[key] = latency
        self._energy[key] = energy
        self._deploy[key] = deploy
        self.stats.seed_hits += 1
        return True

    def export_totals(self) -> list[list]:
        """Serialisable (latency, energy, deploy) totals of this run.

        Rows are ``[accelerator_fp, network_fp, batch, latency,
        energy, deploy]`` with stable structural fingerprints, so a
        future process (same code version) can :meth:`load_totals`
        them and serve every totals lookup without simulating.  Only
        complete triples export — a key missing its energy or deploy
        total would leave a warm start half cold.  Loaded totals this
        run never touched are carried forward, so re-persisting after
        a narrow run does not shrink the pool.
        """
        tokens = {token: obj
                  for obj, token in self._intern._by_value.items()}
        exported = {fp_key: list(triple)
                    for fp_key, triple in self._seeded.items()}
        for key in sorted(set(self._runs) | set(self._latency)):
            a_token, n_token, batch = key
            run = self._runs.get(key)
            latency = self._latency.get(
                key, run.latency if run is not None else None)
            deploy = self._deploy.get(key)
            if deploy is None and run is not None:
                deploy = sum(l.deploy_time for l in run.layers)
            energy = self._energy.get(key)
            if energy is None and run is not None:
                # a calibration-only key (e.g. capacity probing at the
                # policy's full batch) never dispatched, so no energy
                # total exists — evaluate it off the cached run now
                # (cheap: no layer re-simulation) or the warm start
                # would re-simulate exactly these keys
                from repro.core import make_energy_model
                energy = self._energy[key] = make_energy_model(
                    tokens[a_token]).evaluate(run).total
            if latency is None or energy is None or deploy is None:
                continue
            fp_key = (self._fingerprint(a_token, tokens[a_token]),
                      self._fingerprint(n_token, tokens[n_token]),
                      batch)
            exported[fp_key] = [latency, energy, deploy]
        return [[a_fp, n_fp, batch, *triple]
                for (a_fp, n_fp, batch), triple
                in sorted(exported.items())]

    def load_totals(self, rows: list) -> int:
        """Seed persisted totals; returns how many rows were loaded."""
        loaded = 0
        for row in rows:
            try:
                a_fp, n_fp, batch, latency, energy, deploy = row
                key = (str(a_fp), str(n_fp), int(batch))
                triple = (float(latency), float(energy), float(deploy))
            except (TypeError, ValueError):
                continue  # a foreign/corrupt row must not poison the run
            self._seeded[key] = triple
            loaded += 1
        self.stats.seeded += loaded
        return loaded


@dataclass(frozen=True)
class MemoSnapshot:
    """A compact, picklable broadcast image of a memo's totals.

    ``rows`` are exactly the :meth:`LayerMemoCache.export_totals`
    rows — ``(accelerator_fp, network_fp, batch, latency, energy,
    deploy)`` keyed by *stable structural fingerprints* — so a
    snapshot built once in a parent process installs into any worker's
    fresh cache (same code version) and serves every totals lookup
    there without a single layer simulation.  The fingerprints are
    process-independent SHA-256 digests of the dataclass reprs, which
    is what makes the broadcast exact: a worker that rebuilds the same
    accelerator/network values promotes the parent's totals bit for
    bit.
    """

    rows: tuple[tuple, ...] = ()

    def __len__(self) -> int:
        return len(self.rows)

    @staticmethod
    def from_cache(cache: LayerMemoCache) -> "MemoSnapshot":
        """Snapshot every complete totals triple ``cache`` holds
        (including seeded rows it carried forward)."""
        return MemoSnapshot(tuple(tuple(row)
                                  for row in cache.export_totals()))

    def install(self, cache: LayerMemoCache) -> int:
        """Seed ``cache`` with this snapshot; returns rows loaded."""
        return cache.load_totals(list(self.rows))


def prewarm_cache(cache: LayerMemoCache, accelerator: AcceleratorModel,
                  networks, max_batch: int) -> None:
    """Touch every totals cell a serving run on ``accelerator`` can ask
    for: latency, energy and deploy at each batch size 1..max_batch of
    each network.

    The engine only ever requests batch sizes in ``[1,
    policy.max_batch]`` (retried singletons included), so a cache
    warmed here — and snapshotted via :meth:`MemoSnapshot.from_cache`
    — answers every worker lookup without simulating.  Idempotent and
    cheap when the cells are already warm (memo hits).
    """
    if max_batch < 1:
        raise ConfigError("max_batch must be >= 1")
    for network in networks:
        for batch in range(1, max_batch + 1):
            cache.latency_total(accelerator, network, batch)
            cache.energy_total(accelerator, network, batch)
            cache.deploy_total(accelerator, network, batch)


def load_persistent_memo(cache: LayerMemoCache,
                         result_cache=None) -> int:
    """Warm ``cache`` from the persisted cross-run totals pool.

    The pool lives in the runtime result cache under
    :data:`MEMO_EXPERIMENT`, content-addressed by the package code
    version — editing any model silently starts a fresh pool rather
    than serving stale physics.  Returns the number of seeded totals
    (0 when no pool exists yet).
    """
    from repro.runtime import ResultCache
    store = result_cache if result_cache is not None else ResultCache()
    entry = store.get(store.key(MEMO_EXPERIMENT, {}))
    if not entry:
        return 0
    return cache.load_totals(entry.get("rows") or [])


def store_persistent_memo(cache: LayerMemoCache,
                          result_cache=None,
                          elapsed_s: float = 0.0) -> int:
    """Persist ``cache``'s totals into the cross-run pool.

    Overwrites the pool for the current code version with the union
    of what was loaded and what this run touched (loaded totals are
    re-exported once promoted).  Returns the number of stored rows.
    """
    from repro.runtime import ResultCache
    store = result_cache if result_cache is not None else ResultCache()
    rows = cache.export_totals()
    if rows:
        store.put(store.key(MEMO_EXPERIMENT, {}), MEMO_EXPERIMENT, {},
                  rows, elapsed_s=elapsed_s)
    return len(rows)
