"""The network-level layer-result memo cache.

A serving trace asks for the same (accelerator, layer, batch) triples
millions of times: every batch of ``b`` ResNet50 images replays the
same 50-odd layer simulations.  :class:`LayerMemoCache` memoises
:meth:`AcceleratorModel.simulate_layer` on exactly that triple — keyed
by *structural* value, not object identity — which makes simulating a
million-request trace cost O(distinct layer x batch pairs) instead of
O(requests x layers).

Hashing those deep frozen-dataclass triples used to dominate the
serving hot path, so lookups now go through an :class:`Interner`:
every distinct accelerator / layer / network value maps to a small
integer id (identity-keyed fast path, structural fallback for
equal-but-distinct objects), and the memo keys are plain
``(int, int, int)`` tuples.  The steady-state 98%+-hit path is one
small-tuple dict hit; a deep hash happens once per object *identity*
ever seen (and the hashed dataclasses cache their own hash, so even
the structural fallback amortises).

A second, derived level memoises whole-network :class:`RunResult`s and
their energy totals so repeated batches do not even re-sum layers.
Identical layers *shared between networks* (every zoo model ends in
the same FC-sized tails, ResNet blocks repeat internally) hit the
layer level too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.layers import ConvLayer, Network
from repro.systolic.simulator import AcceleratorModel, LayerResult, RunResult


class Interner:
    """Maps structurally-equal objects to one small integer id.

    The fast path is identity: an object seen before resolves through
    an ``id()``-keyed dict without hashing its value.  A new identity
    falls back to one structural lookup (hash + equality on the value)
    and is then pinned — interned objects are kept alive so their
    ``id()`` can never be recycled onto a different object.
    """

    __slots__ = ("_by_identity", "_by_value", "_pinned")

    def __init__(self) -> None:
        self._by_identity: dict[int, int] = {}
        self._by_value: dict[object, int] = {}
        self._pinned: list[object] = []

    def __len__(self) -> int:
        """Distinct structural values seen."""
        return len(self._by_value)

    def intern(self, obj: object) -> int:
        """The small-int id of ``obj``'s structural value."""
        token = self._by_identity.get(id(obj))
        if token is None:
            token = self._by_value.setdefault(obj, len(self._by_value))
            self._by_identity[id(obj)] = token
            self._pinned.append(obj)
        return token


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for the memo cache.

    Attributes:
        hits: layer simulations served from the memo.
        misses: layer simulations actually evaluated.
        energy_hits: whole-batch energy totals served from the memo.
        energy_misses: energy totals actually evaluated (each also
            drives the layer-level counters through its network run).
    """

    hits: int = 0
    misses: int = 0
    energy_hits: int = 0
    energy_misses: int = 0

    @property
    def lookups(self) -> int:
        """Total layer-simulation requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of layer lookups served from the memo."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def energy_lookups(self) -> int:
        """Total whole-batch energy requests."""
        return self.energy_hits + self.energy_misses


class LayerMemoCache:
    """Memoises per-layer, per-network and per-energy simulations.

    Args:
        enabled: when False every lookup misses and nothing is stored
            — the uncached reference path, with identical results.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats = CacheStats()
        self._intern = Interner()
        self._layers: dict[tuple[int, int, int], LayerResult] = {}
        self._runs: dict[tuple[int, int, int], RunResult] = {}
        self._energy: dict[tuple[int, int, int], float] = {}

    def __len__(self) -> int:
        return len(self._layers)

    def simulate_layer(self, accelerator: AcceleratorModel,
                       layer: ConvLayer, batch: int) -> LayerResult:
        """Memoised :meth:`AcceleratorModel.simulate_layer`."""
        if self.enabled:
            intern = self._intern.intern
            key = (intern(accelerator), intern(layer), batch)
            cached = self._layers.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        result = accelerator.simulate_layer(layer, batch)
        if self.enabled:
            self._layers[key] = result
        return result

    def simulate(self, accelerator: AcceleratorModel, network: Network,
                 batch: int) -> RunResult:
        """Memoised whole-network simulation (per-layer granularity)."""
        if self.enabled:
            intern = self._intern.intern
            run_key = (intern(accelerator), intern(network), batch)
            cached = self._runs.get(run_key)
            if cached is not None:
                self.stats.hits += len(network.layers)
                return cached
        layers = tuple(self.simulate_layer(accelerator, layer, batch)
                       for layer in network.layers)
        run = RunResult(network=network, batch=batch, layers=layers)
        if self.enabled:
            self._runs[run_key] = run
        return run

    def energy_total(self, accelerator: AcceleratorModel,
                     network: Network, batch: int) -> float:
        """Memoised whole-batch energy (J) of one network run.

        The energy model is derived from the accelerator configuration
        (the only thing the memo key can see), not passed in — a
        caller-supplied model could silently collide across calls.
        """
        if self.enabled:
            intern = self._intern.intern
            key = (intern(accelerator), intern(network), batch)
            cached = self._energy.get(key)
            if cached is not None:
                self.stats.energy_hits += 1
                return cached
        self.stats.energy_misses += 1
        from repro.core import make_energy_model
        run = self.simulate(accelerator, network, batch)
        total = make_energy_model(accelerator).evaluate(run).total
        if self.enabled:
            self._energy[key] = total
        return total
