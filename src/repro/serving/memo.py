"""The network-level layer-result memo cache.

A serving trace asks for the same (accelerator, layer, batch) triples
millions of times: every batch of ``b`` ResNet50 images replays the
same 50-odd layer simulations.  :class:`LayerMemoCache` memoises
:meth:`AcceleratorModel.simulate_layer` on exactly that triple — all
three key parts are frozen dataclasses, so the key is their structural
value, not object identity — which makes simulating a million-request
trace cost O(distinct layer x batch pairs) instead of
O(requests x layers).

A second, derived level memoises whole-network :class:`RunResult`s and
their energy totals so repeated batches do not even re-sum layers.
Identical layers *shared between networks* (every zoo model ends in
the same FC-sized tails, ResNet blocks repeat internally) hit the
layer level too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.layers import ConvLayer, Network
from repro.systolic.simulator import AcceleratorModel, LayerResult, RunResult


@dataclass
class CacheStats:
    """Hit/miss accounting at the layer-simulation level.

    Attributes:
        hits: layer simulations served from the memo.
        misses: layer simulations actually evaluated.
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total layer-simulation requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo."""
        return self.hits / self.lookups if self.lookups else 0.0


class LayerMemoCache:
    """Memoises per-layer, per-network and per-energy simulations.

    Args:
        enabled: when False every lookup misses and nothing is stored
            — the uncached reference path, with identical results.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats = CacheStats()
        self._layers: dict[tuple, LayerResult] = {}
        self._runs: dict[tuple, RunResult] = {}
        self._energy: dict[tuple, float] = {}

    def __len__(self) -> int:
        return len(self._layers)

    def simulate_layer(self, accelerator: AcceleratorModel,
                       layer: ConvLayer, batch: int) -> LayerResult:
        """Memoised :meth:`AcceleratorModel.simulate_layer`."""
        key = (accelerator, layer, batch)
        if self.enabled:
            cached = self._layers.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        result = accelerator.simulate_layer(layer, batch)
        if self.enabled:
            self._layers[key] = result
        return result

    def simulate(self, accelerator: AcceleratorModel, network: Network,
                 batch: int) -> RunResult:
        """Memoised whole-network simulation (per-layer granularity)."""
        run_key = (accelerator, network, batch)
        if self.enabled:
            cached = self._runs.get(run_key)
            if cached is not None:
                self.stats.hits += len(network.layers)
                return cached
        layers = tuple(self.simulate_layer(accelerator, layer, batch)
                       for layer in network.layers)
        run = RunResult(network=network, batch=batch, layers=layers)
        if self.enabled:
            self._runs[run_key] = run
        return run

    def energy_total(self, accelerator: AcceleratorModel,
                     network: Network, batch: int) -> float:
        """Memoised whole-batch energy (J) of one network run.

        The energy model is derived from the accelerator configuration
        (the only thing the memo key can see), not passed in — a
        caller-supplied model could silently collide across calls.
        """
        key = (accelerator, network, batch)
        if self.enabled and key in self._energy:
            return self._energy[key]
        from repro.core import make_energy_model
        run = self.simulate(accelerator, network, batch)
        total = make_energy_model(accelerator).evaluate(run).total
        if self.enabled:
            self._energy[key] = total
        return total
