"""Inference request-traffic generation for the serving simulator.

A trace is a time-ordered tuple of :class:`Request` objects, each
naming a model-zoo network and an arrival instant.  Arrival shapes are
the three regimes a production fleet actually sees:

- **poisson**: memoryless steady-state traffic at a constant rate;
- **bursty**: an on/off process — back-to-back bursts at a multiple of
  the base rate separated by quiet stretches (same mean rate);
- **ramp**: a flash crowd — the rate climbs linearly from a fraction
  of the target to its peak across the trace;
- **diurnal**: a day/night wave — the rate swings sinusoidally around
  the mean, trough first (the autoscaler's bread and butter).

Rates are *relative*: a :class:`Scenario` carries a ``load`` factor
(offered load as a fraction of cluster capacity) and the serving
simulator calibrates the absolute requests/second against the
accelerator under test, so the same scenario is meaningful for a TPU
and for SMART.  Everything is seeded and deterministic.

Traces come in two physical forms with identical contents:
:func:`generate_trace` materialises the full tuple, while
:func:`stream_trace` yields the same :class:`Request` objects one at a
time with O(1) requests in memory — ``tuple(stream_trace(...)) ==
generate_trace(...)`` for every scenario and seed.  On top of the
stream, :func:`shard_trace` splits a trace deterministically across
worker shards by the same model hash :class:`~repro.serving.policies.
ShardDispatch` pins replicas with, so a sharded run partitions exactly
the traffic each home replica would have served in one process.
"""

from __future__ import annotations

import itertools
import math
import random as _random
import zlib
from bisect import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.models import model_names


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request.

    A trace holds one of these per request — slots keep the millions
    of instances a long trace materialises compact.

    Attributes:
        request_id: position in the trace (unique, ascending).
        model: model-zoo network name.
        arrival: arrival time (s) from the start of the trace.
        region: home region that admitted the request ("" for
            single-region runs; the geo tier tags regional streams).
    """

    request_id: int
    model: str
    arrival: float
    region: str = ""


@dataclass(frozen=True)
class ModelMix:
    """A weighted mix of model-zoo networks.

    Attributes:
        weights: ``(model, weight)`` pairs; weights need not sum to 1.
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigError("model mix cannot be empty")
        if any(w <= 0 for _, w in self.weights):
            raise ConfigError("model-mix weights must be positive")

    @staticmethod
    def uniform_zoo() -> "ModelMix":
        """Every zoo model with equal weight."""
        return ModelMix(tuple((name, 1.0) for name in model_names()))

    @staticmethod
    def hot(model: str, share: float = 0.5) -> "ModelMix":
        """One hot model taking ``share`` of traffic, rest uniform."""
        if not 0.0 < share < 1.0:
            raise ConfigError("hot share must be in (0, 1)")
        others = [n for n in model_names() if n != model]
        if len(others) == len(model_names()):
            raise ConfigError(f"unknown model '{model}'")
        cold = (1.0 - share) / len(others)
        return ModelMix(((model, share),)
                        + tuple((n, cold) for n in others))

    def models(self) -> tuple[str, ...]:
        """The distinct models in the mix."""
        return tuple(name for name, _ in self.weights)

    def fractions(self) -> dict[str, float]:
        """Normalised traffic share per model."""
        total = sum(w for _, w in self.weights)
        return {name: w / total for name, w in self.weights}

    def sample(self, rng: _random.Random) -> str:
        """Draw one model name."""
        names = [n for n, _ in self.weights]
        weights = [w for _, w in self.weights]
        return rng.choices(names, weights=weights, k=1)[0]

    def sampler(self) -> Callable[[_random.Random], str]:
        """A fast repeated-draw sampler, bit-identical to ``sample``.

        ``sample`` rebuilds the cumulative-weight table on every call;
        the returned closure builds it once and replays exactly the
        ``random.choices`` draw (one ``rng.random()`` per call, same
        bisect over the same accumulated floats), so a million-request
        stream samples the same models the tuple path does.
        """
        names = [n for n, _ in self.weights]
        cum = list(itertools.accumulate(w for _, w in self.weights))
        total = cum[-1] + 0.0
        hi = len(cum) - 1

        def draw(rng: _random.Random, _names=names, _cum=cum,
                 _total=total, _hi=hi, _bisect=bisect) -> str:
            return _names[_bisect(_cum, rng.random() * _total, 0, _hi)]

        return draw


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonProcess:
    """Memoryless arrivals at a constant ``rate`` (requests/s)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")

    def times(self, n: int, rng: _random.Random) -> Iterator[float]:
        """``n`` ascending arrival times (s), one draw per yield."""
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(self.rate)
            yield t

    def draws(self, n: int) -> int:
        """RNG draws :meth:`times` consumes for ``n`` arrivals."""
        return n

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        return list(self.times(n, rng))


@dataclass(frozen=True)
class BurstyProcess:
    """On/off arrivals: bursts at ``burst_factor`` x the base rate.

    Each burst delivers ``burst_size`` requests back-to-back at the
    elevated rate, then the process idles long enough that the mean
    rate stays ``rate``.
    """

    rate: float
    burst_factor: float = 5.0
    burst_size: int = 20

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if self.burst_factor <= 1.0:
            raise ConfigError("burst factor must exceed 1")
        if self.burst_size < 1:
            raise ConfigError("burst size must be >= 1")

    def times(self, n: int, rng: _random.Random) -> Iterator[float]:
        """``n`` ascending arrival times (s), one draw per yield."""
        # mean gap that restores the target rate after a fast burst
        idle_mean = self.burst_size * (1.0 / self.rate
                                       - 1.0 / (self.rate
                                                * self.burst_factor))
        done, t = 0, 0.0
        while done < n:
            for _ in range(min(self.burst_size, n - done)):
                t += rng.expovariate(self.rate * self.burst_factor)
                done += 1
                yield t
            t += rng.expovariate(1.0 / idle_mean)

    def draws(self, n: int) -> int:
        """RNG draws :meth:`times` consumes for ``n`` arrivals.

        One per arrival plus one idle draw per burst — the idle gap is
        drawn after every burst, including the final (possibly short)
        one.
        """
        return n + math.ceil(n / self.burst_size)

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        return list(self.times(n, rng))


@dataclass(frozen=True)
class RampProcess:
    """A flash crowd: the rate climbs linearly to ``rate`` (peak).

    The instantaneous rate at request ``i`` of ``n`` interpolates from
    ``start_fraction * rate`` up to ``rate``.
    """

    rate: float
    start_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0.0 < self.start_fraction <= 1.0:
            raise ConfigError("start fraction must be in (0, 1]")

    def times(self, n: int, rng: _random.Random) -> Iterator[float]:
        """``n`` ascending arrival times (s), one draw per yield."""
        t = 0.0
        for i in range(n):
            frac = i / max(1, n - 1)
            instant = self.rate * (self.start_fraction
                                   + (1.0 - self.start_fraction) * frac)
            t += rng.expovariate(instant)
            yield t

    def draws(self, n: int) -> int:
        """RNG draws :meth:`times` consumes for ``n`` arrivals."""
        return n

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        return list(self.times(n, rng))


@dataclass(frozen=True)
class DiurnalProcess:
    """A day/night wave: the rate swings sinusoidally around ``rate``.

    The instantaneous rate at request ``i`` of ``n`` is
    ``rate * (1 - amplitude * cos(2 pi * (cycles * i / n) + 2 pi *
    phase))`` — trough first (night), cresting to ``(1 + amplitude) x``
    mid-cycle, with the mean over whole cycles staying ``rate``.

    ``phase`` shifts the wave horizontally in cycle fractions: a
    region three hours east of the reference clock runs ``phase=3/24``
    ahead, so its crest lands earlier in the trace.  ``phase=0`` adds
    a literal ``+ 0.0`` to the cosine argument, which is bitwise
    identity for finite floats — unshifted traces stay bit-identical
    to the pre-phase formulation.
    """

    rate: float
    amplitude: float = 0.6
    cycles: float = 2.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0.0 < self.amplitude < 1.0:
            raise ConfigError("diurnal amplitude must be in (0, 1)")
        if self.cycles <= 0:
            raise ConfigError("diurnal cycle count must be positive")
        if not math.isfinite(self.phase):
            raise ConfigError("diurnal phase must be finite")

    def times(self, n: int, rng: _random.Random) -> Iterator[float]:
        """``n`` ascending arrival times (s), one draw per yield."""
        t = 0.0
        offset = 2.0 * math.pi * self.phase
        for i in range(n):
            frac = i / max(1, n - 1)
            instant = self.rate * (
                1.0 - self.amplitude
                * math.cos(2.0 * math.pi * self.cycles * frac + offset)
            )
            t += rng.expovariate(instant)
            yield t

    def draws(self, n: int) -> int:
        """RNG draws :meth:`times` consumes for ``n`` arrivals."""
        return n

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        return list(self.times(n, rng))


def burn_draws(process, n: int, rng: _random.Random) -> None:
    """Advance ``rng`` past the draws ``process.times(n, rng)`` makes.

    Every arrival process consumes exactly one ``rng.random()`` call
    per ``expovariate`` draw, so when the process can report its draw
    count up front the burn is a tight loop of cheap state advances —
    no logs, no generator frames, no float accumulation.  The RNG ends
    in the bit-identical state a full :meth:`times` pass leaves it in;
    processes without a ``draws`` method fall back to the real pass.
    """
    draws = getattr(process, "draws", None)
    if draws is None:
        for _ in process.times(n, rng):
            pass
        return
    random = rng.random
    for _ in range(draws(n)):
        random()


ARRIVAL_SHAPES = {
    "poisson": PoissonProcess,
    "bursty": BurstyProcess,
    "ramp": RampProcess,
    "diurnal": DiurnalProcess,
}

#: Offered load ceiling; > 1 deliberately outruns calibrated capacity
#: (the overload scenario), anything past this is almost surely a bug.
MAX_LOAD = 4.0


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named traffic scenario: arrival shape + offered load + mix.

    Attributes:
        name: scenario key.
        shape: one of :data:`ARRIVAL_SHAPES`.
        load: offered load as a fraction of calibrated cluster
            capacity (the simulator turns this into requests/s);
            values above 1 deliberately overload the cluster.
        mix: traffic mix over the model zoo.
        description: one-line summary for reports.
        faults: replica failures to inject when the simulator has no
            explicit failure plan (0 = none).
        phase: timezone offset of the diurnal wave in cycle fractions
            (see :class:`DiurnalProcess`); ignored by shapes without a
            wave to shift.  The geo tier sets this per region so each
            region's day/night crest lands at its local hour.
    """

    name: str
    shape: str
    load: float
    mix: ModelMix = field(default_factory=ModelMix.uniform_zoo)
    description: str = ""
    faults: int = 0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ConfigError(
                f"unknown arrival shape '{self.shape}'; known: "
                f"{', '.join(ARRIVAL_SHAPES)}"
            )
        if not 0.0 < self.load <= MAX_LOAD:
            raise ConfigError(f"load must be in (0, {MAX_LOAD:g}]")
        if self.faults < 0:
            raise ConfigError("fault count must be >= 0")
        if not math.isfinite(self.phase):
            raise ConfigError("scenario phase must be finite")

    def process(self, rate: float):
        """Instantiate the arrival process at an absolute rate."""
        if self.phase and self.shape == "diurnal":
            return DiurnalProcess(rate, phase=self.phase)
        return ARRIVAL_SHAPES[self.shape](rate)


#: The stock scenarios ``repro serve-sim`` reports on.
SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("steady", shape="poisson", load=0.6,
                 description="steady Poisson traffic at 60% load"),
        Scenario("bursty", shape="bursty", load=0.5,
                 description="on/off bursts, 50% mean load"),
        Scenario("ramp", shape="ramp", load=0.7,
                 description="flash crowd ramping to 70% load"),
        Scenario("hot-model", shape="poisson", load=0.6,
                 mix=ModelMix.hot("ResNet50", 0.5),
                 description="60% load, half the traffic on ResNet50"),
        Scenario("diurnal", shape="diurnal", load=0.6,
                 description="day/night wave around 60% load"),
        Scenario("overload", shape="poisson", load=1.3,
                 description="sustained 130% load; pairs with "
                             "admission control"),
        Scenario("failure-storm", shape="poisson", load=0.55,
                 faults=3,
                 description="steady 55% load with three replica "
                             "outages"),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a stock scenario.

    Raises:
        ConfigError: for unknown names.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario '{name}'; known: {', '.join(SCENARIOS)}"
        ) from None


def generate_trace(scenario: Scenario, rate: float, n: int,
                   seed: int = 0, *,
                   region: str = "") -> tuple[Request, ...]:
    """A deterministic request trace for one scenario.

    Args:
        scenario: arrival shape + mix.
        rate: absolute arrival rate (requests/s).
        n: trace length.
        seed: RNG seed; the same seed reproduces the same trace.
        region: home-region tag stamped on every request ("" for
            single-region runs; arrival draws are unaffected).
    """
    if n < 1:
        raise ConfigError("trace needs at least one request")
    rng = _random.Random(seed)
    times = scenario.process(rate).generate(n, rng)
    sample = scenario.mix.sampler()
    return tuple(
        Request(request_id=i, model=sample(rng), arrival=t,
                region=region)
        for i, t in enumerate(times)
    )


# ---------------------------------------------------------------------------
# Streaming + sharding
# ---------------------------------------------------------------------------
def stream_trace(scenario: Scenario, rate: float, n: int,
                 seed: int = 0, *,
                 region: str = "") -> Iterator[Request]:
    """The :func:`generate_trace` trace as a stream, O(1) memory.

    Yields the exact same :class:`Request` objects, in the same order:
    ``tuple(stream_trace(...)) == generate_trace(...)``.

    ``generate_trace`` draws all ``n`` arrival times first and then
    all ``n`` model samples from the *same* RNG, so a single-pass
    generator cannot reproduce it.  Instead two RNGs seeded alike walk
    the stream: one is burned through the time draws up front (O(n)
    cheap draws, no storage) so its model samples start from the state
    the one-RNG path would have reached, while the second replays the
    time draws live, one request of look-ahead at a time.
    """
    if n < 1:
        raise ConfigError("trace needs at least one request")
    process = scenario.process(rate)
    rng_models = _random.Random(seed)
    burn_draws(process, n, rng_models)
    sample = scenario.mix.sampler()
    rng_times = _random.Random(seed)
    for i, t in enumerate(process.times(n, rng_times)):
        yield Request(request_id=i, model=sample(rng_models),
                      arrival=t, region=region)


def trace_span(scenario: Scenario, rate: float, n: int,
               seed: int = 0) -> tuple[float, float]:
    """The global trace's (first arrival, last arrival) instants (s).

    A pure function of the trace parameters — no models are sampled —
    so a parent process can compute the span once and hand it to every
    :class:`TraceShard` (``span=``), sparing each worker its own O(n)
    pass of real arrival draws.
    """
    if n < 1:
        raise ConfigError("trace needs at least one request")
    process = scenario.process(rate)
    rng = _random.Random(seed)
    first = last = 0.0
    for i, t in enumerate(process.times(n, rng)):
        if i == 0:
            first = t
        last = t
    return (first, last)


def shard_key(model: str, replicas: int, shards: int) -> int:
    """The worker shard owning ``model``'s home replica.

    Uses the same ``crc32(model) % replicas`` pin as
    :class:`~repro.serving.policies.ShardDispatch`, folded onto
    ``shards`` workers — every model homed on one replica lands in one
    shard, which is what makes a sharded run bit-exact against the
    monolithic engine under shard dispatch.
    """
    return (zlib.crc32(model.encode()) % replicas) % shards


def shard_seeds(seed: int, shards: int) -> tuple[int, ...]:
    """Deterministic, distinct child seeds for per-shard randomness.

    The shard splitter itself filters one global seeded stream and
    needs no extra entropy; these are for workloads that want
    *independent* per-shard traffic (e.g. one stream per geo region)
    while staying reproducible from a single parent seed.
    """
    if shards < 1:
        raise ConfigError("shard count must be >= 1")
    rng = _random.Random(seed)
    return tuple(rng.getrandbits(63) for _ in range(shards))


class TraceShard:
    """One worker's slice of a global trace, streamed.

    Iterating yields exactly the :func:`generate_trace` requests whose
    model hashes to ``shard`` (see :func:`shard_key`), with their
    global ``request_id`` and arrival times — the union over all
    shards is the whole trace, pairwise disjoint.  ``span`` is the
    global trace's ``(first arrival, last arrival)``, known before the
    first request is yielded so shard engines can pin their drain
    horizon to the global trace end.  A parent that already knows it
    (:func:`trace_span` — it is identical for every shard of a run)
    can pass ``span=`` so the worker burns its model RNG with cheap
    state advances (:func:`burn_draws`) instead of replaying the full
    arrival pass; the streamed requests are bit-identical either way.

    Single-use: the model RNG advances as requests stream, so a second
    iteration would replay wrong — it raises instead.
    """

    def __init__(self, scenario: Scenario, rate: float, n: int,
                 seed: int, *, shards: int, shard: int,
                 replicas: int, region: str = "",
                 span: tuple[float, float] | None = None) -> None:
        if n < 1:
            raise ConfigError("trace needs at least one request")
        if shards < 1:
            raise ConfigError("shard count must be >= 1")
        if not 0 <= shard < shards:
            raise ConfigError(f"shard index {shard} outside "
                              f"[0, {shards})")
        if replicas < 1:
            raise ConfigError("replica count must be >= 1")
        self.scenario = scenario
        self.rate = rate
        self.n = n
        self.seed = seed
        self.shards = shards
        self.shard = shard
        self.replicas = replicas
        self.region = region
        self._consumed = False
        # Burn the model RNG through the time draws (as stream_trace
        # does).  Without a parent-supplied span the burn is a real
        # arrival pass recording the global first/last arrival; with
        # one it collapses to bare RNG state advances.
        self._process = scenario.process(rate)
        self._rng_models = _random.Random(seed)
        if span is None:
            first = last = 0.0
            for i, t in enumerate(self._process.times(n,
                                                      self._rng_models)):
                if i == 0:
                    first = t
                last = t
            span = (first, last)
        else:
            burn_draws(self._process, n, self._rng_models)
            span = (float(span[0]), float(span[1]))
        self.span: tuple[float, float] = span

    def __iter__(self) -> Iterator[Request]:
        if self._consumed:
            raise ConfigError("a TraceShard streams once; build a new "
                              "one to replay it")
        self._consumed = True
        return self._requests()

    def _requests(self) -> Iterator[Request]:
        sample = self.scenario.mix.sampler()
        rng_models = self._rng_models
        rng_times = _random.Random(self.seed)
        keys: dict[str, int] = {}
        replicas, shards, shard = self.replicas, self.shards, self.shard
        region = self.region
        for i, t in enumerate(self._process.times(self.n, rng_times)):
            model = sample(rng_models)
            key = keys.get(model)
            if key is None:
                key = keys[model] = shard_key(model, replicas, shards)
            if key == shard:
                yield Request(request_id=i, model=model, arrival=t,
                              region=region)


def shard_trace(scenario: Scenario, rate: float, n: int, seed: int = 0,
                *, shards: int, shard: int,
                replicas: int, region: str = "",
                span: tuple[float, float] | None = None) -> TraceShard:
    """One shard's streamed slice of the global seeded trace.

    See :class:`TraceShard`; this is the deterministic shard-splitter
    — no full trace is materialised in any process, and every request
    of ``generate_trace(scenario, rate, n, seed)`` is yielded by
    exactly one of the ``shards`` slices.  A ``region`` tag is carried
    through to the yielded requests unchanged, so region-tagged
    streams shard without losing their home label; a parent-computed
    ``span`` (:func:`trace_span`) spares the worker its own arrival
    pass.
    """
    return TraceShard(scenario, rate, n, seed, shards=shards,
                      shard=shard, replicas=replicas, region=region,
                      span=span)
