"""Inference request-traffic generation for the serving simulator.

A trace is a time-ordered tuple of :class:`Request` objects, each
naming a model-zoo network and an arrival instant.  Arrival shapes are
the three regimes a production fleet actually sees:

- **poisson**: memoryless steady-state traffic at a constant rate;
- **bursty**: an on/off process — back-to-back bursts at a multiple of
  the base rate separated by quiet stretches (same mean rate);
- **ramp**: a flash crowd — the rate climbs linearly from a fraction
  of the target to its peak across the trace;
- **diurnal**: a day/night wave — the rate swings sinusoidally around
  the mean, trough first (the autoscaler's bread and butter).

Rates are *relative*: a :class:`Scenario` carries a ``load`` factor
(offered load as a fraction of cluster capacity) and the serving
simulator calibrates the absolute requests/second against the
accelerator under test, so the same scenario is meaningful for a TPU
and for SMART.  Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.models import model_names


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request.

    A trace holds one of these per request — slots keep the millions
    of instances a long trace materialises compact.

    Attributes:
        request_id: position in the trace (unique, ascending).
        model: model-zoo network name.
        arrival: arrival time (s) from the start of the trace.
    """

    request_id: int
    model: str
    arrival: float


@dataclass(frozen=True)
class ModelMix:
    """A weighted mix of model-zoo networks.

    Attributes:
        weights: ``(model, weight)`` pairs; weights need not sum to 1.
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigError("model mix cannot be empty")
        if any(w <= 0 for _, w in self.weights):
            raise ConfigError("model-mix weights must be positive")

    @staticmethod
    def uniform_zoo() -> "ModelMix":
        """Every zoo model with equal weight."""
        return ModelMix(tuple((name, 1.0) for name in model_names()))

    @staticmethod
    def hot(model: str, share: float = 0.5) -> "ModelMix":
        """One hot model taking ``share`` of traffic, rest uniform."""
        if not 0.0 < share < 1.0:
            raise ConfigError("hot share must be in (0, 1)")
        others = [n for n in model_names() if n != model]
        if len(others) == len(model_names()):
            raise ConfigError(f"unknown model '{model}'")
        cold = (1.0 - share) / len(others)
        return ModelMix(((model, share),)
                        + tuple((n, cold) for n in others))

    def models(self) -> tuple[str, ...]:
        """The distinct models in the mix."""
        return tuple(name for name, _ in self.weights)

    def fractions(self) -> dict[str, float]:
        """Normalised traffic share per model."""
        total = sum(w for _, w in self.weights)
        return {name: w / total for name, w in self.weights}

    def sample(self, rng: _random.Random) -> str:
        """Draw one model name."""
        names = [n for n, _ in self.weights]
        weights = [w for _, w in self.weights]
        return rng.choices(names, weights=weights, k=1)[0]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonProcess:
    """Memoryless arrivals at a constant ``rate`` (requests/s)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        times, t = [], 0.0
        for _ in range(n):
            t += rng.expovariate(self.rate)
            times.append(t)
        return times


@dataclass(frozen=True)
class BurstyProcess:
    """On/off arrivals: bursts at ``burst_factor`` x the base rate.

    Each burst delivers ``burst_size`` requests back-to-back at the
    elevated rate, then the process idles long enough that the mean
    rate stays ``rate``.
    """

    rate: float
    burst_factor: float = 5.0
    burst_size: int = 20

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if self.burst_factor <= 1.0:
            raise ConfigError("burst factor must exceed 1")
        if self.burst_size < 1:
            raise ConfigError("burst size must be >= 1")

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        # mean gap that restores the target rate after a fast burst
        idle_mean = self.burst_size * (1.0 / self.rate
                                       - 1.0 / (self.rate
                                                * self.burst_factor))
        times, t = [], 0.0
        while len(times) < n:
            for _ in range(min(self.burst_size, n - len(times))):
                t += rng.expovariate(self.rate * self.burst_factor)
                times.append(t)
            t += rng.expovariate(1.0 / idle_mean)
        return times


@dataclass(frozen=True)
class RampProcess:
    """A flash crowd: the rate climbs linearly to ``rate`` (peak).

    The instantaneous rate at request ``i`` of ``n`` interpolates from
    ``start_fraction * rate`` up to ``rate``.
    """

    rate: float
    start_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0.0 < self.start_fraction <= 1.0:
            raise ConfigError("start fraction must be in (0, 1]")

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        times, t = [], 0.0
        for i in range(n):
            frac = i / max(1, n - 1)
            instant = self.rate * (self.start_fraction
                                   + (1.0 - self.start_fraction) * frac)
            t += rng.expovariate(instant)
            times.append(t)
        return times


@dataclass(frozen=True)
class DiurnalProcess:
    """A day/night wave: the rate swings sinusoidally around ``rate``.

    The instantaneous rate at request ``i`` of ``n`` is
    ``rate * (1 - amplitude * cos(2 pi * cycles * i / n))`` — trough
    first (night), cresting to ``(1 + amplitude) x`` mid-cycle, with
    the mean over whole cycles staying ``rate``.
    """

    rate: float
    amplitude: float = 0.6
    cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0.0 < self.amplitude < 1.0:
            raise ConfigError("diurnal amplitude must be in (0, 1)")
        if self.cycles <= 0:
            raise ConfigError("diurnal cycle count must be positive")

    def generate(self, n: int, rng: _random.Random) -> list[float]:
        """``n`` ascending arrival times (s)."""
        times, t = [], 0.0
        for i in range(n):
            frac = i / max(1, n - 1)
            instant = self.rate * (
                1.0 - self.amplitude
                * math.cos(2.0 * math.pi * self.cycles * frac)
            )
            t += rng.expovariate(instant)
            times.append(t)
        return times


ARRIVAL_SHAPES = {
    "poisson": PoissonProcess,
    "bursty": BurstyProcess,
    "ramp": RampProcess,
    "diurnal": DiurnalProcess,
}

#: Offered load ceiling; > 1 deliberately outruns calibrated capacity
#: (the overload scenario), anything past this is almost surely a bug.
MAX_LOAD = 4.0


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named traffic scenario: arrival shape + offered load + mix.

    Attributes:
        name: scenario key.
        shape: one of :data:`ARRIVAL_SHAPES`.
        load: offered load as a fraction of calibrated cluster
            capacity (the simulator turns this into requests/s);
            values above 1 deliberately overload the cluster.
        mix: traffic mix over the model zoo.
        description: one-line summary for reports.
        faults: replica failures to inject when the simulator has no
            explicit failure plan (0 = none).
    """

    name: str
    shape: str
    load: float
    mix: ModelMix = field(default_factory=ModelMix.uniform_zoo)
    description: str = ""
    faults: int = 0

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ConfigError(
                f"unknown arrival shape '{self.shape}'; known: "
                f"{', '.join(ARRIVAL_SHAPES)}"
            )
        if not 0.0 < self.load <= MAX_LOAD:
            raise ConfigError(f"load must be in (0, {MAX_LOAD:g}]")
        if self.faults < 0:
            raise ConfigError("fault count must be >= 0")

    def process(self, rate: float):
        """Instantiate the arrival process at an absolute rate."""
        return ARRIVAL_SHAPES[self.shape](rate)


#: The stock scenarios ``repro serve-sim`` reports on.
SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("steady", shape="poisson", load=0.6,
                 description="steady Poisson traffic at 60% load"),
        Scenario("bursty", shape="bursty", load=0.5,
                 description="on/off bursts, 50% mean load"),
        Scenario("ramp", shape="ramp", load=0.7,
                 description="flash crowd ramping to 70% load"),
        Scenario("hot-model", shape="poisson", load=0.6,
                 mix=ModelMix.hot("ResNet50", 0.5),
                 description="60% load, half the traffic on ResNet50"),
        Scenario("diurnal", shape="diurnal", load=0.6,
                 description="day/night wave around 60% load"),
        Scenario("overload", shape="poisson", load=1.3,
                 description="sustained 130% load; pairs with "
                             "admission control"),
        Scenario("failure-storm", shape="poisson", load=0.55,
                 faults=3,
                 description="steady 55% load with three replica "
                             "outages"),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a stock scenario.

    Raises:
        ConfigError: for unknown names.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario '{name}'; known: {', '.join(SCENARIOS)}"
        ) from None


def generate_trace(scenario: Scenario, rate: float, n: int,
                   seed: int = 0) -> tuple[Request, ...]:
    """A deterministic request trace for one scenario.

    Args:
        scenario: arrival shape + mix.
        rate: absolute arrival rate (requests/s).
        n: trace length.
        seed: RNG seed; the same seed reproduces the same trace.
    """
    if n < 1:
        raise ConfigError("trace needs at least one request")
    rng = _random.Random(seed)
    times = scenario.process(rate).generate(n, rng)
    return tuple(
        Request(request_id=i, model=scenario.mix.sample(rng), arrival=t)
        for i, t in enumerate(times)
    )
