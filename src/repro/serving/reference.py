"""The retained pre-optimisation serving engine: the test oracle.

PR 4 rewrote the discrete-event hot path (raw heap tuples, merge-
scanned arrivals, hoisted service/energy rates, incremental p95
window) with a hard guarantee: not one emitted float changes.  This
module keeps the straightforward engine exactly as it behaved before
the rewrite — one :class:`~repro.serving.events.Event` object per
scheduled event, every arrival heap-resident, every dispatch calling
``service_fn``/``energy_fn`` directly, every control tick re-sorting
the full latency window — so the equivalence suite can hold the
optimised engine to exact per-request tuple equality on every stock
scenario x policy x dispatch cell.

It shares the control-plane *policies* (:class:`SloPolicy`,
:class:`AutoscalePolicy`, :class:`FailurePlan`) and the result types
with :mod:`repro.serving.events` — those are pure configuration and
were not touched by the rewrite — but owns its own event loop.

Two PR 3 defects are fixed here in lockstep with the optimised engine
(so the oracle keeps matching it): the end-of-trace drain is scheduled
at the *time-order* last arrival rather than the input-order last, and
a scale-up revives a retired replica instead of growing the pool list
without bound under oscillating load.  PR 5's faithfulness fix is
likewise applied in lockstep: a batch whose replica last deployed a
*different* model's weights pays the ``switch_fn`` weight-deployment
charge before service.  Everything else is verbatim — in particular
this engine keeps the original string-matched dispatch branches and
inline control-tick logic, so it is also the oracle proving the
optimised engine's policy-object seams
(:mod:`repro.serving.policies`) introduced zero drift.

Nothing in the production path imports this module; it exists for
tests and for anyone auditing the optimised engine against a simpler
statement of the same semantics.
"""

from __future__ import annotations

import heapq
import zlib
from collections import deque
from typing import Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.eval.report import percentile
from repro.serving.events import (
    AutoscalePolicy,
    BatchRecord,
    DISPATCH_STRATEGIES,
    EngineRun,
    Event,
    EventKind,
    FailurePlan,
    Replica,
    SloPolicy,
    _InFlight,
)
from repro.serving.workload import Request

__all__ = ["ReferenceEventQueue", "ReferenceEngine", "run_reference"]


class ReferenceEventQueue:
    """The pre-optimisation event queue: one Event object per entry."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: EventKind, key: str = "",
             payload: object = None) -> None:
        """Schedule one event."""
        event = Event(time=time, kind=kind, key=key, payload=payload)
        heapq.heappush(self._heap,
                       (time, int(kind), key, self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)[-1]


class ReferenceEngine:
    """The pre-optimisation :class:`ClusterEngine`, kept verbatim.

    Same constructor contract as the optimised engine (minus the
    ``memoize_rates`` knob, which the reference predates): every
    dispatch calls ``service_fn``/``energy_fn`` directly and every
    control tick recomputes the windowed p95 with a full re-sort.
    """

    def __init__(self, replicas: Sequence[object], policy,
                 dispatch: str,
                 service_fn: Callable[[object, str, int], float],
                 energy_fn: Callable[[object, str, int], float],
                 slo: Optional[SloPolicy] = None,
                 autoscale: Optional[AutoscalePolicy] = None,
                 failures: Optional[FailurePlan] = None,
                 switch_fn: Optional[Callable[[object, str, int],
                                              float]] = None,
                 resilience: Optional[object] = None) -> None:
        if not replicas:
            raise ConfigError("cluster needs at least one replica")
        if dispatch not in DISPATCH_STRATEGIES:
            raise ConfigError(
                f"unknown dispatch '{dispatch}'; known: "
                f"{', '.join(DISPATCH_STRATEGIES)}"
            )
        self.policy = policy
        self.dispatch = dispatch
        self.service_fn = service_fn
        self.energy_fn = energy_fn
        self.switch_fn = switch_fn
        self.slo = slo
        self.autoscale = autoscale
        self.failures = failures
        self.resilience = resilience
        self._initial = list(replicas)

    # -- run -------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> EngineRun:
        """Serve a time-ordered trace and return the raw outcome."""
        if not requests:
            raise ConfigError("cannot serve an empty trace")
        # span from the time order, not the input order (shared fix
        # with the optimised engine: the DRAIN must land at the true
        # last arrival even for an unsorted trace)
        t0 = min(r.arrival for r in requests)
        t_end = max(r.arrival for r in requests)

        self._replicas = [
            Replica(index=i, accelerator=acc)
            for i, acc in enumerate(self._initial)
        ]
        self._queues: dict[str, list[Request]] = {}
        self._armed: dict[str, float] = {}
        self._inflight: dict[int, _InFlight] = {}
        self._batch_order: list[int] = []
        self._next_batch = 0
        self._rr_next = 0
        self._waiting: deque[tuple[str, tuple[Request, ...], float]] = deque()
        self._done: dict[int, tuple[float, float]] = {}
        self._shed: list[int] = []
        self._trace: list[tuple[float, int]] = [(t0, len(self._replicas))]
        self._scale_events: list[tuple[float, str]] = []
        self._redispatched = 0
        self._wasted = 0.0
        self._in_system = 0
        self._remaining = len(requests)
        self._last_scale = float("-inf")
        window = self.autoscale.window if self.autoscale else 1
        self._latency_window: deque[float] = deque(maxlen=window)
        # resilience state, mirrored from the optimised engine's
        # ``_prepare`` tail so the two stay in lockstep
        res = self.resilience
        self._res = res
        self._res_kind = res.name if res is not None else ""
        self._solo: dict[int, int] = {}
        self._timeouts = 0
        self._retries = 0
        self._hedges = 0
        self._cancels = 0
        self._degraded = 0
        if res is None:
            self._res_timeout: Optional[float] = None
        elif self._res_kind == "degrade":
            try:
                self._res_timeout = res.timeout_s(self.slo)
            except ConfigError:
                self._res_timeout = None
        else:
            self._res_timeout = res.timeout_s(self.slo)

        events = ReferenceEventQueue()
        self._events = events
        for request in requests:
            events.push(request.arrival, EventKind.ARRIVAL, payload=request)
        events.push(t_end, EventKind.DRAIN)
        if self.failures is not None:
            for outage in self.failures.resolve(t0, t_end,
                                                len(self._replicas)):
                if outage.replica >= len(self._replicas):
                    raise ConfigError(
                        f"outage targets replica {outage.replica} but the "
                        f"pool has {len(self._replicas)}"
                    )
                events.push(outage.at, EventKind.FAIL,
                            payload=outage.replica)
                events.push(outage.until, EventKind.RECOVER,
                            payload=outage.replica)
        if self.autoscale is not None:
            events.push(t0 + self.autoscale.tick, EventKind.CONTROL)

        handlers = {
            EventKind.FLUSH: self._on_flush,
            EventKind.ARRIVAL: self._on_arrival,
            EventKind.BATCH_DONE: self._on_batch_done,
            EventKind.FAIL: self._on_fail,
            EventKind.RECOVER: self._on_recover,
            EventKind.CONTROL: self._on_control,
            EventKind.DRAIN: self._on_drain,
            EventKind.TIMEOUT: self._on_timeout,
            EventKind.HEDGE: self._on_hedge,
            EventKind.CANCEL: self._on_cancel,
        }
        while len(events):
            event = events.pop()
            handlers[event.kind](event)

        batches = tuple(self._inflight[i].record
                        for i in self._batch_order
                        if self._inflight[i].alive)
        return EngineRun(
            batches=batches, done=self._done, shed=tuple(self._shed),
            replica_trace=tuple(self._trace),
            scale_events=tuple(self._scale_events),
            redispatched=self._redispatched, wasted_energy=self._wasted,
            timeouts=self._timeouts, retries=self._retries,
            hedges=self._hedges, cancels=self._cancels,
            degraded=self._degraded,
        )

    # -- event handlers --------------------------------------------------
    def _on_arrival(self, event: Event) -> None:
        request: Request = event.payload
        self._remaining -= 1
        if (self.slo is not None
                and self.slo.shed_depth is not None
                and self._in_system >= self.slo.shed_depth):
            if self._res_kind == "degrade" and self._candidates():
                self._serve_degraded(event.time, request, track=False)
                return
            self._shed.append(request.request_id)
            return
        self._in_system += 1
        queue = self._queues.setdefault(request.model, [])
        queue.append(request)
        while self.policy.ready(queue):
            batch = tuple(queue[: self.policy.max_batch])
            del queue[: self.policy.max_batch]
            self._dispatch(request.model, batch, flush=event.time)
        self._arm_flush(request.model)
        if self._res is not None and self._res_timeout is not None:
            if self._res_kind == "hedge":
                self._events.push(event.time + self._res_timeout,
                                  EventKind.HEDGE, payload=request)
            else:
                self._events.push(event.time + self._res_timeout,
                                  EventKind.TIMEOUT,
                                  payload=(False, request, 0))

    def _on_flush(self, event: Event) -> None:
        model, deadline = event.payload
        if self._armed.get(model) == deadline:
            del self._armed[model]
        queue = self._queues.get(model)
        if not queue or self.policy.deadline(queue) != deadline:
            return  # stale: the queue flushed or re-headed meanwhile
        batch = tuple(queue[: self.policy.max_batch])
        del queue[: self.policy.max_batch]
        self._dispatch(model, batch, flush=deadline)
        self._arm_flush(model)

    def _on_batch_done(self, event: Event) -> None:
        batch_id: int = event.payload
        batch = self._inflight[batch_id]
        if not batch.alive:
            return  # aborted by a failure and re-dispatched
        record = batch.record
        share = record.energy / record.size
        self._in_system -= record.size
        if self._res is not None:
            # duplicate-aware completion, mirrored from the optimised
            # engine: first copy wins, losers charge waste, and an
            # outstanding cancellable duplicate is cancelled
            for request in batch.requests:
                rid = request.request_id
                if rid in self._done:
                    self._wasted += share
                    continue
                self._done[rid] = (record.done, share)
                self._latency_window.append(record.done - request.arrival)
                solo = self._solo.pop(rid, None)
                if solo is not None and solo != batch_id:
                    self._events.push(event.time, EventKind.CANCEL,
                                      payload=solo)
        else:
            for request in batch.requests:
                self._done[request.request_id] = (record.done, share)
                self._latency_window.append(record.done - request.arrival)
        replica = self._replicas[record.replica]
        if batch_id in replica.pending:
            replica.pending.remove(batch_id)
        if replica.draining and not replica.pending:
            replica.draining = False
            replica.up = False
            self._trace.append((event.time, self._n_up()))

    def _on_fail(self, event: Event) -> None:
        replica = self._replicas[event.payload]
        if not replica.up:
            return
        replica.up = False
        replica.failed = True
        replica.draining = False
        self._trace.append((event.time, self._n_up()))
        victims, replica.pending = list(replica.pending), []
        for batch_id in victims:
            batch = self._inflight[batch_id]
            batch.alive = False
            record = batch.record
            if record.start < event.time and record.service > 0:
                progress = min(1.0, (event.time - record.start)
                               / record.service)
                self._wasted += record.energy * progress
        for batch_id in victims:
            batch = self._inflight[batch_id]
            self._redispatched += 1
            self._dispatch(batch.record.model, batch.requests,
                           flush=batch.record.flush, now=event.time)

    def _on_recover(self, event: Event) -> None:
        replica = self._replicas[event.payload]
        if replica.up or not replica.failed:
            # not down, or down by the autoscaler's choice — a stale
            # recovery must not resurrect a retired replica
            return
        replica.up = True
        replica.failed = False
        replica.draining = False
        replica.free_at = event.time
        replica.available_at = event.time
        replica.last_model = None  # the power cycle cleared the array
        replica.done_model = None
        self._trace.append((event.time, self._n_up()))
        self._drain_waiting(event.time)

    def _on_control(self, event: Event) -> None:
        policy = self.autoscale
        alive = [r for r in self._replicas if r.up and not r.draining]
        queued = self._in_system  # queued + in-flight: the real backlog
        action = 0
        if policy.metric == "queue":
            if queued > policy.high_queue * len(alive):
                action = 1
            elif queued < policy.low_queue * len(alive):
                action = -1
        elif self._latency_window:
            p95 = percentile(self._latency_window, 95)
            if p95 > policy.target_p95:
                action = 1
            elif (p95 < 0.5 * policy.target_p95
                  and queued <= policy.low_queue * len(alive)):
                action = -1
        if action and event.time - self._last_scale >= policy.cooldown:
            if action > 0 and len(alive) < policy.max_replicas:
                self._scale_up(event.time)
                self._last_scale = event.time
            elif action < 0 and len(alive) > policy.min_replicas:
                self._scale_down(event.time, alive)
                self._last_scale = event.time
        if (self._remaining or queued
                or any(r.pending for r in self._replicas)):
            self._events.push(event.time + policy.tick, EventKind.CONTROL)

    def _on_drain(self, event: Event) -> None:
        """Flush deadline-less leftovers at the end of the trace."""
        for model in sorted(self._queues):
            queue = self._queues[model]
            if queue and self.policy.deadline(queue) is not None:
                continue
            while queue:
                batch = tuple(queue[: self.policy.max_batch])
                del queue[: self.policy.max_batch]
                self._dispatch(model, batch, flush=event.time)

    # -- resilience handlers (mirrored from the optimised engine) --------
    def _on_timeout(self, event: Event) -> None:
        fire, request, attempts = event.payload
        rid = request.request_id
        if rid in self._done:
            return
        res = self._res
        if not fire:
            self._timeouts += 1
            if self._res_kind == "degrade":
                if rid not in self._solo and self._candidates():
                    self._serve_degraded(event.time, request, track=True)
                return
            if attempts >= res.budget:
                return
            attempts += 1
            self._events.push(event.time + res.backoff_s(rid, attempts),
                              EventKind.TIMEOUT,
                              payload=(True, request, attempts))
            return
        self._retries += 1
        self._in_system += 1
        dup = self._dispatch(request.model, (request,), flush=event.time,
                             now=event.time)
        if dup is not None:
            self._solo[rid] = dup
        self._events.push(event.time + self._res_timeout,
                          EventKind.TIMEOUT,
                          payload=(False, request, attempts))

    def _on_hedge(self, event: Event) -> None:
        request: Request = event.payload
        rid = request.request_id
        if rid in self._done or rid in self._solo:
            return
        candidates = self._candidates()
        if len(candidates) < 2:
            return  # never hedge without an independent destination
        ranked = sorted(candidates,
                        key=lambda r: (max(r.free_at, r.available_at),
                                       r.index))
        target = ranked[1]
        self._hedges += 1
        self._in_system += 1
        dup = self._dispatch(request.model, (request,), flush=event.time,
                             now=event.time, to=target)
        if dup is not None:
            self._solo[rid] = dup

    def _on_cancel(self, event: Event) -> None:
        batch_id: int = event.payload
        entry = self._inflight.get(batch_id)
        if entry is None or not entry.alive:
            return
        record = entry.record
        if record.done <= event.time:
            return  # BATCH_DONE at this instant already recorded it
        entry.alive = False
        self._cancels += 1
        self._in_system -= record.size
        if record.start < event.time and record.service > 0:
            progress = min(1.0, (event.time - record.start)
                           / record.service)
            self._wasted += record.energy * progress
        replica = self._replicas[record.replica]
        pending = replica.pending
        if batch_id in pending:
            was_tail = pending[-1] == batch_id
            pending.remove(batch_id)
            if was_tail:
                if pending:
                    tail = self._inflight[pending[-1]].record
                    replica.free_at = tail.done
                    replica.last_model = tail.model
                else:
                    replica.free_at = event.time

    def _serve_degraded(self, time: float, request: Request,
                        track: bool) -> None:
        res = self._res
        self._degraded += 1
        self._in_system += 1
        dup = self._dispatch(
            request.model, (request,), flush=time, now=time,
            rate_scale=(res.service_scale, res.energy_scale))
        if track and dup is not None:
            self._solo[request.request_id] = dup

    # -- internals -------------------------------------------------------
    def _n_up(self) -> int:
        return sum(1 for r in self._replicas if r.up)

    def _arm_flush(self, model: str) -> None:
        """Schedule the queue's current deadline, once per deadline."""
        queue = self._queues.get(model)
        if not queue:
            return
        deadline = self.policy.deadline(queue)
        if deadline is None or self._armed.get(model) == deadline:
            return
        self._armed[model] = deadline
        self._events.push(deadline, EventKind.FLUSH, key=model,
                          payload=(model, deadline))

    def _candidates(self) -> list[Replica]:
        return [r for r in self._replicas if r.up and not r.draining]

    def _pick_replica(self, model: str, size: int, floor: float,
                      candidates: Sequence[Replica]) -> Replica:
        """Pick a replica for a batch that can start at ``floor``."""
        if self.dispatch == "shard":
            digest = zlib.crc32(model.encode())
            home = self._replicas[digest % len(self._initial)]
            if home.up and not home.draining:
                return home
            return candidates[digest % len(candidates)]
        if self.dispatch == "least_loaded":
            return min(candidates,
                       key=lambda r: (max(r.free_at, r.available_at),
                                      r.index))
        if self.dispatch == "fastest_finish":
            def finish(replica: Replica) -> tuple[float, int]:
                start = max(floor, replica.free_at, replica.available_at)
                service = self.service_fn(replica.accelerator, model, size)
                return (start + service, replica.index)
            return min(candidates, key=finish)
        picked = candidates[self._rr_next % len(candidates)]
        self._rr_next = (self._rr_next + 1) % len(candidates)
        return picked

    def _dispatch(self, model: str, batch: tuple[Request, ...],
                  flush: float, now: Optional[float] = None,
                  to: Optional[Replica] = None,
                  rate_scale: Optional[tuple[float, float]] = None,
                  ) -> Optional[int]:
        """Serve one flushed batch on a replica (or park it)."""
        candidates = self._candidates()
        if not candidates:
            self._waiting.append((model, batch, flush))
            return None
        floor = flush if now is None else max(flush, now)
        if to is not None:
            replica = to
        else:
            replica = self._pick_replica(model, len(batch), floor,
                                         candidates)
        service = self.service_fn(replica.accelerator, model, len(batch))
        energy = self.energy_fn(replica.accelerator, model, len(batch))
        if (replica.last_model is not None
                and replica.last_model != model
                and self.switch_fn is not None):
            # lockstep with the optimised engine: a model switch pays
            # the weight-deployment charge before service
            service += self.switch_fn(replica.accelerator, model,
                                      len(batch))
        if rate_scale is not None:
            service *= rate_scale[0]
            energy *= rate_scale[1]
        replica.last_model = model
        start = max(floor, replica.free_at, replica.available_at)
        done = start + service
        replica.free_at = done
        batch_id = self._next_batch
        self._next_batch += 1
        record = BatchRecord(model=model, size=len(batch),
                             replica=replica.index, flush=flush,
                             start=start, done=done, energy=energy)
        self._inflight[batch_id] = _InFlight(record=record, requests=batch)
        self._batch_order.append(batch_id)
        replica.pending.append(batch_id)
        self._events.push(done, EventKind.BATCH_DONE, payload=batch_id)
        return batch_id

    def _drain_waiting(self, now: float) -> None:
        while self._waiting and self._candidates():
            model, batch, flush = self._waiting.popleft()
            self._dispatch(model, batch, flush=flush, now=now)

    def _scale_up(self, now: float) -> None:
        policy = self.autoscale
        for replica in self._replicas:
            if replica.up and replica.draining:
                replica.draining = False  # cancel a retirement instead
                self._scale_events.append((now, "up"))
                self._drain_waiting(now)
                return
        for replica in self._replicas:
            if not replica.up and not replica.failed and not replica.pending:
                # revive a retired replica instead of growing the pool
                # (shared fix with the optimised engine)
                replica.up = True
                replica.draining = False
                replica.free_at = now
                replica.available_at = now + policy.warmup
                replica.last_model = None  # power-gated while retired
                replica.done_model = None
                self._trace.append((now, self._n_up()))
                self._scale_events.append((now, "up"))
                self._drain_waiting(now)
                return
        replica = Replica(index=len(self._replicas),
                          accelerator=self._initial[0], free_at=now,
                          available_at=now + policy.warmup)
        self._replicas.append(replica)
        self._trace.append((now, self._n_up()))
        self._scale_events.append((now, "up"))
        self._drain_waiting(now)

    def _scale_down(self, now: float, alive: Sequence[Replica]) -> None:
        victim = min(alive, key=lambda r: (len(r.pending), -r.index))
        if victim.pending:
            victim.draining = True
        else:
            victim.up = False
            self._trace.append((now, self._n_up()))
        self._scale_events.append((now, "down"))


def run_reference(simulator, requests: Sequence[Request],
                  failures: Optional[FailurePlan] = None) -> EngineRun:
    """Serve ``requests`` with the reference engine, configured like
    ``simulator`` (a :class:`~repro.serving.simulator.ServingSimulator`).

    Shares the simulator's memo cache, so the service/energy floats
    come from the very same cached evaluations the optimised run sees
    — what is under test is the engine, not the layer simulator.

    ``failures`` overrides the simulator-level plan, mirroring
    :meth:`ServingSimulator.run`.

    The reference predates the policy seams and only implements the
    stock configuration (string dispatches, FIFO flush ordering,
    reactive :class:`AutoscalePolicy`, depth admission, no stealing);
    auditing a simulator that uses any other policy raises a clean
    :class:`~repro.errors.ConfigError` rather than silently comparing
    against an engine that ignores it.
    """
    from repro.serving.policies import (DegradePolicy, FifoFlush,
                                        HedgePolicy, RetryPolicy)
    if simulator.resilience is not None and type(
            simulator.resilience) not in (RetryPolicy, HedgePolicy,
                                          DegradePolicy):
        raise ConfigError(
            "the reference engine only implements the stock resilience "
            "policies (retry / hedge / degrade); it cannot audit custom "
            "ResiliencePolicy runs"
        )
    if simulator.autoscale is not None and not isinstance(
            simulator.autoscale, AutoscalePolicy):
        raise ConfigError(
            "the reference engine only implements the stock reactive "
            "AutoscalePolicy; it cannot audit custom ScalePolicy runs"
        )
    if simulator.flush is not None and type(simulator.flush) \
            is not FifoFlush:
        raise ConfigError(
            "the reference engine only implements the stock FIFO "
            "flush ordering; it cannot audit custom FlushPolicy runs"
        )
    if simulator.admission is not None:
        raise ConfigError(
            "the reference engine only implements the stock depth "
            "admission (slo.shed_depth); it cannot audit custom "
            "AdmissionPolicy runs"
        )
    if simulator.steal is not None:
        raise ConfigError(
            "the reference engine does not implement work stealing"
        )
    requests = tuple(sorted(requests, key=lambda r: r.arrival))
    engine = ReferenceEngine(
        replicas=simulator.pool, policy=simulator.policy,
        dispatch=simulator.dispatch,
        service_fn=lambda acc, model, size: simulator.cache.simulate(
            acc, simulator.network(model), size).latency,
        energy_fn=lambda acc, model, size: simulator.cache.energy_total(
            acc, simulator.network(model), size),
        switch_fn=lambda acc, model, size: simulator.cache.deploy_total(
            acc, simulator.network(model), size),
        slo=simulator.slo, autoscale=simulator.autoscale,
        failures=failures if failures is not None else simulator.failures,
        resilience=simulator.resilience,
    )
    return engine.run(requests)
