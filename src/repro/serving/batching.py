"""Dynamic batching policies for the serving simulator.

Requests for the *same* model queue together (a systolic batch shares
one weight deployment, so cross-model batching is meaningless); a
policy decides when a queue flushes into one accelerator batch:

- **fixed**: flush exactly every ``batch_size`` requests — maximum
  throughput, unbounded tail latency under light traffic;
- **timeout**: flush at ``max_batch`` requests *or* once the oldest
  queued request has waited ``max_wait`` seconds — the knob real
  serving stacks (Triton/TF-Serving style) expose.

Policies are pure decision objects; the discrete-event engine in
:mod:`repro.serving.events` owns the queues and the clock.  A policy
whose ``deadline`` is ever non-None drives flush-deadline events at
their exact instants; deadline-less queues drain once at the end of
the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.serving.workload import Request


@dataclass(frozen=True)
class FixedSizeBatching:
    """Flush a model queue whenever it holds ``batch_size`` requests."""

    batch_size: int = 8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError("batch size must be >= 1")

    name = "fixed"

    @property
    def max_batch(self) -> int:
        """Largest batch this policy ever emits."""
        return self.batch_size

    def ready(self, queue: Sequence[Request]) -> bool:
        """Whether the queue should flush immediately."""
        return len(queue) >= self.batch_size

    def deadline(self, queue: Sequence[Request]) -> Optional[float]:
        """Latest instant the queue may keep waiting (None = forever)."""
        return None


@dataclass(frozen=True)
class TimeoutBatching:
    """Flush at ``max_batch`` requests or after ``max_wait`` seconds."""

    max_batch: int = 8
    max_wait: float = 200e-6

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("batch size must be >= 1")
        if self.max_wait <= 0:
            raise ConfigError("batching timeout must be positive")

    name = "timeout"

    def ready(self, queue: Sequence[Request]) -> bool:
        """Whether the queue should flush immediately."""
        return len(queue) >= self.max_batch

    def deadline(self, queue: Sequence[Request]) -> Optional[float]:
        """The oldest request's arrival plus the wait budget."""
        if not queue:
            return None
        return queue[0].arrival + self.max_wait


#: Policy factories by CLI name.
POLICIES = {
    "fixed": FixedSizeBatching,
    "timeout": TimeoutBatching,
}


def make_policy(name: str, batch_size: int = 8,
                max_wait: float = 200e-6):
    """Build a policy from its CLI name.

    Raises:
        ConfigError: for unknown policy names.
    """
    if name == "fixed":
        return FixedSizeBatching(batch_size=batch_size)
    if name == "timeout":
        return TimeoutBatching(max_batch=batch_size, max_wait=max_wait)
    raise ConfigError(
        f"unknown batching policy '{name}'; known: {', '.join(POLICIES)}"
    )
