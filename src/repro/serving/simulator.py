"""Request-serving simulation over accelerator clusters.

:class:`ServingSimulator` drives a request trace through per-model
batching queues onto a cluster of accelerator replicas and reports the
serving metrics a production fleet is judged on: latency percentiles
(p50/p95/p99), sustained throughput, energy per request, and — when a
:class:`~repro.serving.events.SloPolicy` is set — per-request SLO
attainment and shed rate.

The clock lives in :class:`~repro.serving.events.ClusterEngine`, a
heap-ordered discrete-event engine (arrival / flush-deadline /
batch-done / failure / recovery / control-tick events).  On top of the
exact event core this layer configures:

- **clusters**, homogeneous (``replicas=N``) or heterogeneous
  (``accelerators=[...]`` with mixed configurations);
- **dispatch** strategies (:data:`DISPATCH_STRATEGIES`): round-robin,
  least-loaded, per-model sharding, and ``fastest_finish`` — the
  heterogeneity-aware strategy that weighs each replica's own service
  time, not just its queue;
- **autoscaling** (:class:`~repro.serving.events.AutoscalePolicy`),
  **failure injection** (:class:`~repro.serving.events.FailurePlan`)
  and **admission control** via the engine's control plane.

Batch latencies and energies are served through the
:class:`LayerMemoCache`, so a million-request trace costs O(distinct
accelerator x layer x batch) of actual simulation work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core import make_accelerator
from repro.errors import ConfigError
from repro.eval.report import fraction_within, percentile
from repro.models import get_model
from repro.serving.batching import FixedSizeBatching, TimeoutBatching
from repro.serving.events import (
    AutoscalePolicy,
    BatchRecord,
    ClusterEngine,
    DISPATCH_STRATEGIES,
    FailurePlan,
    SloPolicy,
)
from repro.serving.memo import (
    CacheStats,
    LayerMemoCache,
    MemoSnapshot,
    prewarm_cache,
)
from repro.serving.policies import (
    AdmissionPolicy,
    DispatchPolicy,
    FlushPolicy,
    ResiliencePolicy,
    ScalePolicy,
    WorkStealPolicy,
    make_dispatch,
    make_resilience,
)
from repro.serving.telemetry import Telemetry
from repro.serving.workload import Request, Scenario, generate_trace
from repro.systolic.layers import Network
from repro.systolic.simulator import AcceleratorModel

__all__ = [
    "BatchRecord",
    "DISPATCH_STRATEGIES",
    "ServingResult",
    "ServingSimulator",
]


@dataclass
class ServingResult:
    """Outcome of serving one request trace.

    Attributes:
        accelerator: accelerator name (first replica's, for mixed
            pools).
        replicas: initial cluster width.
        scenario: scenario name ("" for ad-hoc traces).
        policy: batching policy name.
        rate: offered arrival rate (requests/s).
        requests: the trace, in request-id order.
        latencies: per-request latency (s), indexed like ``requests``;
            ``inf`` for shed requests.
        energy_per_request: per-request energy (J), same indexing.
        batches: every served batch, in dispatch order.
        cache: layer-memo statistics for this run.
        slo_target: per-request latency SLO (s); 0 when unset.
        shed: request ids rejected by admission control.
        replica_trace: (time, up-replica count) at every change.
        scale_events: (time, "up"/"down") autoscale actions.
        redispatched: batches re-dispatched after replica failures.
        wasted_energy: energy burnt on aborted partial batches (J),
            cancelled duplicates and losing duplicate completions.
        stolen: batches work stealing moved to a faster replica.
        resilience: resilience policy name ("" for the stock none).
        timeouts: deadline checks that found a request unfinished.
        retries: duplicate attempts the retry policy launched.
        hedges: hedged duplicates launched to a second replica.
        cancels: losing duplicates cancelled before completion.
        degraded: requests served on the degraded path.
        accuracy_cost: mean accounted accuracy drop per request
            (degraded requests x the policy's per-request drop).
    """

    accelerator: str
    replicas: int
    scenario: str
    policy: str
    rate: float
    requests: tuple[Request, ...]
    latencies: tuple[float, ...]
    energy_per_request: tuple[float, ...]
    batches: tuple[BatchRecord, ...]
    cache: CacheStats
    slo_target: float = 0.0
    shed: tuple[int, ...] = ()
    replica_trace: tuple[tuple[float, int], ...] = ()
    scale_events: tuple[tuple[float, str], ...] = ()
    redispatched: int = 0
    wasted_energy: float = 0.0
    stolen: int = 0
    resilience: str = ""
    timeouts: int = 0
    retries: int = 0
    hedges: int = 0
    cancels: int = 0
    degraded: int = 0
    accuracy_cost: float = 0.0

    @property
    def served_latencies(self) -> tuple[float, ...]:
        """Latencies of the requests that were actually served."""
        return tuple(l for l in self.latencies if l != float("inf"))

    @property
    def shed_rate(self) -> float:
        """Fraction of the trace rejected by admission control."""
        return len(self.shed) / len(self.requests)

    @property
    def slo_attainment(self) -> float:
        """Fraction of *all* requests meeting the SLO (shed = miss)."""
        if not self.slo_target:
            return 1.0
        return fraction_within(self.latencies, self.slo_target)

    @property
    def makespan(self) -> float:
        """First arrival to last completion (s)."""
        if not self.batches:
            return 0.0
        return max(b.done for b in self.batches) - self.requests[0].arrival

    @property
    def throughput_rps(self) -> float:
        """Sustained served requests per second over the makespan."""
        if not self.makespan:
            return 0.0
        return (len(self.requests) - len(self.shed)) / self.makespan

    @property
    def replica_seconds(self) -> float:
        """Replica-time available over the makespan (autoscale-aware)."""
        if not self.batches:
            return 0.0
        end = max(b.done for b in self.batches)
        if not self.replica_trace:
            return self.replicas * self.makespan
        total, points = 0.0, list(self.replica_trace) + [(end, 0)]
        for (t, n), (t_next, _) in zip(points, points[1:]):
            total += n * max(0.0, min(t_next, end) - t)
        return total

    @property
    def utilization(self) -> float:
        """Busy fraction of the available replica-time."""
        if not self.replica_seconds:
            return 0.0
        busy = sum(b.service for b in self.batches)
        return busy / self.replica_seconds

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch size."""
        if not self.batches:
            return 0.0
        return (len(self.requests) - len(self.shed)) / len(self.batches)

    @property
    def peak_replicas(self) -> int:
        """Most replicas ever up at once."""
        if not self.replica_trace:
            return self.replicas
        return max(n for _, n in self.replica_trace)

    @property
    def low_replicas(self) -> int:
        """Fewest replicas ever up at once."""
        if not self.replica_trace:
            return self.replicas
        return min(n for _, n in self.replica_trace)

    def latency_percentile(self, q: float) -> float:
        """Served-request latency percentile ``q`` (s)."""
        return percentile(self.served_latencies, q)

    def to_row(self) -> dict:
        """The reporting row ``repro serve-sim`` prints.

        Static stock runs keep the exact PR 2 column set; SLO,
        autoscale and failure columns appear only when those features
        were active, so existing reports stay byte-compatible.
        """
        row = {
            "scenario": self.scenario,
            "policy": self.policy,
            "requests": len(self.requests),
            "rate_rps": self.rate,
            "p50_us": self.latency_percentile(50) * 1e6,
            "p95_us": self.latency_percentile(95) * 1e6,
            "p99_us": self.latency_percentile(99) * 1e6,
            "throughput_rps": self.throughput_rps,
            # over *served* requests: shed entries carry 0 J and would
            # deflate the metric exactly when shedding kicks in
            "energy_per_req_uj": (sum(self.energy_per_request)
                                  / max(1, len(self.requests)
                                        - len(self.shed)) * 1e6),
            "mean_batch": self.mean_batch,
            "utilization": self.utilization,
            "cache_hit_rate": self.cache.hit_rate,
        }
        if self.slo_target:
            row["slo_attain"] = self.slo_attainment
            row["shed_rate"] = self.shed_rate
        if self.scale_events or self.peak_replicas != self.low_replicas:
            row["replicas_low"] = self.low_replicas
            row["replicas_peak"] = self.peak_replicas
        if self.redispatched:
            row["redispatched"] = self.redispatched
        if self.stolen:
            row["stolen"] = self.stolen
        if self.resilience:
            row["resilience"] = self.resilience
            if self.timeouts:
                row["timeouts"] = self.timeouts
            if self.retries:
                row["retries"] = self.retries
            if self.hedges:
                row["hedges"] = self.hedges
            if self.cancels:
                row["cancels"] = self.cancels
            if self.degraded:
                row["degraded"] = self.degraded
            if self.accuracy_cost:
                row["accuracy_cost"] = self.accuracy_cost
        return row

    @property
    def total_energy(self) -> float:
        """All energy the trace cost (J): served batches + work burnt
        on batches a failure aborted mid-flight."""
        return sum(self.energy_per_request) + self.wasted_energy

    @property
    def attainment_per_joule(self) -> float:
        """SLO attainment bought per joule (the reactive-vs-predictive
        autoscaling figure of merit)."""
        total = self.total_energy
        return self.slo_attainment / total if total else 0.0


class ServingSimulator:
    """Serve request traffic on a cluster of accelerator replicas.

    Args:
        accelerator: the replica configuration, or a scheme name for
            :func:`repro.core.make_accelerator`.
        replicas: identical accelerators in the cluster (ignored when
            ``accelerators`` is given).
        policy: batching policy (fixed or timeout).
        dispatch: one of :data:`DISPATCH_STRATEGIES`, or a
            :class:`~repro.serving.policies.DispatchPolicy` instance.
        cache: layer-memo to use; a fresh enabled one by default.
            Pass a shared instance to reuse results across runs, or a
            disabled one for the uncached reference path.
        networks: optional name -> Network override; defaults to the
            model zoo.
        accelerators: optional per-replica configurations (models or
            scheme names) forming a heterogeneous pool.
        slo: latency SLO + admission control, or None.
        autoscale: an :class:`AutoscalePolicy` (stock reactive), a
            :class:`~repro.serving.policies.ScalePolicy` (e.g.
            :class:`~repro.serving.policies.ForecastScalePolicy`), or
            None for a static pool; scale-ups clone the first
            replica's configuration, so a heterogeneous pool grows
            with copies of its lead config.  An uncalibrated forecast
            policy is calibrated against the trace's own model mix
            before each run.
        failures: failure-injection plan, or None.
        flush: flush-ordering policy (stock FIFO by default); pass
            :class:`~repro.serving.policies.EdfFlush` for earliest-
            deadline-first with per-model priority classes.
        admission: admission policy; None derives the stock depth
            bound from ``slo.shed_depth``.
        steal: work stealing on control ticks, or None.
        telemetry: opt-in :class:`~repro.serving.telemetry.Telemetry`
            sink; every run records its event trace and metrics
            timeline into it (results stay bit-identical — the sink
            only observes).  One sink may be shared across runs; each
            run is marked with a ``run`` boundary row.
        resilience: client resilience policy — a policy instance, a
            :func:`~repro.serving.policies.make_resilience` spec
            string ("retry", "hedge:delay_us=800", ...), or None /
            "none" for the stock (bit-identical) behaviour.
        snapshot: a :class:`~repro.serving.memo.MemoSnapshot` of
            layer totals to install into the cache up front — the
            warm-start path for shard/region workers.  The memo is
            exact, so a snapshot-warmed run emits floats bit-identical
            to a cold one; it only skips re-simulating layers the
            snapshot already carries.
    """

    def __init__(self, accelerator: AcceleratorModel | str = "SMART",
                 replicas: int = 1,
                 policy: FixedSizeBatching | TimeoutBatching | None = None,
                 dispatch: str | DispatchPolicy = "round_robin",
                 cache: Optional[LayerMemoCache] = None,
                 networks: Optional[Mapping[str, Network]] = None,
                 accelerators: Optional[Sequence[AcceleratorModel | str]]
                 = None,
                 slo: Optional[SloPolicy] = None,
                 autoscale: Optional[AutoscalePolicy | ScalePolicy]
                 = None,
                 failures: Optional[FailurePlan] = None,
                 flush: Optional[FlushPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 steal: Optional[WorkStealPolicy] = None,
                 telemetry: Optional[Telemetry] = None,
                 resilience: Optional[str | ResiliencePolicy]
                 = None,
                 snapshot: Optional[MemoSnapshot] = None) -> None:
        if isinstance(accelerator, str):
            accelerator = make_accelerator(accelerator)
        if accelerators is not None:
            pool = [make_accelerator(a) if isinstance(a, str) else a
                    for a in accelerators]
            if not pool:
                raise ConfigError("cluster needs at least one replica")
            accelerator = pool[0]
            replicas = len(pool)
        else:
            if replicas < 1:
                raise ConfigError("cluster needs at least one replica")
            pool = [accelerator] * replicas
        self.accelerator = accelerator
        self.replicas = replicas
        self.pool = tuple(pool)
        self.policy = policy or TimeoutBatching()
        self.dispatch_policy = make_dispatch(dispatch)
        self.dispatch = self.dispatch_policy.name
        self.cache = cache if cache is not None else LayerMemoCache()
        self.slo = slo
        self.autoscale = autoscale
        self.failures = failures
        self.flush = flush
        self.admission = admission
        self.steal = steal
        self.telemetry = telemetry
        self.resilience = make_resilience(resilience)
        self._networks = networks
        if snapshot is not None:
            snapshot.install(self.cache)

    @property
    def heterogeneous(self) -> bool:
        """Whether the pool mixes accelerator configurations."""
        return any(acc != self.pool[0] for acc in self.pool[1:])

    # -- model / capacity helpers ---------------------------------------
    def network(self, model: str) -> Network:
        """Resolve a model name to its network."""
        if self._networks is not None:
            try:
                return self._networks[model]
            except KeyError:
                raise ConfigError(f"unknown model '{model}'") from None
        return get_model(model)

    def batch_latency(self, model: str, batch: int,
                      accelerator: Optional[AcceleratorModel]
                      = None) -> float:
        """Memoised batch latency of one model (s)."""
        accelerator = accelerator or self.accelerator
        return self.cache.latency_total(accelerator, self.network(model),
                                        batch)

    def _per_request_s(self, fractions: Mapping[str, float],
                       accelerator: AcceleratorModel) -> float:
        """Mean per-request service time of one replica on a mix (s).

        The single definition of the capacity model — ``sum(frac_m *
        T_m(b) / b)`` at the policy's full batch size — shared by the
        scenario calibration and the forecast-policy calibration so
        the two can never drift apart.
        """
        b = self.policy.max_batch
        return sum(frac * self.batch_latency(model, b, accelerator) / b
                   for model, frac in fractions.items())

    def capacity_rps(self, scenario: Scenario) -> float:
        """Calibrated cluster capacity for a scenario's mix (req/s).

        One replica serving the mix sustains ``1 /`` its
        :meth:`_per_request_s`; a heterogeneous pool sums each
        replica's own capacity.
        """
        fractions = scenario.mix.fractions()
        if not self.heterogeneous:
            return (self.replicas
                    / self._per_request_s(fractions, self.accelerator))
        return sum(1.0 / self._per_request_s(fractions, acc)
                   for acc in self.pool)

    def prewarm(self, scenario: Scenario | str) -> MemoSnapshot:
        """Warm the memo for a scenario's mix and snapshot the totals.

        Resolves every (pool configuration, mix model, batch size
        1..max_batch) cell through the cache — latency, energy and
        deploy — then exports the totals as a compact picklable
        :class:`~repro.serving.memo.MemoSnapshot` ready to broadcast
        to shard/region workers via a pool initializer.  Cells the
        cache already holds cost one lookup each, so calling this
        after calibration only adds the batches calibration skipped.
        """
        if isinstance(scenario, str):
            from repro.serving.workload import get_scenario
            scenario = get_scenario(scenario)
        networks = [self.network(model)
                    for model in scenario.mix.fractions()]
        seen: list[AcceleratorModel] = []
        for acc in self.pool:
            if not any(acc is prior or acc == prior for prior in seen):
                seen.append(acc)
        for acc in seen:
            prewarm_cache(self.cache, acc, networks,
                          self.policy.max_batch)
        return MemoSnapshot.from_cache(self.cache)

    # -- runs ------------------------------------------------------------
    def run(self, requests: Sequence[Request], scenario: str = "",
            rate: float = 0.0,
            failures: Optional[FailurePlan] = None) -> ServingResult:
        """Serve an explicit trace and collect per-request metrics.

        ``failures`` overrides the simulator-level plan for this run
        (used by :meth:`run_scenario` for fault-carrying scenarios).
        """
        requests = tuple(sorted(requests, key=lambda r: r.arrival))
        if not requests:
            raise ConfigError("cannot serve an empty trace")
        # resolve every model once, up front: fails fast on unknown
        # names and keeps name->Network resolution out of the
        # engine's dispatch path
        networks: dict[str, Network] = {}
        for request in requests:
            if request.model not in networks:
                networks[request.model] = self.network(request.model)
        cache = self.cache
        scale = self.autoscale
        # getattr: scale may also be a plain AutoscalePolicy, which
        # predates the ScalePolicy seam and never needs calibration
        if (scale is not None and getattr(scale, "needs_rate", False)
                and not scale.capacity_pinned):
            # a capacity-sizing policy (e.g. the forecasters) gets one
            # replica's throughput calibrated against the trace's own
            # model mix (scale-ups clone the lead config, so its
            # capacity is the right unit) — every run, so a policy
            # reused across simulators never keeps stale figures
            scale.calibrate(self._mix_capacity_rps(requests))
        stats0 = (cache.stats.hits, cache.stats.misses,
                  cache.stats.energy_hits, cache.stats.energy_misses,
                  cache.stats.seeded, cache.stats.seed_hits)
        if self.telemetry is not None:
            self.telemetry.begin_run(
                scenario=scenario, policy=self.policy.name,
                dispatch=self.dispatch, replicas=self.replicas,
                accelerator=self.accelerator.name, rate_rps=rate,
                requests=len(requests),
            )

        engine = self.make_engine(networks, failures=failures)
        outcome = engine.run(requests)

        shed = frozenset(outcome.shed)
        latencies = tuple(
            float("inf") if r.request_id in shed
            else outcome.done[r.request_id][0] - r.arrival
            for r in requests
        )
        energy = tuple(
            0.0 if r.request_id in shed else outcome.done[r.request_id][1]
            for r in requests
        )
        return ServingResult(
            accelerator=self.accelerator.name, replicas=self.replicas,
            scenario=scenario, policy=self.policy.name, rate=rate,
            requests=requests, latencies=latencies,
            energy_per_request=energy, batches=outcome.batches,
            # per-run delta, so a memo shared across runs still reports
            # this trace's own hit rate
            cache=CacheStats(
                hits=cache.stats.hits - stats0[0],
                misses=cache.stats.misses - stats0[1],
                energy_hits=cache.stats.energy_hits - stats0[2],
                energy_misses=cache.stats.energy_misses - stats0[3],
                seeded=cache.stats.seeded - stats0[4],
                seed_hits=cache.stats.seed_hits - stats0[5],
            ),
            slo_target=self.slo.target if self.slo else 0.0,
            shed=outcome.shed, replica_trace=outcome.replica_trace,
            scale_events=outcome.scale_events,
            redispatched=outcome.redispatched,
            wasted_energy=outcome.wasted_energy,
            stolen=outcome.stolen,
            resilience=(self.resilience.name
                        if self.resilience is not None else ""),
            timeouts=outcome.timeouts, retries=outcome.retries,
            hedges=outcome.hedges, cancels=outcome.cancels,
            degraded=outcome.degraded,
            accuracy_cost=(
                outcome.degraded * self.resilience.accuracy_drop
                / len(requests)
                if outcome.degraded
                and hasattr(self.resilience, "accuracy_drop") else 0.0),
        )

    def make_engine(self, networks: Mapping[str, Network],
                    failures: Optional[FailurePlan] = None,
                    prewarm: Optional[Sequence[tuple[str, int]]]
                    = None) -> ClusterEngine:
        """The configured :class:`ClusterEngine` over resolved models.

        ``networks`` maps every model name the trace may carry to its
        :class:`Network` — callers resolve names up front so the
        engine's dispatch path never does.  Shared by :meth:`run` and
        the sharded runner (each shard builds its own engine in its
        worker process).  ``prewarm`` (model, batch) cells are handed
        to the engine to resolve at run start — see
        :class:`~repro.serving.events.ClusterEngine`.
        """
        cache = self.cache
        return ClusterEngine(
            replicas=self.pool, policy=self.policy,
            dispatch=self.dispatch_policy,
            service_fn=lambda acc, model, size:
                cache.latency_total(acc, networks[model], size),
            energy_fn=lambda acc, model, size:
                cache.energy_total(acc, networks[model], size),
            switch_fn=lambda acc, model, size:
                cache.deploy_total(acc, networks[model], size),
            slo=self.slo, autoscale=self.autoscale,
            failures=failures if failures is not None else self.failures,
            flush=self.flush, admission=self.admission, steal=self.steal,
            telemetry=self.telemetry, resilience=self.resilience,
            # with the memo disabled the run is the uncached reference
            # path: every dispatch must reach the fns (and count)
            memoize_rates=cache.enabled,
            prewarm=prewarm,
        )

    def _mix_capacity_rps(self, requests: Sequence[Request]) -> float:
        """One lead-config replica's throughput on the trace's mix.

        The same capacity model as :meth:`capacity_rps`
        (:meth:`_per_request_s`) weighed by the trace's actual model
        frequencies, so forecast calibration works for explicit
        traces that never named a scenario.
        """
        counts = Counter(request.model for request in requests)
        total = len(requests)
        fractions = {model: count / total
                     for model, count in counts.items()}
        return 1.0 / self._per_request_s(fractions, self.pool[0])

    def run_scenario(self, scenario: Scenario | str, n_requests: int,
                     seed: int = 0) -> ServingResult:
        """Calibrate the rate, generate a trace, and serve it."""
        if isinstance(scenario, str):
            from repro.serving.workload import get_scenario
            scenario = get_scenario(scenario)
        rate = scenario.load * self.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, n_requests, seed)
        failures = self.failures
        if failures is None and scenario.faults:
            # sample the outages from the run's seed, like the
            # explicit --fail path does — otherwise every seed of a
            # fault-carrying scenario replays seed-0 outage instants
            failures = FailurePlan(count=scenario.faults, seed=seed)
        return self.run(trace, scenario=scenario.name, rate=rate,
                        failures=failures)
