"""Event-driven request-serving simulation over accelerator clusters.

:class:`ServingSimulator` drives a request trace through per-model
batching queues onto a cluster of identical accelerator replicas and
reports the serving metrics a production fleet is judged on: latency
percentiles (p50/p95/p99), sustained throughput, and energy per
request.

The event loop is exact but cheap: arrivals are processed in time
order, a queue flushes when its batching policy fires (size reached,
or the oldest request's wait budget expires between arrivals), and the
flushed batch occupies one replica for the *simulated* batch latency
of that model — served through the :class:`LayerMemoCache`, so a
million-request trace costs O(distinct layer x batch pairs) of actual
simulation work.

Dispatch strategies:

- ``round_robin``: batches rotate across replicas;
- ``least_loaded``: each batch goes to the replica that frees first;
- ``shard``: each model is pinned to one replica (keyed on a stable
  hash of its name), trading load balance for perfect weight locality.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core import make_accelerator
from repro.errors import ConfigError
from repro.eval.report import percentile
from repro.models import get_model
from repro.serving.batching import FixedSizeBatching, TimeoutBatching
from repro.serving.memo import CacheStats, LayerMemoCache
from repro.serving.workload import Request, Scenario, generate_trace
from repro.systolic.layers import Network
from repro.systolic.simulator import AcceleratorModel

DISPATCH_STRATEGIES = ("round_robin", "least_loaded", "shard")


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch.

    Attributes:
        model: network the batch ran.
        size: images in the batch.
        replica: replica index that served it.
        flush: instant the batch left its queue (s).
        start: instant the replica began serving it (s).
        done: completion instant (s).
        energy: whole-batch energy (J).
    """

    model: str
    size: int
    replica: int
    flush: float
    start: float
    done: float
    energy: float

    @property
    def service(self) -> float:
        """Pure accelerator service time (s)."""
        return self.done - self.start


@dataclass
class ServingResult:
    """Outcome of serving one request trace.

    Attributes:
        accelerator: accelerator name.
        replicas: cluster width.
        scenario: scenario name ("" for ad-hoc traces).
        policy: batching policy name.
        rate: offered arrival rate (requests/s).
        requests: the trace, in request-id order.
        latencies: per-request latency (s), indexed like ``requests``.
        energy_per_request: per-request energy (J), same indexing.
        batches: every dispatched batch, in dispatch order.
        cache: layer-memo statistics for this run.
    """

    accelerator: str
    replicas: int
    scenario: str
    policy: str
    rate: float
    requests: tuple[Request, ...]
    latencies: tuple[float, ...]
    energy_per_request: tuple[float, ...]
    batches: tuple[BatchRecord, ...]
    cache: CacheStats

    @property
    def makespan(self) -> float:
        """First arrival to last completion (s)."""
        return max(b.done for b in self.batches) - self.requests[0].arrival

    @property
    def throughput_rps(self) -> float:
        """Sustained requests per second over the makespan."""
        return len(self.requests) / self.makespan

    @property
    def utilization(self) -> float:
        """Busy fraction of the cluster over the makespan."""
        busy = sum(b.service for b in self.batches)
        return busy / (self.replicas * self.makespan)

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch size."""
        return len(self.requests) / len(self.batches)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` (s)."""
        return percentile(self.latencies, q)

    def to_row(self) -> dict:
        """The reporting row ``repro serve-sim`` prints."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "requests": len(self.requests),
            "rate_rps": self.rate,
            "p50_us": self.latency_percentile(50) * 1e6,
            "p95_us": self.latency_percentile(95) * 1e6,
            "p99_us": self.latency_percentile(99) * 1e6,
            "throughput_rps": self.throughput_rps,
            "energy_per_req_uj": (sum(self.energy_per_request)
                                  / len(self.requests) * 1e6),
            "mean_batch": self.mean_batch,
            "utilization": self.utilization,
            "cache_hit_rate": self.cache.hit_rate,
        }


class ServingSimulator:
    """Serve request traffic on a cluster of accelerator replicas.

    Args:
        accelerator: the replica configuration, or a scheme name for
            :func:`repro.core.make_accelerator`.
        replicas: identical accelerators in the cluster.
        policy: batching policy (fixed or timeout).
        dispatch: one of :data:`DISPATCH_STRATEGIES`.
        cache: layer-memo to use; a fresh enabled one by default.
            Pass a shared instance to reuse results across runs, or a
            disabled one for the uncached reference path.
        networks: optional name -> Network override; defaults to the
            model zoo.
    """

    def __init__(self, accelerator: AcceleratorModel | str = "SMART",
                 replicas: int = 1,
                 policy: FixedSizeBatching | TimeoutBatching | None = None,
                 dispatch: str = "round_robin",
                 cache: Optional[LayerMemoCache] = None,
                 networks: Optional[Mapping[str, Network]] = None) -> None:
        if isinstance(accelerator, str):
            accelerator = make_accelerator(accelerator)
        if replicas < 1:
            raise ConfigError("cluster needs at least one replica")
        if dispatch not in DISPATCH_STRATEGIES:
            raise ConfigError(
                f"unknown dispatch '{dispatch}'; known: "
                f"{', '.join(DISPATCH_STRATEGIES)}"
            )
        self.accelerator = accelerator
        self.replicas = replicas
        self.policy = policy or TimeoutBatching()
        self.dispatch = dispatch
        self.cache = cache if cache is not None else LayerMemoCache()
        self._networks = networks

    # -- model / capacity helpers ---------------------------------------
    def network(self, model: str) -> Network:
        """Resolve a model name to its network."""
        if self._networks is not None:
            try:
                return self._networks[model]
            except KeyError:
                raise ConfigError(f"unknown model '{model}'") from None
        return get_model(model)

    def batch_latency(self, model: str, batch: int) -> float:
        """Memoised batch latency of one model (s)."""
        return self.cache.simulate(self.accelerator, self.network(model),
                                   batch).latency

    def capacity_rps(self, scenario: Scenario) -> float:
        """Calibrated cluster capacity for a scenario's mix (req/s).

        One replica serving the mix at the policy's full batch size
        sustains ``1 / sum(frac_m * T_m(b) / b)`` requests per second.
        """
        b = self.policy.max_batch
        per_request = sum(
            frac * self.batch_latency(model, b) / b
            for model, frac in scenario.mix.fractions().items()
        )
        return self.replicas / per_request

    # -- event loop ------------------------------------------------------
    def run(self, requests: Sequence[Request], scenario: str = "",
            rate: float = 0.0) -> ServingResult:
        """Serve an explicit trace and collect per-request metrics."""
        requests = tuple(sorted(requests, key=lambda r: r.arrival))
        if not requests:
            raise ConfigError("cannot serve an empty trace")
        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
        self._busy = [0.0] * self.replicas
        self._rr_next = 0
        self._queues: dict[str, list[Request]] = {}
        self._batches: list[BatchRecord] = []
        self._done: dict[int, tuple[float, float]] = {}

        for request in requests:
            self._flush_due(request.arrival)
            queue = self._queues.setdefault(request.model, [])
            queue.append(request)
            while self.policy.ready(queue):
                self._dispatch(request.model,
                               queue[: self.policy.max_batch],
                               flush=request.arrival)
                del queue[: self.policy.max_batch]
        self._drain(requests[-1].arrival)

        latencies = tuple(self._done[r.request_id][0] - r.arrival
                          for r in requests)
        energy = tuple(self._done[r.request_id][1] for r in requests)
        return ServingResult(
            accelerator=self.accelerator.name, replicas=self.replicas,
            scenario=scenario, policy=self.policy.name, rate=rate,
            requests=requests, latencies=latencies,
            energy_per_request=energy, batches=tuple(self._batches),
            # per-run delta, so a memo shared across runs still reports
            # this trace's own hit rate
            cache=CacheStats(hits=self.cache.stats.hits - hits0,
                             misses=self.cache.stats.misses - misses0),
        )

    def run_scenario(self, scenario: Scenario | str, n_requests: int,
                     seed: int = 0) -> ServingResult:
        """Calibrate the rate, generate a trace, and serve it."""
        if isinstance(scenario, str):
            from repro.serving.workload import get_scenario
            scenario = get_scenario(scenario)
        rate = scenario.load * self.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, n_requests, seed)
        return self.run(trace, scenario=scenario.name, rate=rate)

    # -- internals -------------------------------------------------------
    def _flush_due(self, now: float) -> None:
        """Flush every queue whose wait budget expires by ``now``."""
        while True:
            due = [
                (deadline, model)
                for model, queue in self._queues.items()
                if queue
                for deadline in (self.policy.deadline(queue),)
                if deadline is not None and deadline <= now
            ]
            if not due:
                return
            deadline, model = min(due)
            queue = self._queues[model]
            self._dispatch(model, queue[: self.policy.max_batch],
                           flush=deadline)
            del queue[: self.policy.max_batch]

    def _drain(self, end: float) -> None:
        """Flush every remaining request at the end of the trace."""
        self._flush_due(float("inf"))
        for model in sorted(self._queues):
            queue = self._queues[model]
            while queue:
                self._dispatch(model, queue[: self.policy.max_batch],
                               flush=end)
                del queue[: self.policy.max_batch]

    def _pick_replica(self, model: str) -> int:
        if self.dispatch == "shard":
            return zlib.crc32(model.encode()) % self.replicas
        if self.dispatch == "least_loaded":
            return min(range(self.replicas), key=self._busy.__getitem__)
        picked = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.replicas
        return picked

    def _dispatch(self, model: str, batch: Sequence[Request],
                  flush: float) -> None:
        """Serve one flushed batch on a replica."""
        size = len(batch)
        network = self.network(model)
        service = self.cache.simulate(self.accelerator, network,
                                      size).latency
        energy = self.cache.energy_total(self.accelerator, network, size)
        replica = self._pick_replica(model)
        start = max(flush, self._busy[replica])
        done = start + service
        self._busy[replica] = done
        self._batches.append(BatchRecord(
            model=model, size=size, replica=replica, flush=flush,
            start=start, done=done, energy=energy,
        ))
        for request in batch:
            self._done[request.request_id] = (done, energy / size)
