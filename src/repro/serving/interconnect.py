"""Deterministic inter-region link model for the geo serving tier.

The geo tier treats the wide-area network as a static topology of
identical links: every hop costs a fixed base latency (propagation +
switching) plus the store-and-forward serialisation time of the
request payload over the link bandwidth.  Comm-time between two
regions is therefore

    ``hops(src, dst) * (base_latency + payload_bits / bandwidth)``

— a pure function of the endpoints and payload size, with no queueing
state, so every worker process computes the exact same delay for the
same request and geo runs stay deterministic and mergeable.

Three stock topologies cover the shapes real fleets deploy:

- **ring**: regions on a cycle; hop count is the shorter cyclic
  distance (cheap links, diameter grows with region count);
- **mesh**: a full crossbar; every remote region is one hop away
  (the flat "every region peers with every region" ideal);
- **tree**: regions as nodes of a complete binary tree; hop count is
  the path through the lowest common ancestor (hub-and-spoke
  hierarchies, worst diameter but fewest links).

Intra-region traffic never touches the interconnect: ``delay(r, r,
...)`` is exactly ``0.0``, which is what makes a single-region geo run
bit-identical to the plain cluster engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Link topologies :class:`Interconnect` understands.
TOPOLOGIES = ("ring", "mesh", "tree")

#: Default per-request payload: one 224x224 RGB frame (bytes), the
#: input tensor every zoo CNN consumes.
REQUEST_BYTES = 224 * 224 * 3


@dataclass(frozen=True)
class Interconnect:
    """A static inter-region network: topology + identical links.

    Attributes:
        regions: number of regions (nodes).
        topology: one of :data:`TOPOLOGIES`.
        bandwidth_gbps: per-link bandwidth (Gbit/s).
        base_latency_us: per-hop base latency (microseconds) —
            propagation plus switching, charged once per hop.
    """

    regions: int
    topology: str = "mesh"
    bandwidth_gbps: float = 10.0
    base_latency_us: float = 50.0

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ConfigError("interconnect needs at least one region")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology '{self.topology}'; known: "
                f"{', '.join(TOPOLOGIES)}"
            )
        if self.bandwidth_gbps <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.base_latency_us < 0:
            raise ConfigError("base latency must be >= 0")

    def _check(self, region: int) -> None:
        if not 0 <= region < self.regions:
            raise ConfigError(f"region index {region} outside "
                              f"[0, {self.regions})")

    def hops(self, src: int, dst: int) -> int:
        """Link hops between two regions (0 for ``src == dst``)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if self.topology == "mesh":
            return 1
        if self.topology == "ring":
            d = abs(src - dst)
            return min(d, self.regions - d)
        # tree: regions are nodes of a complete binary tree in heap
        # order; walk both endpoints up to their lowest common
        # ancestor, counting edges.
        a, b, count = src, dst, 0
        while a != b:
            if a > b:
                a = (a - 1) // 2
            else:
                b = (b - 1) // 2
            count += 1
        return count

    def diameter(self) -> int:
        """The worst-case hop count over all region pairs."""
        return max(self.hops(a, b)
                   for a in range(self.regions)
                   for b in range(self.regions))

    def delay(self, src: int, dst: int,
              nbytes: int = REQUEST_BYTES) -> float:
        """Comm-time (s) to move ``nbytes`` from ``src`` to ``dst``.

        Store-and-forward: every hop charges the base latency plus the
        full serialisation time of the payload.  Exactly ``0.0`` when
        ``src == dst``.
        """
        if nbytes < 0:
            raise ConfigError("payload size must be >= 0")
        hops = self.hops(src, dst)
        if not hops:
            return 0.0
        per_hop = (self.base_latency_us * 1e-6
                   + nbytes * 8.0 / (self.bandwidth_gbps * 1e9))
        return hops * per_hop
