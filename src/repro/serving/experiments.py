"""Registry-facing serving experiments (``serving_*`` sweep targets).

These return plain dict rows like every other experiment, so the
runtime can cache them, sweep their parameters and render them through
the shared reporting path::

    repro sweep serving_grid --param replicas=1,2,4
    repro sweep serving_scaling --param replicas=1,2,4,8
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import make_accelerator
from repro.serving.batching import POLICIES, make_policy
from repro.serving.memo import LayerMemoCache
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import SCENARIOS, get_scenario


def serving_grid(requests: int = 2000, accelerator: str = "SMART",
                 replicas: int = 2, batch_size: int = 8,
                 dispatch: str = "round_robin", seed: int = 7,
                 scenarios: Optional[Sequence[str]] = None,
                 policies: Optional[Sequence[str]] = None,
                 cache: Optional[LayerMemoCache] = None) -> list[dict]:
    """Percentile rows for scenario x batching-policy cells.

    Defaults to every stock scenario and policy; ``repro serve-sim``
    narrows the grid through ``scenarios``/``policies``.  One shared
    memo cache serves the whole grid, so only the first cell pays for
    fresh layer simulations.
    """
    config = make_accelerator(accelerator)
    cache = cache if cache is not None else LayerMemoCache()
    rows = []
    for scenario in [get_scenario(n) for n in scenarios or SCENARIOS]:
        for policy_name in policies or POLICIES:
            simulator = ServingSimulator(
                accelerator=config, replicas=replicas,
                policy=make_policy(policy_name, batch_size=batch_size),
                dispatch=dispatch, cache=cache,
            )
            result = simulator.run_scenario(scenario, requests, seed=seed)
            rows.append(result.to_row())
    return rows


def serving_scaling(scenario: str = "steady", policy: str = "timeout",
                    requests: int = 2000, accelerator: str = "SMART",
                    replicas: int | None = None, batch_size: int = 8,
                    dispatch: str = "least_loaded",
                    seed: int = 7) -> list[dict]:
    """Throughput/latency scaling with cluster width.

    ``replicas=None`` reports the 1/2/4/8 curve in one call; a single
    value makes it a one-row sweep target.
    """
    widths = (1, 2, 4, 8) if replicas is None else (int(replicas),)
    config = make_accelerator(accelerator)
    cache = LayerMemoCache()
    rows = []
    for width in widths:
        simulator = ServingSimulator(
            accelerator=config, replicas=width,
            policy=make_policy(policy, batch_size=batch_size),
            dispatch=dispatch, cache=cache,
        )
        result = simulator.run_scenario(scenario, requests, seed=seed)
        row = result.to_row()
        row["replicas"] = width
        rows.append(row)
    return rows


def _register() -> None:
    from repro.runtime.registry import register_experiment

    register_experiment(
        "serving_grid", serving_grid,
        "serving percentiles, every scenario x policy; params: "
        "requests, accelerator, replicas, batch_size, dispatch, seed",
        figure=False)
    register_experiment(
        "serving_scaling", serving_scaling,
        "serving throughput vs cluster width; params: scenario, "
        "policy, requests, accelerator, replicas, batch_size, "
        "dispatch, seed", figure=False)


_register()
