"""Registry-facing serving experiments (``serving_*`` sweep targets).

These return plain dict rows like every other experiment, so the
runtime can cache them, sweep their parameters and render them through
the shared reporting path::

    repro sweep serving_grid --param replicas=1,2,4
    repro sweep serving_scaling --param replicas=1,2,4,8
    repro sweep serving_slo --param shed_depth=0,32,128
    repro sweep serving_autoscale --param scenario=diurnal,bursty
    repro sweep serving_forecast --param scale=reactive-p95,ewma,holt
    repro sweep serving_geo --param geo=home,follow_sun,cheapest_joule

Control-plane knobs arrive as plain scalars (microseconds, counts,
``"min:max"`` / ``"model=N"`` strings) so sweep parameters stay
JSON-serialisable for the content-addressed result cache; the policy
*objects* (:mod:`repro.serving.policies`) are built here.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core import make_accelerator
from repro.errors import ConfigError
from repro.serving.batching import POLICIES, make_policy
from repro.serving.events import AutoscalePolicy, FailurePlan, SloPolicy
from repro.serving.memo import LayerMemoCache
from repro.serving.policies import (
    ForecastScalePolicy,
    WorkStealPolicy,
    make_flush,
    make_resilience,
    make_scale,
)
from repro.serving.sharding import ShardedEngine
from repro.serving.simulator import ServingSimulator
from repro.serving.telemetry import Telemetry
from repro.serving.workload import SCENARIOS, get_scenario


def parse_autoscale(spec: str, metric: str = "queue",
                    target_p95_us: float = 0.0
                    ) -> Optional[AutoscalePolicy]:
    """Build an :class:`AutoscalePolicy` from a ``"min:max"`` spec.

    Empty spec means no autoscaling; ``target_p95_us`` switches the
    metric to windowed p95 when positive.

    Raises:
        ConfigError: on malformed specs.
    """
    if not spec:
        return None
    head, sep, tail = spec.partition(":")
    try:
        low = int(head)
        high = int(tail) if sep else low
    except ValueError:
        raise ConfigError(
            f"bad autoscale spec {spec!r}; expected MIN:MAX"
        ) from None
    if target_p95_us > 0:
        return AutoscalePolicy(min_replicas=low, max_replicas=high,
                               metric="p95",
                               target_p95=target_p95_us * 1e-6)
    return AutoscalePolicy(min_replicas=low, max_replicas=high,
                           metric=metric)


def parse_priorities(spec) -> dict[str, int]:
    """Per-model priority classes from ``"model=N,model2=M"`` (or a
    mapping, passed through normalised).  Higher N is more urgent.

    Raises:
        ConfigError: on malformed entries or non-integer classes.
    """
    if not spec:
        return {}
    if isinstance(spec, Mapping):
        items = spec.items()
    else:
        items = []
        for chunk in str(spec).split(","):
            model, eq, value = chunk.partition("=")
            if not eq or not model:
                raise ConfigError(
                    f"bad priority {chunk!r}; expected model=N"
                )
            items.append((model, value))
    priorities = {}
    for model, value in items:
        try:
            priorities[str(model)] = int(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"priority class for '{model}' must be an integer, "
                f"got {value!r}"
            ) from None
    return priorities


def make_slo(slo_us: float, shed_depth: int = 0) -> Optional[SloPolicy]:
    """Build an :class:`SloPolicy` from microsecond / depth scalars.

    Raises:
        ConfigError: when shedding is requested without an SLO target.
    """
    if slo_us <= 0:
        if shed_depth:
            raise ConfigError("admission control needs an SLO target "
                              "(set slo_us / --slo)")
        return None
    return SloPolicy(target=slo_us * 1e-6,
                     shed_depth=shed_depth or None)


def serving_grid(requests: int = 2000, accelerator: str = "SMART",
                 replicas: int = 2, batch_size: int = 8,
                 dispatch: str = "round_robin", seed: int = 7,
                 scenarios: Optional[Sequence[str]] = None,
                 policies: Optional[Sequence[str]] = None,
                 cache: Optional[LayerMemoCache] = None,
                 slo_us: float = 0.0, shed_depth: int = 0,
                 autoscale: str = "", faults: int = 0,
                 flush: str = "fifo", priority=None,
                 scale: str = "", steal: bool = False,
                 telemetry: Optional[Telemetry] = None,
                 resilience: str = "") -> list[dict]:
    """Percentile rows for scenario x batching-policy cells.

    Defaults to every stock scenario and policy; ``repro serve-sim``
    narrows the grid through ``scenarios``/``policies`` and switches
    the control plane on through ``slo_us``/``shed_depth`` (SLO +
    admission control), ``autoscale`` (``"min:max"``), ``faults``
    (injected outages), ``flush``/``priority`` (``"edf"`` +
    ``"model=N"`` classes), ``scale`` (``"reactive"`` / ``"ewma"`` /
    ``"holt"`` over the autoscale bounds) and ``steal`` (work
    stealing on control ticks) and ``resilience`` (``"retry"`` /
    ``"hedge"`` / ``"degrade"`` with ``name:key=value`` options; a
    fresh policy instance per cell).  One shared memo cache serves the
    whole grid, so only the first cell pays for fresh layer
    simulations.  A ``telemetry`` sink, when given, records every
    cell's event trace and metrics timeline (``repro serve-sim
    --trace`` persists it).
    """
    config = make_accelerator(accelerator)
    cache = cache if cache is not None else LayerMemoCache()
    slo = make_slo(slo_us, shed_depth)
    bounds = parse_autoscale(autoscale)
    if scale:
        make_scale(scale, bounds)  # fail fast on a bad spec
    # flush policies are stateless (an immutable priority map), so one
    # instance serves the whole grid; scale policies carry forecast
    # state + calibration and are built fresh per cell below
    flush_policy = make_flush(flush, parse_priorities(priority) or None)
    if resilience:
        make_resilience(resilience)  # fail fast on a bad spec
    failures = FailurePlan(count=faults, seed=seed) if faults else None
    rows = []
    for scenario in [get_scenario(n) for n in scenarios or SCENARIOS]:
        for policy_name in policies or POLICIES:
            simulator = ServingSimulator(
                accelerator=config, replicas=replicas,
                policy=make_policy(policy_name, batch_size=batch_size),
                dispatch=dispatch, cache=cache, slo=slo,
                autoscale=(make_scale(scale, bounds) if scale
                           else bounds),
                failures=failures, flush=flush_policy,
                steal=WorkStealPolicy() if steal else None,
                telemetry=telemetry,
                resilience=make_resilience(resilience) if resilience
                else None,
            )
            result = simulator.run_scenario(scenario, requests, seed=seed)
            rows.append(result.to_row())
    return rows


def serving_scaling(scenario: str = "steady", policy: str = "timeout",
                    requests: int = 2000, accelerator: str = "SMART",
                    replicas: int | None = None, batch_size: int = 8,
                    dispatch: str = "least_loaded",
                    seed: int = 7) -> list[dict]:
    """Throughput/latency scaling with cluster width.

    ``replicas=None`` reports the 1/2/4/8 curve in one call; a single
    value makes it a one-row sweep target.
    """
    widths = (1, 2, 4, 8) if replicas is None else (int(replicas),)
    config = make_accelerator(accelerator)
    cache = LayerMemoCache()
    rows = []
    for width in widths:
        simulator = ServingSimulator(
            accelerator=config, replicas=width,
            policy=make_policy(policy, batch_size=batch_size),
            dispatch=dispatch, cache=cache,
        )
        result = simulator.run_scenario(scenario, requests, seed=seed)
        row = result.to_row()
        row["replicas"] = width
        rows.append(row)
    return rows


def serving_slo(scenario: str = "overload", policy: str = "timeout",
                requests: int = 2000, accelerator: str = "SMART",
                replicas: int = 2, batch_size: int = 8,
                dispatch: str = "least_loaded", seed: int = 7,
                slo_us: float = 1500.0,
                shed_depth: int = 0) -> list[dict]:
    """SLO attainment under load, with and without admission control.

    One row per call; sweep ``shed_depth`` (0 = never shed) or
    ``slo_us`` to map the attainment/shed-rate trade-off.
    """
    simulator = ServingSimulator(
        accelerator=make_accelerator(accelerator), replicas=replicas,
        policy=make_policy(policy, batch_size=batch_size),
        dispatch=dispatch, slo=make_slo(slo_us, shed_depth),
    )
    result = simulator.run_scenario(scenario, requests, seed=seed)
    row = result.to_row()
    row["shed_depth"] = shed_depth
    return [row]


def serving_autoscale(scenario: str = "diurnal", policy: str = "timeout",
                      requests: int = 2000, accelerator: str = "SMART",
                      min_replicas: int = 1, max_replicas: int = 8,
                      metric: str = "queue", target_p95_us: float = 0.0,
                      batch_size: int = 8,
                      dispatch: str = "least_loaded",
                      seed: int = 7) -> list[dict]:
    """Autoscaler behaviour on one scenario: pool swing + percentiles.

    ``target_p95_us > 0`` scales on windowed p95 instead of queue
    depth.
    """
    spec = f"{min_replicas}:{max_replicas}"
    simulator = ServingSimulator(
        accelerator=make_accelerator(accelerator), replicas=min_replicas,
        policy=make_policy(policy, batch_size=batch_size),
        dispatch=dispatch,
        autoscale=parse_autoscale(spec, metric=metric,
                                  target_p95_us=target_p95_us),
    )
    result = simulator.run_scenario(scenario, requests, seed=seed)
    row = result.to_row()
    row.setdefault("replicas_low", result.low_replicas)
    row.setdefault("replicas_peak", result.peak_replicas)
    row["scale_ups"] = sum(1 for _, a in result.scale_events if a == "up")
    row["scale_downs"] = sum(1 for _, a in result.scale_events
                             if a == "down")
    return [row]


#: Scale-policy specs ``serving_forecast`` compares by default.
FORECAST_MODES = ("reactive-queue", "reactive-p95", "ewma", "holt")


def serving_forecast(scenario: str = "diurnal", policy: str = "timeout",
                     requests: int = 2000, accelerator: str = "SMART",
                     min_replicas: int = 1, max_replicas: int = 6,
                     batch_size: int = 8,
                     dispatch: str = "least_loaded", seed: int = 7,
                     slo_us: float = 2000.0, alpha: float = 0.3,
                     beta: float = 0.1,
                     target_utilization: float = 0.6,
                     scale: str = "") -> list[dict]:
    """Reactive vs predictive autoscaling: SLO attainment per joule.

    One row per scale policy (all of :data:`FORECAST_MODES` unless
    ``scale`` picks one), each serving the same diurnal-style trace
    from ``min_replicas`` with the same SLO: the reactive policies
    chase the crest (queue depth, or windowed p95 against the SLO
    target), the predictive ones (:class:`ForecastScalePolicy`
    EWMA / Holt) scale ahead of it off the engine's arrival-rate
    history.  ``attain_per_j`` = SLO attainment / total energy
    (served + wasted) is the figure of merit.
    """
    modes = (scale,) if scale else FORECAST_MODES
    cache = LayerMemoCache()
    rows = []
    for mode in modes:
        if mode == "reactive-queue":
            scaling = AutoscalePolicy(min_replicas=min_replicas,
                                      max_replicas=max_replicas,
                                      metric="queue")
        elif mode == "reactive-p95":
            scaling = AutoscalePolicy(min_replicas=min_replicas,
                                      max_replicas=max_replicas,
                                      metric="p95",
                                      target_p95=slo_us * 1e-6)
        elif mode in ("ewma", "holt"):
            scaling = ForecastScalePolicy(
                min_replicas=min_replicas, max_replicas=max_replicas,
                mode=mode, alpha=alpha, beta=beta,
                target_utilization=target_utilization)
        else:
            raise ConfigError(
                f"unknown forecast mode '{mode}'; known: "
                f"{', '.join(FORECAST_MODES)}"
            )
        simulator = ServingSimulator(
            accelerator=make_accelerator(accelerator),
            replicas=min_replicas,
            policy=make_policy(policy, batch_size=batch_size),
            dispatch=dispatch, cache=cache, slo=make_slo(slo_us),
            autoscale=scaling,
        )
        result = simulator.run_scenario(scenario, requests, seed=seed)
        rows.append({
            "scale": mode,
            "scenario": result.scenario,
            "slo_attain": result.slo_attainment,
            "p95_us": result.latency_percentile(95) * 1e6,
            "p99_us": result.latency_percentile(99) * 1e6,
            "energy_total_uj": result.total_energy * 1e6,
            "attain_per_j": result.attainment_per_joule,
            "replicas_low": result.low_replicas,
            "replicas_peak": result.peak_replicas,
            "scale_ups": sum(1 for _, a in result.scale_events
                             if a == "up"),
            "scale_downs": sum(1 for _, a in result.scale_events
                               if a == "down"),
        })
    return rows


def serving_scale(scenario: str = "steady", policy: str = "timeout",
                  requests: int = 100_000, accelerator: str = "SMART",
                  replicas: int = 4, batch_size: int = 8,
                  shards: int = 4, seed: int = 7,
                  slo_us: float = 0.0, mode: str = "process",
                  scenarios: Optional[Sequence[str]] = None
                  ) -> list[dict]:
    """Sharded scale-out: aggregate req/s across worker processes.

    One row per scenario: the trace is deterministically sharded
    (:class:`~repro.serving.sharding.ShardedEngine`), each shard
    streams its slice through an independent engine in its own worker
    process, and the merged row reports exact counters/energy plus
    digest percentiles and ``agg_rps`` — simulated requests per second
    of wall time, the scale-out headline.  Only shard-stable cells are
    legal (``shard`` dispatch, no autoscale/steal/shed/faults);
    anything else raises :class:`~repro.errors.ConfigError`.
    """
    engine = ShardedEngine(
        shards=shards, accelerator=accelerator, replicas=replicas,
        policy=policy, batch_size=batch_size, dispatch="shard",
        slo_us=slo_us, mode=mode,
    )
    rows = []
    for name in scenarios or (scenario,):
        result = engine.run_scenario(name, requests, seed=seed)
        row = result.to_row()
        row["replicas"] = replicas
        row["wall_s"] = result.wall_s
        rows.append(row)
    return rows


def serving_geo(scenario: str = "diurnal", policy: str = "timeout",
                requests: int = 20_000, regions: int = 4,
                topology: str = "ring", geo: str = "follow_sun",
                storms: int = 0, batch_size: int = 8, seed: int = 7,
                slo_us: float = 0.0, mode: str = "process",
                scenarios: Optional[Sequence[str]] = None
                ) -> list[dict]:
    """Geo-distributed serving: per-region engines behind a router.

    One aggregate row per scenario plus one row per region (tagged
    with its ``region`` name): the :class:`~repro.serving.geo.
    GeoRouter` admits region-local request streams, routes each
    request with the ``geo`` policy over the ``topology``
    interconnect, charges deterministic network delay, and merges the
    per-region outcomes exactly.  Sweep ``geo`` to compare routing
    policies (``repro sweep serving_geo --param
    geo=home,follow_sun,cheapest_joule,spillover``).
    """
    from repro.serving.geo import GeoRouter

    router = GeoRouter(regions, topology=topology, geo=geo,
                       storms=storms, policy=policy,
                       batch_size=batch_size, slo_us=slo_us,
                       mode=mode)
    rows = []
    for name in scenarios or (scenario,):
        result = router.run_scenario(name, requests, seed=seed)
        row = result.to_row()
        row["wall_s"] = result.wall_s
        rows.append(row)
        rows.extend({"scenario": name, "policy": policy, "geo": geo,
                     **region_row}
                    for region_row in result.region_rows())
    return rows


def _register() -> None:
    from repro.runtime.registry import register_experiment

    register_experiment(
        "serving_grid", serving_grid,
        "serving percentiles, every scenario x policy; params: "
        "requests, accelerator, replicas, batch_size, dispatch, seed, "
        "slo_us, shed_depth, autoscale, faults",
        figure=False)
    register_experiment(
        "serving_scaling", serving_scaling,
        "serving throughput vs cluster width; params: scenario, "
        "policy, requests, accelerator, replicas, batch_size, "
        "dispatch, seed", figure=False)
    register_experiment(
        "serving_slo", serving_slo,
        "SLO attainment / shed-rate under load; params: scenario, "
        "policy, requests, replicas, slo_us, shed_depth, dispatch, "
        "seed", figure=False)
    register_experiment(
        "serving_autoscale", serving_autoscale,
        "autoscaler pool swing + percentiles; params: scenario, "
        "policy, requests, min_replicas, max_replicas, metric, "
        "target_p95_us, dispatch, seed", figure=False)
    register_experiment(
        "serving_scale", serving_scale,
        "sharded scale-out across worker processes, aggregate req/s; "
        "params: scenario, policy, requests, replicas, batch_size, "
        "shards, seed, slo_us, mode", figure=False)
    register_experiment(
        "serving_geo", serving_geo,
        "geo-distributed fleet: per-region engines behind a routing "
        "interconnect; params: scenario, policy, requests, regions, "
        "topology, geo, storms, batch_size, seed, slo_us, mode",
        figure=False)
    register_experiment(
        "serving_forecast", serving_forecast,
        "reactive vs predictive autoscaling, SLO attainment/joule; "
        "params: scenario, policy, requests, min_replicas, "
        "max_replicas, slo_us, alpha, beta, target_utilization, "
        "scale, dispatch, seed", figure=False)


_register()
