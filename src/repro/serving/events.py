"""Discrete-event core of the serving simulator.

The arrival-driven loop PR 2 shipped observed timeout flushes, replica
frees and drain work retroactively, at the *next* arrival.  That is
exact for static clusters (dispatch reads replica free times, which
are known at flush time) but cannot express anything that must react
to the clock itself: autoscaling ticks, replica failures mid-batch,
admission decisions against a live queue depth.  This module replaces
it with a true discrete-event engine:

- a heap-ordered :class:`EventQueue` of arrival / flush-deadline /
  batch-done / failure / recovery / control-tick / drain events;
- :class:`ClusterEngine`, which owns the queues, the replica pool and
  the clock, and on which the control plane runs:

  * **heterogeneous replicas** — each :class:`Replica` carries its own
    accelerator configuration, and the ``fastest_finish`` dispatch
    strategy picks the replica that *completes* a batch earliest
    (per-replica service times), not merely the one that frees first;
  * **SLO-aware autoscaling** (:class:`AutoscalePolicy`) — scale on
    queue depth or windowed p95 latency, with warm-up delay before a
    new replica serves and a cooldown between actions;
  * **failure injection** (:class:`FailurePlan`) — a replica drops
    mid-trace, its in-flight batches are re-dispatched to survivors,
    and it rejoins at recovery;
  * **admission control** (:class:`SloPolicy`) — shed arrivals once
    the cluster queue exceeds a depth bound, and report per-request
    SLO attainment.

Every scheduling *decision* the engine takes is delegated to the
policy seams in :mod:`repro.serving.policies`: replica selection to a
:class:`~repro.serving.policies.DispatchPolicy` (the four stock
strategies reproduce the retired string branches bit for bit), flush
tie-breaking / drain ordering / parked-batch re-dispatch to a
:class:`~repro.serving.policies.FlushPolicy`, the control-tick pool
decision to a :class:`~repro.serving.policies.ScalePolicy` (an
:class:`AutoscalePolicy` is wrapped reactively; predictive policies
consume the per-tick arrival-rate history the engine keeps for them),
and arrival admission to an
:class:`~repro.serving.policies.AdmissionPolicy`.  A
:class:`~repro.serving.policies.WorkStealPolicy` additionally lets
control ticks re-dispatch the most-backlogged replica's last
unstarted batch to whichever replica finishes it soonest.

One faithfulness charge rides the dispatch path: when a replica
serves a *different* model than the one whose weights it last
deployed, the incoming batch pays a weight-deployment switch charge
(``switch_fn``) before service — back-to-back batches of one model
keep their weights resident, contended replicas do not.

Event ordering at equal timestamps mirrors the retired loop exactly
(due flushes fire before the arrival that made them due; simultaneous
flushes fire in (deadline, model) order; the end-of-trace drain runs
after the final arrival), so a static cluster reproduces PR 2's
per-request latencies bit for bit.

The hot path is tuned for trace scale (see ``BENCH_serving.json``):
the heap holds raw ``(time, kind, key, seq, payload)`` tuples rather
than :class:`Event` objects, arrivals are merge-scanned out of the
(time-ordered) trace instead of being heap-resident, per-(replica
configuration, model, batch-size) service/energy rates are memoised
outside the dispatch inner loop, and the windowed-p95 autoscale metric
is maintained incrementally (:class:`_LatencyWindow`) instead of
re-sorting the window every control tick.  None of this changes a
single emitted float: ``repro.serving.reference`` retains the
straightforward pre-optimisation engine as a test oracle, and the
equivalence suite holds every stock scenario x policy x dispatch cell
to exact per-request tuple equality.
"""

from __future__ import annotations

import heapq
import random as _random
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from math import ceil
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigError
from repro.serving.policies import (
    AdmissionPolicy,
    DepthAdmission,
    DispatchPolicy,
    FifoFlush,
    FlushPolicy,
    ReactiveScalePolicy,
    ResiliencePolicy,
    ScalePolicy,
    WorkStealPolicy,
    make_dispatch,
    make_resilience,
)
from repro.serving.telemetry import Telemetry
from repro.serving.workload import Request

#: Replica-selection strategies the engine understands (the stock
#: :data:`repro.serving.policies.DISPATCH_POLICIES` names).
DISPATCH_STRATEGIES = ("round_robin", "least_loaded", "shard",
                       "fastest_finish")


class EventKind(IntEnum):
    """Event types, ordered by priority at equal timestamps.

    The order encodes the retired arrival-driven loop's semantics: a
    flush whose deadline lands exactly on an arrival fires *before*
    that arrival is enqueued; completions and control actions follow
    arrivals; the end-of-trace drain runs after the last arrival.

    NETWORK is the geo tier's delivery event: a request in flight on
    the interconnect, scheduled for the instant it lands in its
    serving region.  The :class:`~repro.serving.geo.GeoRouter` charges
    interconnect delay by pushing NETWORK events into its own
    :class:`EventQueue` and re-sorting the stream into delivery order;
    the cluster engine's heap never sees the kind, so single-region
    zero-delay runs stay bit-identical to the plain engine.

    TIMEOUT / HEDGE / CANCEL are the resilience tier's kinds: a
    deadline check (and the backoff-delayed retry it may launch), the
    hedge-launch instant, and the cancellation of a losing duplicate
    once the first copy completes.  They order *after* every
    pre-resilience kind, so a ``resilience=none`` run — which never
    pushes them — keeps its same-instant tie-breaks untouched.
    """

    FLUSH = 0
    ARRIVAL = 1
    BATCH_DONE = 2
    FAIL = 3
    RECOVER = 4
    CONTROL = 5
    DRAIN = 6
    NETWORK = 7
    TIMEOUT = 8
    HEDGE = 9
    CANCEL = 10


# Hot-loop aliases: heap entries carry the plain int so tuple
# comparisons and handler dispatch never touch the enum machinery.
_FLUSH = int(EventKind.FLUSH)
_ARRIVAL = int(EventKind.ARRIVAL)
_BATCH_DONE = int(EventKind.BATCH_DONE)
_FAIL = int(EventKind.FAIL)
_RECOVER = int(EventKind.RECOVER)
_CONTROL = int(EventKind.CONTROL)
_DRAIN = int(EventKind.DRAIN)
_NETWORK = int(EventKind.NETWORK)
_TIMEOUT = int(EventKind.TIMEOUT)
_HEDGE = int(EventKind.HEDGE)
_CANCEL = int(EventKind.CANCEL)


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled event.

    Attributes:
        time: simulation instant (s).
        kind: event type (also its tie-break priority).
        key: secondary tie-break — the model name for FLUSH events, so
            simultaneous deadlines fire in (deadline, model) order.
        payload: kind-specific data.
    """

    time: float
    kind: EventKind
    key: str = ""
    payload: object = None


class EventQueue:
    """A heap-ordered event queue with deterministic tie-breaking.

    Events at the same instant pop in (kind, key, insertion) order;
    insertion order makes simultaneous same-kind events (e.g. two
    arrivals with identical timestamps) deterministic and stable.

    The heap stores raw ``(time, kind, key, seq, payload)`` tuples —
    no per-event object allocation on ``push``; :meth:`pop` wraps the
    head back into an :class:`Event` for callers that want one.  The
    engine's run loop reads the raw tuples directly.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, first_seq: int = 0) -> None:
        self._heap: list[tuple[float, int, str, int, object]] = []
        self._seq = first_seq

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: EventKind, key: str = "",
             payload: object = None) -> None:
        """Schedule one event."""
        heapq.heappush(self._heap,
                       (time, int(kind), key, self._seq, payload))
        self._seq += 1

    def next_time(self) -> float:
        """The earliest scheduled instant (the heap head's time)."""
        if not self._heap:
            raise ConfigError("next_time of an empty event queue")
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        time, kind, key, _seq, payload = heapq.heappop(self._heap)
        return Event(time=time, kind=EventKind(kind), key=key,
                     payload=payload)


class _LatencyWindow:
    """Sliding window of completed-request latencies, sorted as it goes.

    The p95 autoscale metric needs an order statistic over the last
    ``size`` latencies every control tick; re-sorting the window each
    tick is O(w log w) per tick.  This keeps a FIFO of the window
    contents plus a bisect-maintained sorted copy, so appends (with
    exact removal of the evicted element) are O(log w) and percentile
    reads are O(1) — and, being plain order statistics over the same
    multiset, bit-identical to :func:`repro.eval.report.percentile`
    over the equivalent deque.
    """

    __slots__ = ("_fifo", "_sorted", "_size")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigError("latency window must be >= 1")
        self._fifo: deque[float] = deque()
        self._sorted: list[float] = []
        self._size = size

    def __len__(self) -> int:
        return len(self._sorted)

    def append(self, value: float) -> None:
        """Add one latency, evicting the oldest beyond the window."""
        fifo = self._fifo
        ordered = self._sorted
        if len(fifo) == self._size:
            del ordered[bisect_left(ordered, fifo.popleft())]
        fifo.append(value)
        insort(ordered, value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, matching ``report.percentile``."""
        ordered = self._sorted
        if not ordered:
            raise ConfigError("percentile of empty window")
        if q == 0.0:
            return ordered[0]
        return ordered[ceil(q / 100.0 * len(ordered)) - 1]


# ---------------------------------------------------------------------------
# Control-plane policies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SloPolicy:
    """Per-request latency SLO plus optional admission control.

    Attributes:
        target: per-request latency objective (s); a request attains
            the SLO when it completes within ``target`` of arriving.
        shed_depth: when set, an arrival is shed (rejected, SLO miss)
            while this many admitted requests are still in the system
            — queued *or* dispatched but unfinished, the concurrency
            bound real admission controllers enforce.
    """

    target: float
    shed_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ConfigError("SLO target must be positive")
        if self.shed_depth is not None and self.shed_depth < 1:
            raise ConfigError("shed depth must be >= 1")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Replica autoscaling driven by queue depth or windowed p95.

    Attributes:
        min_replicas, max_replicas: pool bounds.
        metric: ``"queue"`` scales on in-system requests (queued *or*
            dispatched but unfinished) per alive replica; ``"p95"`` on
            the p95 of a sliding window of completed-request latencies
            (needs ``target_p95``).
        high_queue: scale up when in-system > high_queue x alive.
        low_queue: scale down when in-system < low_queue x alive.
        target_p95: p95 objective (s) for the ``"p95"`` metric; scale
            up above it, down below half of it.
        tick: control-loop interval (s).
        warmup: delay before a fresh replica can start serving (s).
        cooldown: minimum spacing between scale actions (s).
        window: completed-request latencies the p95 metric looks at.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    metric: str = "queue"
    high_queue: int = 12
    low_queue: int = 2
    target_p95: Optional[float] = None
    tick: float = 200e-6
    warmup: float = 1e-3
    cooldown: float = 500e-6
    window: int = 256

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ConfigError(
                "autoscale needs 1 <= min_replicas <= max_replicas"
            )
        if self.metric not in ("queue", "p95"):
            raise ConfigError("autoscale metric must be 'queue' or 'p95'")
        if self.metric == "p95" and (self.target_p95 is None
                                     or self.target_p95 <= 0):
            raise ConfigError("p95 autoscaling needs a positive target_p95")
        if self.high_queue < 1 or self.low_queue < 0:
            raise ConfigError("queue thresholds must be sensible")
        if self.low_queue >= self.high_queue:
            raise ConfigError("low_queue must sit below high_queue")
        if self.tick <= 0 or self.warmup < 0 or self.cooldown < 0:
            raise ConfigError("autoscale times must be non-negative "
                              "(tick positive)")
        if self.window < 1:
            raise ConfigError("latency window must be >= 1")


@dataclass(frozen=True)
class Outage:
    """One resolved replica outage: down at ``at``, back at ``until``."""

    replica: int
    at: float
    until: float

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ConfigError("outage replica index must be >= 0")
        if self.until <= self.at:
            raise ConfigError("outage must end after it starts")


@dataclass(frozen=True)
class FailurePlan:
    """Seeded replica failure/recovery injection.

    Either carries explicit :class:`Outage` windows, or samples
    ``count`` of them (uniform instants over the middle 80% of the
    trace span, round-robin over replicas with a seeded shuffle), each
    lasting ``downtime_frac`` of the span.

    Attributes:
        count: sampled outages when ``outages`` is empty.
        downtime_frac: sampled outage length as a fraction of the
            trace span.
        seed: RNG seed for sampling.
        outages: explicit outage windows (skips sampling).
    """

    count: int = 2
    downtime_frac: float = 0.1
    seed: int = 0
    outages: tuple[Outage, ...] = ()

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("failure count must be >= 0")
        if not 0.0 < self.downtime_frac < 1.0:
            raise ConfigError("downtime fraction must be in (0, 1)")

    def resolve(self, start: float, end: float,
                replicas: int) -> tuple[Outage, ...]:
        """Concrete outage windows for a trace spanning [start, end].

        Overlapping windows on one replica are merged, so a replica is
        down for the union of its outages — without the merge, the
        first RECOVER to pop would end every overlapping window early.
        """
        if self.outages:
            return _merge_outages(self.outages)
        span = max(end - start, 1e-12)
        rng = _random.Random(self.seed)
        order = list(range(replicas))
        rng.shuffle(order)
        downtime = self.downtime_frac * span
        outages = []
        for i in range(self.count):
            at = start + span * (0.1 + 0.8 * rng.random())
            outages.append(Outage(replica=order[i % replicas], at=at,
                                  until=at + downtime))
        return _merge_outages(outages)


def _merge_outages(outages) -> tuple[Outage, ...]:
    """Union overlapping/touching windows per replica, time-ordered."""
    spans: dict[int, list[list[float]]] = {}
    for outage in sorted(outages, key=lambda o: (o.replica, o.at)):
        windows = spans.setdefault(outage.replica, [])
        if windows and outage.at <= windows[-1][1]:
            windows[-1][1] = max(windows[-1][1], outage.until)
        else:
            windows.append([outage.at, outage.until])
    return tuple(sorted(
        (Outage(replica=replica, at=at, until=until)
         for replica, windows in spans.items()
         for at, until in windows),
        key=lambda o: (o.at, o.replica),
    ))


# ---------------------------------------------------------------------------
# Cluster state
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class Replica:
    """Mutable state of one accelerator replica.

    Attributes:
        index: stable identity (dispatch order, shard target).
        accelerator: this replica's accelerator configuration.
        free_at: when its last scheduled batch completes (s).
        available_at: warm-up gate — no batch starts before this (s).
        up: serving (or warming); False while failed / retired.
        failed: down because of an injected outage (so only the
            matching recovery revives it — a recovery must not
            resurrect a replica the autoscaler retired).
        draining: finishing in-flight work before retirement.
        pending: in-flight batch ids (dispatch order).
        last_model: model whose weights the array holds once pending
            work completes (None after a cold start / power cycle);
            dispatching a different model charges the switch fee.
        done_model: model of the last *completed* batch (maintained
            only when work stealing runs, which may need to roll
            ``last_model`` back after emptying ``pending``).
    """

    index: int
    accelerator: object
    free_at: float = 0.0
    available_at: float = 0.0
    up: bool = True
    failed: bool = False
    draining: bool = False
    pending: list[int] = field(default_factory=list)
    last_model: Optional[str] = None
    done_model: Optional[str] = None


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One dispatched batch.

    Attributes:
        model: network the batch ran.
        size: images in the batch.
        replica: replica index that served it.
        flush: instant the batch left its queue (s).
        start: instant the replica began serving it (s).
        done: completion instant (s).
        energy: whole-batch energy (J).
    """

    model: str
    size: int
    replica: int
    flush: float
    start: float
    done: float
    energy: float

    @property
    def service(self) -> float:
        """Pure accelerator service time (s)."""
        return self.done - self.start


@dataclass(slots=True)
class _InFlight:
    """Engine-side bookkeeping for one dispatched batch."""

    record: BatchRecord
    requests: tuple[Request, ...]
    alive: bool = True


@dataclass
class EngineRun:
    """Raw outcome of one :meth:`ClusterEngine.run`.

    Attributes:
        batches: successfully served batches, in dispatch order.
        done: request_id -> (completion instant, energy share).
        shed: request ids rejected by admission control.
        replica_trace: (time, up-replica count) at every change.
        scale_events: (time, "up"/"down") autoscale actions.
        redispatched: batches re-dispatched after a replica failure.
        wasted_energy: energy burnt on aborted partial executions (J)
            — failure-aborted batches, cancelled duplicates' partial
            service, and losing duplicate completions.
        stolen: batches work stealing moved to a faster replica.
        timeouts: deadline checks that found the request unfinished.
        retries: duplicate attempts the retry policy launched.
        hedges: hedged duplicates launched to a second replica.
        cancels: losing duplicates cancelled before completion.
        degraded: requests served by the degraded (discounted) path.
    """

    batches: tuple[BatchRecord, ...]
    done: dict[int, tuple[float, float]]
    shed: tuple[int, ...]
    replica_trace: tuple[tuple[float, int], ...]
    scale_events: tuple[tuple[float, str], ...]
    redispatched: int
    wasted_energy: float
    stolen: int = 0
    timeouts: int = 0
    retries: int = 0
    hedges: int = 0
    cancels: int = 0
    degraded: int = 0


class ClusterEngine:
    """The discrete-event serving engine.

    Args:
        replicas: one accelerator configuration per initial replica
            (mixed configurations make a heterogeneous pool).
        policy: batching policy (``ready``/``deadline``/``max_batch``).
        dispatch: one of :data:`DISPATCH_STRATEGIES`, or a
            :class:`~repro.serving.policies.DispatchPolicy` instance.
        service_fn: (accelerator, model, batch) -> batch latency (s);
            routed through the layer-memo cache by the caller, which
            keeps the engine O(distinct layer x batch) in simulation
            work regardless of trace length.
        energy_fn: (accelerator, model, batch) -> batch energy (J).
        slo: SLO / admission-control policy, or None.
        autoscale: scaling — an :class:`AutoscalePolicy` (wrapped in
            the stock reactive :class:`ScalePolicy`), a
            :class:`~repro.serving.policies.ScalePolicy` directly, or
            None for a static pool.  Replicas added by a scale-up
            clone the *first* replica's accelerator configuration.
        failures: failure-injection plan, or None.
        memoize_rates: memoise (replica configuration, model, batch
            size) -> (service, energy) for the run, hoisting the
            service-fn calls out of the dispatch inner loop.  Both fns
            are deterministic so the emitted floats are unchanged;
            turn this off to route *every* dispatch through the fns —
            the uncached reference path counts each lookup.
        switch_fn: (accelerator, model, batch) -> weight-deployment
            switch charge (s) paid when the replica last served a
            *different* model; None charges nothing.
        flush: flush-ordering policy; None means the stock FIFO.
        admission: admission policy; None derives the stock depth
            bound from ``slo.shed_depth``.
        steal: work stealing on control ticks, or None.
        telemetry: opt-in :class:`~repro.serving.telemetry.Telemetry`
            sink recording the event trace and metrics timeline.  A
            pure observer — the engine never reads it back, so results
            are bit-identical with or without one; None (the default)
            costs one attribute check per handler.
        resilience: client resilience policy — a
            :class:`~repro.serving.policies.ResiliencePolicy`, a spec
            string for :func:`~repro.serving.policies.make_resilience`,
            or None / ``"none"`` for today's behaviour.  With None the
            engine never pushes a TIMEOUT / HEDGE / CANCEL event and
            every hot path is byte-identical to the pre-resilience
            engine.
        prewarm: (model, batch size) cells to resolve through the
            service/energy/switch fns up front, at the end of every
            per-run reset, so the dispatch inner loop starts with a
            fully warm rate memo.  The fns are deterministic and the
            cells land in the same per-run dicts a cold run would
            fill lazily, so emitted results are bit-identical; only
            honoured when ``memoize_rates`` is on (otherwise the warm
            cells would be recomputed per dispatch anyway).
    """

    def __init__(self, replicas: Sequence[object], policy,
                 dispatch: str | DispatchPolicy,
                 service_fn: Callable[[object, str, int], float],
                 energy_fn: Callable[[object, str, int], float],
                 slo: Optional[SloPolicy] = None,
                 autoscale: Optional[AutoscalePolicy | ScalePolicy]
                 = None,
                 failures: Optional[FailurePlan] = None,
                 memoize_rates: bool = True,
                 switch_fn: Optional[Callable[[object, str, int],
                                              float]] = None,
                 flush: Optional[FlushPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 steal: Optional[WorkStealPolicy] = None,
                 telemetry: Optional[Telemetry] = None,
                 resilience: Optional[str | ResiliencePolicy]
                 = None,
                 prewarm: Optional[Sequence[tuple[str, int]]]
                 = None) -> None:
        if not replicas:
            raise ConfigError("cluster needs at least one replica")
        self.policy = policy
        self.dispatch = (dispatch.name
                         if isinstance(dispatch, DispatchPolicy)
                         else dispatch)
        self._dispatch_policy = make_dispatch(dispatch)
        self.service_fn = service_fn
        self.energy_fn = energy_fn
        self.switch_fn = switch_fn
        self.slo = slo
        self.autoscale = autoscale
        self.scale: Optional[ScalePolicy] = (
            ReactiveScalePolicy(autoscale)
            if isinstance(autoscale, AutoscalePolicy) else autoscale
        )
        self.flush = flush if flush is not None else FifoFlush()
        if admission is None and slo is not None \
                and slo.shed_depth is not None:
            admission = DepthAdmission(slo.shed_depth)
        self.admission = admission
        self.steal = steal
        self.telemetry = telemetry
        self.resilience = make_resilience(resilience)
        self.failures = failures
        self.memoize_rates = memoize_rates
        self.prewarm = tuple(prewarm) if prewarm else ()
        self._initial = list(replicas)

    # -- per-run state ---------------------------------------------------
    def _prepare(self, t0: float, n: int) -> None:
        """Reset all per-run state for a run starting at ``t0``.

        ``n`` seeds ``_remaining`` (arrivals still to come); the
        streaming path maintains it from its look-ahead instead.
        """
        self._replicas = [
            Replica(index=i, accelerator=acc)
            for i, acc in enumerate(self._initial)
        ]
        self._queues: dict[str, list[Request]] = {}
        self._armed: dict[str, float] = {}
        self._inflight: dict[int, _InFlight] = {}
        self._batch_order: list[int] = []
        self._next_batch = 0
        self._waiting: deque[tuple[str, tuple[Request, ...], float]] = deque()
        self._done: dict[int, tuple[float, float]] = {}
        self._shed: list[int] = []
        self._trace: list[tuple[float, int]] = [(t0, len(self._replicas))]
        self._scale_events: list[tuple[float, str]] = []
        self._redispatched = 0
        self._stolen = 0
        self._wasted = 0.0
        self._in_system = 0
        self._remaining = n
        self._last_scale = float("-inf")
        scale = self.scale
        if scale is not None:
            scale.reset()
        self._dispatch_policy.reset(self)
        # the window only feeds latency-driven scale metrics;
        # appending is per completed request, so skip the bookkeeping
        # entirely when nothing will ever read it
        window_size = scale.window_size if scale is not None else 0
        self._window = (_LatencyWindow(window_size)
                        if window_size else None)
        # per-tick arrival counting only when a scale policy asks
        self._track_rate = scale is not None and scale.needs_rate
        self._tick_arrivals = 0
        # hoisted per-run hot-path state
        self._rates: dict[tuple[int, str, int], tuple[float, float]] = {}
        self._switch_rates: dict[tuple[int, str, int], float] = {}
        self._max_batch = self.policy.max_batch
        self._ready_fn = self.policy.ready
        self._deadline_fn = self.policy.deadline
        self._pick = self._dispatch_policy.pick
        # the stock FIFO flush policy keeps the allocation-free fast
        # paths (model-name heap key, popleft, sorted drain); anything
        # else routes through the policy's own ordering hooks
        flush_policy = self.flush
        stock_flush = type(flush_policy) is FifoFlush
        self._flush_key = None if stock_flush else flush_policy.flush_key
        self._waiting_pick = (None if stock_flush
                              else flush_policy.pick_waiting)
        # stock depth admission stays an int compare on the arrival
        # hot path; custom policies — including DepthAdmission
        # subclasses with their own admit() — take the full call
        admission = self.admission
        if type(admission) is DepthAdmission:
            self._shed_depth: Optional[int] = admission.depth
            self._admit_fn = None
        else:
            self._shed_depth = None
            self._admit_fn = (admission.admit if admission is not None
                              else None)
        tel = self.telemetry
        self._tel = tel
        # a telemetry sink that wants a timeline can drive CONTROL
        # ticks on its own when neither scaling nor stealing does; the
        # tick handler is a pure no-op for it, so results are unchanged
        self._control_tick = (scale.tick if scale is not None
                              else self.steal.tick
                              if self.steal is not None
                              else tel.tick
                              if tel is not None and tel.tick else 0.0)
        # resilience: with None (the stock ``none`` policy) nothing
        # below is ever read on a hot path — every handler gates on
        # ``self._res is not None`` exactly like the telemetry sink
        res = self.resilience
        self._res = res
        self._res_kind = res.name if res is not None else ""
        self._solo: dict[int, int] = {}  # request_id -> duplicate batch
        self._timeouts = 0
        self._retries = 0
        self._hedges = 0
        self._cancels = 0
        self._degraded = 0
        if res is None:
            self._res_timeout: Optional[float] = None
        elif self._res_kind == "degrade":
            # degrade can run on shed rescue alone; the timeout leg is
            # optional and only arms when a deadline is derivable
            try:
                self._res_timeout = res.timeout_s(self.slo)
            except ConfigError:
                self._res_timeout = None
        else:
            self._res_timeout = res.timeout_s(self.slo)
        # warm the per-run rate memo before the first arrival: each
        # cell lands exactly where a cold run's first dispatch would
        # put it, so warm and cold runs emit identical floats
        if self.prewarm and self.memoize_rates:
            switch_fn = self.switch_fn
            for replica in self._replicas:
                acc = replica.accelerator
                for model, size in self.prewarm:
                    self._rate(acc, model, size)
                    if switch_fn is not None:
                        self._switch(acc, model, size)

    def _handlers(self) -> tuple:
        """Event handlers indexed by :class:`EventKind` value."""
        return (
            self._on_flush,       # FLUSH
            None,                 # ARRIVAL (merge-scanned, never heaped)
            self._on_batch_done,  # BATCH_DONE
            self._on_fail,        # FAIL
            self._on_recover,     # RECOVER
            self._on_control,     # CONTROL
            self._on_drain,       # DRAIN
            None,                 # NETWORK (geo-router-local, never here)
            self._on_timeout,     # TIMEOUT
            self._on_hedge,       # HEDGE
            self._on_cancel,      # CANCEL
        )

    def _finish(self) -> EngineRun:
        """Collect per-run state into the immutable outcome."""
        inflight = self._inflight
        batches = tuple(entry.record
                        for entry in map(inflight.__getitem__,
                                         self._batch_order)
                        if entry.alive)
        return EngineRun(
            batches=batches, done=self._done, shed=tuple(self._shed),
            replica_trace=tuple(self._trace),
            scale_events=tuple(self._scale_events),
            redispatched=self._redispatched, wasted_energy=self._wasted,
            stolen=self._stolen, timeouts=self._timeouts,
            retries=self._retries, hedges=self._hedges,
            cancels=self._cancels, degraded=self._degraded,
        )

    # -- run -------------------------------------------------------------
    def run(self, requests: Iterable[Request],
            span: Optional[tuple[float, float]] = None) -> EngineRun:
        """Serve a trace and return the raw outcome.

        ``requests`` is either a materialised sequence (sorted here if
        out of order) or any other iterable — a generator streams with
        one request of look-ahead and is never materialised.  Streamed
        traces must already be time-ordered.

        ``span`` optionally pins the run's ``(start, drain)`` horizon
        instead of the trace's own first/last arrival — a sharded run
        passes the *global* trace span so every shard drains at the
        same instant the monolithic engine would.  Streaming with a
        :class:`FailurePlan` requires a span (outages are sampled over
        the full horizon before the first arrival is seen).
        """
        if not isinstance(requests, Sequence):
            return self._run_stream(iter(requests), span)
        if not requests:
            raise ConfigError("cannot serve an empty trace")
        n = len(requests)
        ordered = requests
        if any(ordered[i].arrival > ordered[i + 1].arrival
               for i in range(n - 1)):
            # stable, so equal arrivals keep their trace order — the
            # same tie-break the heap's insertion seq used to provide
            ordered = sorted(requests, key=lambda r: r.arrival)
        # trace span from the *time* order, never the input order: the
        # DRAIN must land at the true last arrival or late requests
        # under a deadline-less policy would sit in their queues forever
        t0, t_end = ordered[0].arrival, ordered[-1].arrival
        if span is not None:
            if span[0] > t0 or span[1] < t_end:
                raise ConfigError("span must cover the trace's "
                                  "arrival interval")
            t0, t_end = span

        self._prepare(t0, n)

        # Arrivals stay in the (time-ordered) trace and are merge-
        # scanned against the heap, which only ever holds the sparse
        # flush/done/control events.  Arrival ``seq`` is the trace
        # index; heap events start numbering after the trace, so every
        # same-instant tie resolves exactly as when arrivals were
        # pushed first (kind, key, then insertion order).
        events = EventQueue(first_seq=n)
        self._events = events
        events.push(t_end, EventKind.DRAIN)
        if self.failures is not None:
            for outage in self.failures.resolve(t0, t_end,
                                                len(self._replicas)):
                if outage.replica >= len(self._replicas):
                    raise ConfigError(
                        f"outage targets replica {outage.replica} but the "
                        f"pool has {len(self._replicas)}"
                    )
                events.push(outage.at, EventKind.FAIL,
                            payload=outage.replica)
                events.push(outage.until, EventKind.RECOVER,
                            payload=outage.replica)
        if self._control_tick:
            events.push(t0 + self._control_tick, EventKind.CONTROL)

        handlers = self._handlers()
        heap = events._heap
        heappop = heapq.heappop
        on_arrival = self._on_arrival
        i = 0
        while True:
            if i < n:
                request = ordered[i]
                if heap and heap[0] < (request.arrival, _ARRIVAL, "", i):
                    time, kind, _key, _seq, payload = heappop(heap)
                    handlers[kind](time, payload)
                else:
                    on_arrival(request.arrival, request)
                    i += 1
            elif heap:
                time, kind, _key, _seq, payload = heappop(heap)
                handlers[kind](time, payload)
            else:
                break

        return self._finish()

    def _run_stream(self, it: Iterator[Request],
                    span: Optional[tuple[float, float]]) -> EngineRun:
        """Serve a time-ordered stream with one request of look-ahead.

        Identical outcomes to the materialised path: arrivals never
        enter the heap, so heap ``seq`` numbers only order heap-vs-heap
        ties and the ``first_seq=n`` offset the tuple path uses is
        irrelevant; the end-of-trace DRAIN (the single kind-6 event,
        which sorts after every same-instant event regardless of
        insertion order) is pushed when the stream runs dry, at the
        last arrival seen — unless ``span`` pins the horizon up front.
        """
        first = next(it, None)
        if first is None:
            raise ConfigError("cannot serve an empty trace")
        if span is not None and first.arrival < span[0]:
            raise ConfigError("streamed arrival lands before the "
                              "span's start")
        t0 = first.arrival if span is None else span[0]
        self._prepare(t0, 1)
        events = EventQueue()
        self._events = events
        if span is not None:
            events.push(span[1], EventKind.DRAIN)
        if self.failures is not None:
            if span is None:
                raise ConfigError(
                    "streaming runs with a failure plan need an "
                    "explicit span=(start, end); outages are sampled "
                    "over the full horizon before arrivals are seen"
                )
            for outage in self.failures.resolve(t0, span[1],
                                                len(self._replicas)):
                if outage.replica >= len(self._replicas):
                    raise ConfigError(
                        f"outage targets replica {outage.replica} but "
                        f"the pool has {len(self._replicas)}"
                    )
                events.push(outage.at, EventKind.FAIL,
                            payload=outage.replica)
                events.push(outage.until, EventKind.RECOVER,
                            payload=outage.replica)
        if self._control_tick:
            events.push(t0 + self._control_tick, EventKind.CONTROL)

        handlers = self._handlers()
        heap = events._heap
        heappop = heapq.heappop
        on_arrival = self._on_arrival
        t_cap = span[1] if span is not None else None
        nxt: Optional[Request] = first
        last_arrival = first.arrival
        i = 0
        while True:
            if nxt is not None:
                if heap and heap[0] < (nxt.arrival, _ARRIVAL, "", i):
                    time, kind, _key, _seq, payload = heappop(heap)
                    handlers[kind](time, payload)
                else:
                    on_arrival(nxt.arrival, nxt)
                    last_arrival = nxt.arrival
                    i += 1
                    nxt = next(it, None)
                    if nxt is None:
                        self._remaining = 0
                        if span is None:
                            events.push(last_arrival, EventKind.DRAIN)
                    else:
                        if nxt.arrival < last_arrival:
                            raise ConfigError(
                                "streamed traces must be time-ordered"
                            )
                        if t_cap is not None and nxt.arrival > t_cap:
                            raise ConfigError(
                                "streamed arrival lands after the "
                                "span's drain horizon"
                            )
                        self._remaining = 1
            elif heap:
                time, kind, _key, _seq, payload = heappop(heap)
                handlers[kind](time, payload)
            else:
                break

        return self._finish()

    # -- event handlers --------------------------------------------------
    # Handlers take (time, payload) — the engine never materialises
    # Event objects on its own queue.
    def _on_arrival(self, time: float, request: Request) -> None:
        self._remaining -= 1
        if self._track_rate:
            # offered load, so shed arrivals still count into the rate
            self._tick_arrivals += 1
        tel = self._tel
        if tel is not None:
            tel.arrival(time, request.model, request.request_id)
        shed_depth = self._shed_depth
        if shed_depth is not None and self._in_system >= shed_depth:
            if self._res_kind == "degrade" and self._candidates():
                self._serve_degraded(time, request, track=False)
                return
            self._shed.append(request.request_id)
            if tel is not None:
                tel.shed(time, request.model, request.request_id)
            return
        if self._admit_fn is not None and not self._admit_fn(
                time, request, self._in_system):
            if self._res_kind == "degrade" and self._candidates():
                self._serve_degraded(time, request, track=False)
                return
            self._shed.append(request.request_id)
            if tel is not None:
                tel.shed(time, request.model, request.request_id)
            return
        self._in_system += 1
        model = request.model
        queue = self._queues.get(model)
        if queue is None:
            queue = self._queues[model] = []
        queue.append(request)
        max_batch = self._max_batch
        ready = self._ready_fn
        while ready(queue):
            batch = tuple(queue[:max_batch])
            del queue[:max_batch]
            self._dispatch(model, batch, flush=time)
        self._arm_flush(model)
        if self._res is not None and self._res_timeout is not None:
            # arm the per-request deadline: a TIMEOUT "check" for the
            # retry / degrade policies, a HEDGE launch for hedging
            kind = self._res_kind
            if kind == "hedge":
                self._events.push(time + self._res_timeout,
                                  EventKind.HEDGE, payload=request)
            else:
                self._events.push(time + self._res_timeout,
                                  EventKind.TIMEOUT,
                                  payload=(False, request, 0))

    def _on_flush(self, time: float, model: str) -> None:
        # a FLUSH fires at its own deadline, so ``time`` *is* the
        # deadline it was armed for
        if self._armed.get(model) == time:
            del self._armed[model]
        queue = self._queues.get(model)
        if not queue or self._deadline_fn(queue) != time:
            return  # stale: the queue flushed or re-headed meanwhile
        max_batch = self._max_batch
        batch = tuple(queue[:max_batch])
        del queue[:max_batch]
        self._dispatch(model, batch, flush=time, cause="deadline")
        self._arm_flush(model)

    def _on_batch_done(self, time: float, batch_id: int) -> None:
        batch = self._inflight[batch_id]
        if not batch.alive:
            return  # aborted by a failure and re-dispatched
        record = batch.record
        self._in_system -= record.size
        done = self._done
        outcome = (record.done, record.energy / record.size)
        window = self._window
        if self._res is not None:
            # duplicate-aware completion: first copy of a request to
            # finish wins, a losing copy's energy share is charged to
            # waste, and a still-outstanding cancellable duplicate is
            # cancelled the instant its original completes
            self._finish_with_duplicates(time, batch_id, record,
                                         batch.requests, outcome)
        elif window is None:
            for request in batch.requests:
                done[request.request_id] = outcome
        else:
            record_done = record.done
            for request in batch.requests:
                done[request.request_id] = outcome
                window.append(record_done - request.arrival)
        if self._tel is not None:
            self._tel.batch_done(time, record, batch_id)
        replica = self._replicas[record.replica]
        if self.steal is not None:
            # stealing may empty ``pending`` and needs to know which
            # model's weights the idle array is left holding
            replica.done_model = record.model
        if batch_id in replica.pending:
            replica.pending.remove(batch_id)
        if replica.draining and not replica.pending:
            replica.draining = False
            replica.up = False
            self._trace.append((time, self._n_up()))

    def _on_fail(self, time: float, index: int) -> None:
        replica = self._replicas[index]
        if not replica.up:
            return
        replica.up = False
        replica.failed = True
        replica.draining = False
        self._trace.append((time, self._n_up()))
        victims, replica.pending = list(replica.pending), []
        for batch_id in victims:
            batch = self._inflight[batch_id]
            batch.alive = False
            record = batch.record
            if record.start < time and record.service > 0:
                progress = min(1.0, (time - record.start)
                               / record.service)
                self._wasted += record.energy * progress
        if self._tel is not None:
            self._tel.fail(time, index, len(victims))
        for batch_id in victims:
            batch = self._inflight[batch_id]
            self._redispatched += 1
            self._dispatch(batch.record.model, batch.requests,
                           flush=batch.record.flush, now=time,
                           cause="redispatch")

    def _on_recover(self, time: float, index: int) -> None:
        replica = self._replicas[index]
        if replica.up or not replica.failed:
            # not down, or down by the autoscaler's choice — a stale
            # recovery must not resurrect a retired replica
            return
        replica.up = True
        replica.failed = False
        replica.draining = False
        replica.free_at = time
        replica.available_at = time
        replica.last_model = None  # the power cycle cleared the array
        replica.done_model = None
        self._trace.append((time, self._n_up()))
        if self._tel is not None:
            self._tel.recover(time, index)
        self._drain_waiting(time)

    def _on_control(self, time: float, _payload: object) -> None:
        if self._tel is not None:
            # sampled before any scale/steal action: the timeline shows
            # the state the controller reacted *to*
            self._tel.sample(time, self)
        scale = self.scale
        queued = self._in_system  # queued + in-flight: the real backlog
        if scale is not None:
            alive = [r for r in self._replicas
                     if r.up and not r.draining]
            arrivals, self._tick_arrivals = self._tick_arrivals, 0
            action = scale.decide(time, queued, len(alive),
                                  self._window, arrivals,
                                  self._control_tick)
            if action and time - self._last_scale >= scale.cooldown:
                if action > 0 and len(alive) < scale.max_replicas:
                    self._scale_up(time)
                    self._last_scale = time
                elif action < 0 and len(alive) > scale.min_replicas:
                    self._scale_down(time, alive)
                    self._last_scale = time
        if self.steal is not None:
            self._work_steal(time)
        if (self._remaining or queued
                or any(r.pending for r in self._replicas)):
            self._events.push(time + self._control_tick,
                              EventKind.CONTROL)

    def _on_drain(self, time: float, _payload: object) -> None:
        """Flush deadline-less leftovers at the end of the trace.

        Queues under a deadline policy drain through their own FLUSH
        events at the true instants; only fixed-style policies need
        this sweep, at the last arrival, in the flush policy's model
        order (stable sorted order for the stock FIFO).
        """
        max_batch = self._max_batch
        for model in self.flush.drain_order(self._queues):
            queue = self._queues[model]
            if queue and self._deadline_fn(queue) is not None:
                continue
            while queue:
                batch = tuple(queue[:max_batch])
                del queue[:max_batch]
                self._dispatch(model, batch, flush=time, cause="drain")

    # -- resilience handlers ---------------------------------------------
    def _finish_with_duplicates(self, time: float, batch_id: int,
                                record: BatchRecord,
                                requests: tuple[Request, ...],
                                outcome: tuple[float, float]) -> None:
        """Record completions when duplicates may exist in flight."""
        done = self._done
        window = self._window
        share = outcome[1]
        record_done = record.done
        for request in requests:
            rid = request.request_id
            if rid in done:
                # a faster copy already answered this request; the
                # losing copy's service energy is real but useless
                self._wasted += share
                continue
            done[rid] = outcome
            if window is not None:
                window.append(record_done - request.arrival)
            solo = self._solo.pop(rid, None)
            if solo is not None and solo != batch_id:
                self._events.push(time, EventKind.CANCEL, payload=solo)

    def _on_timeout(self, time: float, payload: tuple) -> None:
        """A retry/degrade deadline check, or a backoff-delayed retry.

        The payload is ``(fire, request, attempts)``: a check
        (``fire=False``) that finds the request unfinished counts a
        timeout and — within the retry budget — schedules the actual
        retry after the policy's seeded backoff; the fire event
        dispatches the duplicate and arms the next check.
        """
        fire, request, attempts = payload
        rid = request.request_id
        if rid in self._done:
            return  # completed in the meantime; nothing to do
        res = self._res
        if not fire:
            self._timeouts += 1
            if self._tel is not None:
                self._tel.timeout(time, request.model, rid)
            if self._res_kind == "degrade":
                if rid not in self._solo and self._candidates():
                    self._serve_degraded(time, request, track=True)
                return
            if attempts >= res.budget:
                return  # budget exhausted; the original copy may
                        # still finish, just late
            attempts += 1
            self._events.push(time + res.backoff_s(rid, attempts),
                              EventKind.TIMEOUT,
                              payload=(True, request, attempts))
            return
        # fire: launch the duplicate attempt as its own singleton
        # batch (bypassing admission — the client already holds a
        # slot) through the normal dispatch policy, then arm the next
        # deadline check
        self._retries += 1
        if self._tel is not None:
            self._tel.retry(time, request.model, rid, attempts)
        self._in_system += 1
        dup = self._dispatch(request.model, (request,), flush=time,
                             now=time, cause="retry")
        if dup is not None:
            self._solo[rid] = dup
        self._events.push(time + self._res_timeout, EventKind.TIMEOUT,
                          payload=(False, request, attempts))

    def _on_hedge(self, time: float, request: Request) -> None:
        """Launch a hedged duplicate on the second-best replica."""
        rid = request.request_id
        if rid in self._done or rid in self._solo:
            return  # answered, or already hedged
        candidates = self._candidates()
        if len(candidates) < 2:
            # a hedge to the only live replica would queue behind the
            # very batch it is trying to outrun — pure added load (the
            # classic hedged-request guard: never hedge without an
            # independent destination)
            return
        # second-best by earliest availability: the best candidate is
        # (approximately) where the original batch went, so the hedge
        # buys an independent failure/queueing domain
        ranked = sorted(candidates,
                        key=lambda r: (max(r.free_at, r.available_at),
                                       r.index))
        target = ranked[1]
        self._hedges += 1
        if self._tel is not None:
            self._tel.hedge(time, request.model, rid, target.index)
        self._in_system += 1
        dup = self._dispatch(request.model, (request,), flush=time,
                             now=time, to=target, cause="hedge")
        if dup is not None:
            self._solo[rid] = dup

    def _on_cancel(self, time: float, batch_id: int) -> None:
        """Cancel a losing duplicate singleton still in flight.

        Energy for the fraction of service already run is charged to
        waste (exactly the failure-abort accounting).  The replica's
        schedule is reclaimed only when the cancelled batch was its
        pending tail — earlier-promised start times never move; a
        mid-schedule cancellation leaves the gap in place.
        """
        entry = self._inflight.get(batch_id)
        if entry is None or not entry.alive:
            return
        record = entry.record
        if record.done <= time:
            return  # completed at this very instant; BATCH_DONE
                    # (lower kind) already ran and recorded it
        entry.alive = False
        self._cancels += 1
        self._in_system -= record.size
        if record.start < time and record.service > 0:
            progress = min(1.0, (time - record.start) / record.service)
            self._wasted += record.energy * progress
        replica = self._replicas[record.replica]
        pending = replica.pending
        if batch_id in pending:
            was_tail = pending[-1] == batch_id
            pending.remove(batch_id)
            if was_tail:
                if pending:
                    tail = self._inflight[pending[-1]].record
                    replica.free_at = tail.done
                    replica.last_model = tail.model
                else:
                    # everything previously scheduled has completed by
                    # now, so the replica is genuinely free
                    replica.free_at = time
        if self._tel is not None:
            self._tel.cancel(time, record, batch_id)

    def _serve_degraded(self, time: float, request: Request,
                        track: bool) -> None:
        """Serve ``request`` on the degraded (discounted) path.

        A singleton dispatch at the policy's service/energy discount —
        the stand-in for a distilled variant or an AQFP/SNN-scheme
        replica.  ``track`` registers the duplicate for cancellation
        (timeout rescue, where a full-fidelity copy is still in
        flight); shed rescue has no competing copy to race.
        """
        res = self._res
        self._degraded += 1
        if self._tel is not None:
            self._tel.degrade(time, request.model, request.request_id)
        self._in_system += 1
        dup = self._dispatch(
            request.model, (request,), flush=time, now=time,
            cause="degrade",
            rate_scale=(res.service_scale, res.energy_scale))
        if track and dup is not None:
            self._solo[request.request_id] = dup

    # -- internals -------------------------------------------------------
    def _n_up(self) -> int:
        return sum(1 for r in self._replicas if r.up)

    def _arm_flush(self, model: str) -> None:
        """Schedule the queue's current deadline, once per deadline."""
        queue = self._queues.get(model)
        if not queue:
            return
        deadline = self._deadline_fn(queue)
        if deadline is None or self._armed.get(model) == deadline:
            return
        self._armed[model] = deadline
        flush_key = self._flush_key
        self._events.push(deadline, EventKind.FLUSH,
                          key=(model if flush_key is None
                               else flush_key(model, deadline)),
                          payload=model)

    def _rate(self, accelerator, model: str,
              size: int) -> tuple[float, float]:
        """(service, energy) of one batch on one replica configuration.

        Keyed by configuration identity — replica configurations live
        for the whole run — so the steady-state dispatch path is one
        small-tuple dict hit instead of a trip through the memo cache's
        structural lookup.
        """
        key = (id(accelerator), model, size)
        rates = self._rates.get(key)
        if rates is None:
            rates = (self.service_fn(accelerator, model, size),
                     self.energy_fn(accelerator, model, size))
            if self.memoize_rates:
                self._rates[key] = rates
        return rates

    def _candidates(self) -> list[Replica]:
        return [r for r in self._replicas if r.up and not r.draining]

    def _switch(self, accelerator, model: str, size: int) -> float:
        """Memoised weight-deployment switch charge (s)."""
        key = (id(accelerator), model, size)
        charge = self._switch_rates.get(key)
        if charge is None:
            charge = self.switch_fn(accelerator, model, size)
            if self.memoize_rates:
                self._switch_rates[key] = charge
        return charge

    def _service_with_switch(self, replica: Replica, model: str,
                             size: int) -> tuple[float, float]:
        """(busy time, energy) of one batch on ``replica`` *now*.

        Busy time is the service rate plus the weight-deployment
        switch charge when the replica's resident weights belong to a
        different model.  Both the dispatch path and the steal
        estimate go through here, so what stealing predicts is
        exactly what dispatching charges.
        """
        service, energy = self._rate(replica.accelerator, model, size)
        last_model = replica.last_model
        if (last_model is not None and last_model != model
                and self.switch_fn is not None):
            # the array holds another model's weights: the incoming
            # batch's deployment cannot overlap and is charged whole
            service = service + self._switch(replica.accelerator,
                                             model, size)
        return service, energy

    def _dispatch(self, model: str, batch: tuple[Request, ...],
                  flush: float, now: Optional[float] = None,
                  to: Optional[Replica] = None,
                  cause: str = "ready",
                  rate_scale: Optional[tuple[float, float]] = None,
                  ) -> Optional[int]:
        """Serve one flushed batch on a replica (or park it).

        ``now`` is the re-dispatch instant after a failure or a steal;
        fresh flushes start no earlier than ``flush`` anyway.  ``to``
        forces the target replica (work stealing has already chosen),
        bypassing the dispatch policy.  ``cause`` only labels the
        telemetry flush event (why the batch left its queue).
        ``rate_scale`` applies a (service, energy) discount — the
        degraded-serving path.  Returns the batch id, or None when the
        batch was parked (no live replica).
        """
        candidates = [r for r in self._replicas if r.up and not r.draining]
        if not candidates:
            self._waiting.append((model, batch, flush))
            if self._tel is not None:
                self._tel.park(flush if now is None else now, model,
                               len(batch))
            return None
        floor = flush if now is None else max(flush, now)
        size = len(batch)
        if to is not None:
            replica = to
        else:
            # no single-candidate shortcut: round_robin advances (and
            # with one candidate, resets) its cursor on every pick, so
            # even a degenerate pool must route through the policy
            replica = self._pick(self, model, size, floor, candidates)
        service, energy = self._service_with_switch(replica, model, size)
        if rate_scale is not None:
            service *= rate_scale[0]
            energy *= rate_scale[1]
        free_at, available_at = replica.free_at, replica.available_at
        start = floor if floor >= free_at else free_at
        if start < available_at:
            start = available_at
        replica.last_model = model
        done = start + service
        replica.free_at = done
        batch_id = self._next_batch
        self._next_batch = batch_id + 1
        record = BatchRecord(model=model, size=size,
                             replica=replica.index, flush=flush,
                             start=start, done=done, energy=energy)
        self._inflight[batch_id] = _InFlight(record=record, requests=batch)
        self._batch_order.append(batch_id)
        replica.pending.append(batch_id)
        self._events.push(done, EventKind.BATCH_DONE, payload=batch_id)
        if self._tel is not None:
            self._tel.flush(floor, record, batch_id, cause)
        return batch_id

    def _drain_waiting(self, now: float) -> None:
        waiting = self._waiting
        pick_waiting = self._waiting_pick
        while waiting and self._candidates():
            if pick_waiting is None:
                model, batch, flush = waiting.popleft()
            else:
                index = pick_waiting(waiting)
                model, batch, flush = waiting[index]
                del waiting[index]
            self._dispatch(model, batch, flush=flush, now=now,
                           cause="waiting")

    def _work_steal(self, now: float) -> None:
        """Re-dispatch tail batches from backlogged to idle replicas.

        Only the victim's *last* scheduled batch is eligible (so its
        earlier schedule keeps every promised start time) and only if
        it has not started; the thief is whichever live replica
        completes it earliest under its own service rate and switch
        charge.  The stolen batch keeps its original flush instant —
        requests neither vanish nor duplicate, their batch simply
        completes sooner.
        """
        policy = self.steal
        for _ in range(policy.max_steals):
            candidates = self._candidates()
            if len(candidates) < 2:
                return
            victim = max(candidates, key=lambda r: (r.free_at, r.index))
            if not victim.pending:
                return
            batch_id = victim.pending[-1]
            entry = self._inflight[batch_id]
            record = entry.record
            if record.start <= now:
                return  # already running; nothing movable
            model, size = record.model, record.size
            best, best_done = None, record.done - policy.min_gain
            for replica in candidates:
                if replica is victim:
                    continue
                service = self._service_with_switch(replica, model,
                                                    size)[0]
                done = max(now, replica.free_at,
                           replica.available_at) + service
                if done < best_done:
                    best, best_done = replica, done
            if best is None:
                return
            victim.pending.pop()
            entry.alive = False
            if victim.pending:
                tail = self._inflight[victim.pending[-1]].record
                victim.free_at = tail.done
                victim.last_model = tail.model
            else:
                victim.free_at = now
                victim.last_model = victim.done_model
            self._stolen += 1
            if self._tel is not None:
                self._tel.steal(now, record, batch_id, victim.index,
                                best.index)
            self._dispatch(model, entry.requests, flush=record.flush,
                           now=now, to=best, cause="steal")

    def _scale_up(self, now: float) -> None:
        policy = self.scale
        for replica in self._replicas:
            if replica.up and replica.draining:
                replica.draining = False  # cancel a retirement instead
                self._scale_events.append((now, "up"))
                if self._tel is not None:
                    self._tel.scale(now, "up", self._n_up())
                self._drain_waiting(now)
                return
        for replica in self._replicas:
            if not replica.up and not replica.failed and not replica.pending:
                # revive a retired replica (fresh warm-up) instead of
                # growing the pool: under oscillating load, appending
                # a new Replica per scale cycle made the pool list —
                # which every dispatch scans — grow without bound
                replica.up = True
                replica.draining = False
                replica.free_at = now
                replica.available_at = now + policy.warmup
                replica.last_model = None  # power-gated while retired
                replica.done_model = None
                self._trace.append((now, self._n_up()))
                self._scale_events.append((now, "up"))
                if self._tel is not None:
                    self._tel.scale(now, "up", self._n_up())
                self._drain_waiting(now)
                return
        replica = Replica(index=len(self._replicas),
                          accelerator=self._initial[0], free_at=now,
                          available_at=now + policy.warmup)
        self._replicas.append(replica)
        self._trace.append((now, self._n_up()))
        self._scale_events.append((now, "up"))
        if self._tel is not None:
            self._tel.scale(now, "up", self._n_up())
        self._drain_waiting(now)

    def _scale_down(self, now: float,
                    alive: Sequence[Replica]) -> None:
        victim = min(alive, key=lambda r: (len(r.pending), -r.index))
        if victim.pending:
            victim.draining = True
        else:
            victim.up = False
            self._trace.append((now, self._n_up()))
        self._scale_events.append((now, "down"))
        if self._tel is not None:
            self._tel.scale(now, "down", self._n_up())
