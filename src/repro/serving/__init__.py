"""Request-serving simulation on top of the accelerator models.

The production-facing layer: request traffic (Poisson / bursty / ramp
/ diurnal arrivals over the model zoo), dynamic batching, clusters of
homogeneous or mixed accelerator replicas, and a control plane —
SLO-aware autoscaling, failure injection with batch re-dispatch, and
admission control — all running on the discrete-event engine in
:mod:`repro.serving.events`.  Scheduling decisions (replica dispatch,
flush ordering, scaling, admission, work stealing) are pluggable
policies from :mod:`repro.serving.policies`.  A layer-result memo
cache keeps million-request traces cheap, and can persist its totals
across runs through the runtime result cache.

For million-request scale, traces stream (:func:`stream_trace`,
bit-identical to :func:`generate_trace` with O(1) requests resident)
and :class:`ShardedEngine` (:mod:`repro.serving.sharding`) fans a
deterministically sharded trace across worker processes, merging
exact counters plus a mergeable latency digest back into one result.

On top of the cluster sits the geo tier (:mod:`repro.serving.geo`):
a :class:`GeoRouter` routes region-tagged traffic over a static
:class:`Interconnect` (ring / mesh / tree) to per-region engines,
charging deterministic network delay, and merge-reduces the regional
outcomes with the same digest machinery the sharded engine uses.
"""

from repro.serving.batching import (
    FixedSizeBatching,
    POLICIES,
    TimeoutBatching,
    make_policy,
)
from repro.serving.events import (
    AutoscalePolicy,
    ClusterEngine,
    DISPATCH_STRATEGIES,
    Event,
    EventKind,
    EventQueue,
    FailurePlan,
    Outage,
    Replica,
    SloPolicy,
)
from repro.serving.geo import (
    GeoResult,
    GeoRouter,
    RegionOutcome,
    RegionSpec,
    STOCK_REGIONS,
    default_regions,
    validate_geo,
)
from repro.serving.interconnect import (
    Interconnect,
    REQUEST_BYTES,
    TOPOLOGIES,
)
from repro.serving.memo import (
    CacheStats,
    Interner,
    LayerMemoCache,
    load_persistent_memo,
    store_persistent_memo,
)
from repro.serving.policies import (
    AdmissionPolicy,
    CheapestJouleDispatch,
    DISPATCH_POLICIES,
    DegradePolicy,
    DepthAdmission,
    DispatchPolicy,
    EdfFlush,
    FLUSH_POLICIES,
    FastestFinishDispatch,
    FifoFlush,
    FlushPolicy,
    FollowSunDispatch,
    ForecastScalePolicy,
    GEO_POLICIES,
    GeoDispatchPolicy,
    HedgePolicy,
    HomeRegionDispatch,
    LeastLoadedDispatch,
    RESILIENCE_POLICIES,
    ReactiveScalePolicy,
    RegionFailurePlan,
    RegionOutage,
    ResiliencePolicy,
    RetryPolicy,
    RoundRobinDispatch,
    ScalePolicy,
    ShardDispatch,
    SpilloverDispatch,
    WorkStealPolicy,
    make_dispatch,
    make_flush,
    make_geo,
    make_resilience,
    make_scale,
)
from repro.serving.sharding import (
    LatencyDigest,
    ShardOutcome,
    ShardedEngine,
    ShardedResult,
    validate_sharding,
)
from repro.serving.simulator import (
    BatchRecord,
    ServingResult,
    ServingSimulator,
)
from repro.serving.telemetry import (
    TRACE_SCHEMA,
    Telemetry,
    load_trace,
)
from repro.serving.workload import (
    ARRIVAL_SHAPES,
    BurstyProcess,
    DiurnalProcess,
    ModelMix,
    PoissonProcess,
    RampProcess,
    Request,
    SCENARIOS,
    Scenario,
    TraceShard,
    generate_trace,
    get_scenario,
    shard_key,
    shard_seeds,
    shard_trace,
    stream_trace,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "BatchRecord",
    "BurstyProcess",
    "CacheStats",
    "CheapestJouleDispatch",
    "ClusterEngine",
    "DISPATCH_POLICIES",
    "DISPATCH_STRATEGIES",
    "DegradePolicy",
    "DepthAdmission",
    "DispatchPolicy",
    "DiurnalProcess",
    "EdfFlush",
    "Event",
    "EventKind",
    "EventQueue",
    "FLUSH_POLICIES",
    "FailurePlan",
    "FastestFinishDispatch",
    "FifoFlush",
    "FixedSizeBatching",
    "FlushPolicy",
    "FollowSunDispatch",
    "ForecastScalePolicy",
    "GEO_POLICIES",
    "GeoDispatchPolicy",
    "GeoResult",
    "GeoRouter",
    "HedgePolicy",
    "HomeRegionDispatch",
    "Interconnect",
    "Interner",
    "LatencyDigest",
    "LayerMemoCache",
    "LeastLoadedDispatch",
    "ModelMix",
    "Outage",
    "POLICIES",
    "PoissonProcess",
    "REQUEST_BYTES",
    "RESILIENCE_POLICIES",
    "RampProcess",
    "ReactiveScalePolicy",
    "RegionFailurePlan",
    "RegionOutage",
    "RegionOutcome",
    "RegionSpec",
    "Replica",
    "Request",
    "ResiliencePolicy",
    "RetryPolicy",
    "RoundRobinDispatch",
    "SCENARIOS",
    "STOCK_REGIONS",
    "ScalePolicy",
    "Scenario",
    "ServingResult",
    "ServingSimulator",
    "ShardDispatch",
    "ShardOutcome",
    "ShardedEngine",
    "ShardedResult",
    "SloPolicy",
    "SpilloverDispatch",
    "TOPOLOGIES",
    "TRACE_SCHEMA",
    "Telemetry",
    "TimeoutBatching",
    "TraceShard",
    "WorkStealPolicy",
    "default_regions",
    "generate_trace",
    "get_scenario",
    "load_persistent_memo",
    "load_trace",
    "make_dispatch",
    "make_flush",
    "make_geo",
    "make_policy",
    "make_resilience",
    "make_scale",
    "shard_key",
    "shard_seeds",
    "shard_trace",
    "store_persistent_memo",
    "stream_trace",
    "validate_geo",
    "validate_sharding",
]
