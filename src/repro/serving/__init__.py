"""Request-serving simulation on top of the accelerator models.

The production-facing layer: request traffic (Poisson / bursty / ramp
/ diurnal arrivals over the model zoo), dynamic batching, clusters of
homogeneous or mixed accelerator replicas, and a control plane —
SLO-aware autoscaling, failure injection with batch re-dispatch, and
admission control — all running on the discrete-event engine in
:mod:`repro.serving.events`.  A layer-result memo cache keeps
million-request traces cheap.
"""

from repro.serving.batching import (
    FixedSizeBatching,
    POLICIES,
    TimeoutBatching,
    make_policy,
)
from repro.serving.events import (
    AutoscalePolicy,
    ClusterEngine,
    DISPATCH_STRATEGIES,
    Event,
    EventKind,
    EventQueue,
    FailurePlan,
    Outage,
    Replica,
    SloPolicy,
)
from repro.serving.memo import CacheStats, Interner, LayerMemoCache
from repro.serving.simulator import (
    BatchRecord,
    ServingResult,
    ServingSimulator,
)
from repro.serving.workload import (
    ARRIVAL_SHAPES,
    BurstyProcess,
    DiurnalProcess,
    ModelMix,
    PoissonProcess,
    RampProcess,
    Request,
    SCENARIOS,
    Scenario,
    generate_trace,
    get_scenario,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "AutoscalePolicy",
    "BatchRecord",
    "BurstyProcess",
    "CacheStats",
    "ClusterEngine",
    "DISPATCH_STRATEGIES",
    "DiurnalProcess",
    "Event",
    "EventKind",
    "EventQueue",
    "FailurePlan",
    "FixedSizeBatching",
    "Interner",
    "LayerMemoCache",
    "ModelMix",
    "Outage",
    "POLICIES",
    "PoissonProcess",
    "RampProcess",
    "Replica",
    "Request",
    "SCENARIOS",
    "Scenario",
    "ServingResult",
    "ServingSimulator",
    "SloPolicy",
    "TimeoutBatching",
    "generate_trace",
    "get_scenario",
    "make_policy",
]
