"""Request-serving simulation on top of the accelerator models.

The production-facing layer: request traffic (Poisson / bursty / ramp
arrivals over the model zoo), dynamic batching, multi-accelerator
dispatch, and a layer-result memo cache that makes million-request
traces cheap.  See :mod:`repro.serving.simulator` for the event loop.
"""

from repro.serving.batching import (
    FixedSizeBatching,
    POLICIES,
    TimeoutBatching,
    make_policy,
)
from repro.serving.memo import CacheStats, LayerMemoCache
from repro.serving.simulator import (
    BatchRecord,
    DISPATCH_STRATEGIES,
    ServingResult,
    ServingSimulator,
)
from repro.serving.workload import (
    ARRIVAL_SHAPES,
    BurstyProcess,
    ModelMix,
    PoissonProcess,
    RampProcess,
    Request,
    SCENARIOS,
    Scenario,
    generate_trace,
    get_scenario,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "BatchRecord",
    "BurstyProcess",
    "CacheStats",
    "DISPATCH_STRATEGIES",
    "FixedSizeBatching",
    "LayerMemoCache",
    "ModelMix",
    "POLICIES",
    "PoissonProcess",
    "RampProcess",
    "Request",
    "SCENARIOS",
    "Scenario",
    "ServingResult",
    "ServingSimulator",
    "TimeoutBatching",
    "generate_trace",
    "get_scenario",
    "make_policy",
]
