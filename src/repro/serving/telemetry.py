"""Structured serving telemetry: event traces, a metrics timeline,
monotonic counters.

The control plane makes rich decisions — EDF flushes, work stealing,
predictive scaling — but a :class:`~repro.serving.simulator.ServingResult`
only shows their end-of-run aggregates.  A :class:`Telemetry` sink,
threaded through :class:`~repro.serving.events.ClusterEngine`, records
*how* a run unfolded:

- a structured **event trace**: arrivals, sheds, flushes (every batch
  leaving its queue, tagged with why — ready / deadline / drain /
  re-dispatch / steal / parked-drain), batch starts and completions,
  replica failures and recoveries, scale actions — each stamped with
  sim-time and, where meaningful, replica, model and batch size;
- a per-control-tick **metrics timeline**: queue depth per model,
  in-flight batches per replica, in-system requests, live replica
  count, windowed p95 (when a latency-driven scale metric maintains
  one), an arrival-rate estimate, and cumulative served energy;
- monotonic **counters** (arrivals, sheds, batches, steals, scale
  actions, ...) for cheap end-of-run assertions.

Telemetry is strictly an *observer*: the engine never reads it, so a
run with a sink attached emits bit-identical per-request latencies and
energies to the same run without one (enforced by
``tests/test_serving_telemetry.py``), and the ``None`` path costs one
attribute check per handler.

Rows are plain dicts (``t`` = sim-time, ``ev`` = kind) so they feed
straight into :mod:`repro.eval.blocks` and serialise as JSONL
(:meth:`Telemetry.save` / :func:`load_trace`) for ``repro serve-sim
--trace out.jsonl`` and the ``repro report`` timeline charts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError

#: Schema tag written on the first line of a saved trace.
TRACE_SCHEMA = "repro-telemetry/1"

#: Event kinds a trace may contain (``sample`` rows carry the metrics
#: timeline; ``run`` rows mark run boundaries in a shared sink;
#: ``network`` rows are geo-tier inter-region transfers and ``region``
#: rows the geo tier's per-region summaries).
EVENT_KINDS = ("run", "arrival", "shed", "flush", "batch_done", "fail",
               "recover", "steal", "scale", "park", "sample", "network",
               "region", "timeout", "retry", "hedge", "cancel",
               "degrade")


class Telemetry:
    """Opt-in observability sink for one or more engine runs.

    Args:
        events: record the per-request / per-batch event trace.  Off
            keeps only the timeline and counters — useful on
            million-request traces where per-arrival rows would
            dominate memory.
        tick: sampling interval (s) for the metrics timeline when the
            engine has no control tick of its own (no autoscaler, no
            stealing).  ``None`` samples only on the engine's existing
            control ticks.

    Attributes:
        rows: every recorded row, in emission (= sim-time) order.
        counters: monotonic event counts for the sink's lifetime.
    """

    __slots__ = ("rows", "counters", "record_events", "tick", "_run",
                 "_energy", "_done", "_arrivals", "_last_sample")

    def __init__(self, events: bool = True,
                 tick: Optional[float] = None) -> None:
        if tick is not None and tick <= 0:
            raise ConfigError("telemetry tick must be positive")
        self.rows: list[dict] = []
        self.counters: dict[str, int] = {
            "runs": 0, "arrivals": 0, "shed": 0, "flushes": 0,
            "batches_done": 0, "requests_done": 0, "failures": 0,
            "recoveries": 0, "redispatched": 0, "stolen": 0,
            "scale_ups": 0, "scale_downs": 0, "parked": 0, "samples": 0,
            "timeouts": 0, "retries": 0, "hedges": 0, "cancels": 0,
            "degraded": 0,
        }
        self.record_events = events
        self.tick = tick
        self._run = -1
        self._energy = 0.0
        self._done = 0
        self._arrivals = 0
        self._last_sample: Optional[tuple[float, int]] = None

    # -- run boundaries ---------------------------------------------------
    def begin_run(self, **meta) -> None:
        """Mark the start of one engine run (scenario, policy, ...)."""
        self._run += 1
        self.counters["runs"] += 1
        self._energy = 0.0
        self._done = 0
        self._arrivals = 0
        self._last_sample = None
        row = {"t": 0.0, "ev": "run", "run": self._run}
        row.update(meta)
        self.rows.append(row)

    def _emit(self, row: dict) -> None:
        row["run"] = self._run
        self.rows.append(row)

    # -- engine hooks -----------------------------------------------------
    # Called by ClusterEngine only when a sink is attached; none of
    # them returns anything the engine could act on.
    def arrival(self, t: float, model: str, request_id: int) -> None:
        self.counters["arrivals"] += 1
        self._arrivals += 1
        if self.record_events:
            self._emit({"t": t, "ev": "arrival", "model": model,
                        "request": request_id})

    def shed(self, t: float, model: str, request_id: int) -> None:
        self.counters["shed"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "shed", "model": model,
                        "request": request_id})

    def flush(self, t: float, record, batch_id: int, cause: str) -> None:
        """One batch left its queue for a replica (cause: ready /
        deadline / drain / redispatch / steal / waiting)."""
        self.counters["flushes"] += 1
        if cause == "redispatch":
            self.counters["redispatched"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "flush", "cause": cause,
                        "model": record.model, "size": record.size,
                        "replica": record.replica, "batch": batch_id,
                        "start": record.start, "done": record.done})

    def batch_done(self, t: float, record, batch_id: int) -> None:
        self.counters["batches_done"] += 1
        self.counters["requests_done"] += record.size
        self._done += record.size
        self._energy += record.energy
        if self.record_events:
            self._emit({"t": t, "ev": "batch_done", "model": record.model,
                        "size": record.size, "replica": record.replica,
                        "batch": batch_id, "energy_j": record.energy,
                        "service_s": record.service})

    def fail(self, t: float, replica: int, aborted: int) -> None:
        self.counters["failures"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "fail", "replica": replica,
                        "aborted": aborted})

    def recover(self, t: float, replica: int) -> None:
        self.counters["recoveries"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "recover", "replica": replica})

    def steal(self, t: float, record, batch_id: int, victim: int,
              thief: int) -> None:
        self.counters["stolen"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "steal", "model": record.model,
                        "size": record.size, "batch": batch_id,
                        "victim": victim, "thief": thief})

    def scale(self, t: float, action: str, replicas: int) -> None:
        self.counters["scale_ups" if action == "up"
                      else "scale_downs"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "scale", "action": action,
                        "replicas": replicas})

    def park(self, t: float, model: str, size: int) -> None:
        """A flushed batch found no live replica and was parked."""
        self.counters["parked"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "park", "model": model,
                        "size": size})

    # -- resilience hooks -------------------------------------------------
    def timeout(self, t: float, model: str, request_id: int) -> None:
        """A deadline check found the request still unfinished."""
        self.counters["timeouts"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "timeout", "model": model,
                        "request": request_id})

    def retry(self, t: float, model: str, request_id: int,
              attempt: int) -> None:
        self.counters["retries"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "retry", "model": model,
                        "request": request_id, "attempt": attempt})

    def hedge(self, t: float, model: str, request_id: int,
              replica: int) -> None:
        self.counters["hedges"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "hedge", "model": model,
                        "request": request_id, "replica": replica})

    def cancel(self, t: float, record, batch_id: int) -> None:
        """A losing duplicate was cancelled before completion."""
        self.counters["cancels"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "cancel", "model": record.model,
                        "size": record.size, "replica": record.replica,
                        "batch": batch_id})

    def degrade(self, t: float, model: str, request_id: int) -> None:
        """A request was served on the degraded (discounted) path."""
        self.counters["degraded"] += 1
        if self.record_events:
            self._emit({"t": t, "ev": "degrade", "model": model,
                        "request": request_id})

    def sample(self, t: float, engine) -> None:
        """One metrics-timeline point, read off the live engine state."""
        self.counters["samples"] += 1
        last = self._last_sample
        if last is not None and t > last[0]:
            rate = (self._arrivals - last[1]) / (t - last[0])
        else:
            rate = 0.0
        self._last_sample = (t, self._arrivals)
        window = engine._window
        p95 = (window.percentile(95.0) if window is not None
               and len(window) else None)
        self._emit({
            "t": t, "ev": "sample",
            "queues": {m: len(q) for m, q in engine._queues.items() if q},
            # string keys so a JSONL round trip reproduces the row
            "inflight": {str(r.index): len(r.pending)
                         for r in engine._replicas if r.pending},
            "in_system": engine._in_system,
            "replicas": sum(1 for r in engine._replicas if r.up),
            "p95_s": p95,
            "rate_rps": rate,
            "energy_j": self._energy,
            "done": self._done,
        })

    # -- views ------------------------------------------------------------
    def events(self) -> list[dict]:
        """The event-trace rows (everything but timeline samples)."""
        return [r for r in self.rows if r["ev"] not in ("sample", "run")]

    def samples(self) -> list[dict]:
        """The metrics-timeline rows."""
        return [r for r in self.rows if r["ev"] == "sample"]

    # -- persistence ------------------------------------------------------
    def save(self, path) -> int:
        """Write the trace as JSONL; returns the row count written.

        Line 1 is a meta header (schema tag + counters); every further
        line is one row.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(json.dumps({
                "schema": TRACE_SCHEMA,
                "rows": len(self.rows),
                "counters": self.counters,
            }, sort_keys=True) + "\n")
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return len(self.rows)


def load_trace(path) -> tuple[dict, list[dict]]:
    """Read a saved trace back as ``(meta, rows)``.

    Malformed lines are skipped like the run ledger's — a truncated
    tail never poisons the trace.

    Raises:
        ConfigError: when the file is missing or carries no header.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError:
        raise ConfigError(f"no telemetry trace at '{path}'") from None
    meta: Optional[dict] = None
    rows: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(data, dict):
            continue
        if meta is None and "schema" in data:
            meta = data
            continue
        if "ev" in data:
            rows.append(data)
    if meta is None:
        raise ConfigError(f"'{path}' is not a telemetry trace "
                          f"(missing schema header)")
    return meta, rows
