"""Geo-distributed serving: a router over per-region cluster engines.

A :class:`GeoRouter` run simulates one *planet-scale* trace: every
region admits its own seeded request stream (with its local-time
diurnal crest), a :class:`~repro.serving.policies.GeoDispatchPolicy`
decides which region *serves* each request, and the interconnect
(:mod:`repro.serving.interconnect`) charges the cross-region transfer
as a NETWORK event — the request's effective arrival at its serving
region is its admission instant plus the deterministic comm-time.
Each region then runs as an independent
:class:`~repro.serving.events.ClusterEngine` in its own worker
process (region == shard: the fan-out rides the same
:mod:`repro.runtime` pool and the same exact merge as
:class:`~repro.serving.sharding.ShardedEngine`), and the parent
reduces the per-region :class:`~repro.serving.sharding.ShardOutcome`
summaries into one :class:`GeoResult` with per-region SLO attainment
and energy-cost rows.

Why this is exact: routing is a pure function of the admission
instant, the home region, and the static fleet plan (capacities,
prices, diurnal phases, interconnect, outage windows) — never of live
engine state — so every worker replays the identical global routing
scan and filters out its own deliveries, exactly as
:func:`~repro.serving.workload.shard_trace` replays the global trace.
The NETWORK delivery queue (an :class:`~repro.serving.events.
EventQueue`) re-sorts admissions into delivery order with bounded
buffering: a delivery can pop as soon as the scan's current admission
time passes it, because every future delivery lands no earlier than
its own (future) admission.

The zero-drift anchor: with one region and stock policies the
regional stream *is* the global trace (same seed, same rate, zero
interconnect delay), so the geo path is bit-identical to the plain
:class:`~repro.serving.simulator.ServingSimulator` run — per-request
latencies and energies — on every stock scenario x policy cell
(``tests/test_serving_geo.py`` holds it there).
"""

from __future__ import annotations

import heapq
import math
import random as _random
from collections import deque
from dataclasses import dataclass, replace
from itertools import chain
from time import perf_counter
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigError
from repro.runtime.executor import parallel_map, worker_payload
from repro.serving.batching import make_policy
from repro.serving.events import (
    EventKind,
    EventQueue,
    FailurePlan,
    SloPolicy,
)
from repro.serving.interconnect import REQUEST_BYTES, Interconnect
from repro.serving.memo import CacheStats, LayerMemoCache, MemoSnapshot
from repro.serving.policies import RegionFailurePlan, make_geo
from repro.serving.sharding import (
    LatencyDigest,
    ShardOutcome,
    _merge_detail,
)
from repro.serving.simulator import ServingResult, ServingSimulator
from repro.serving.telemetry import Telemetry
from repro.serving.workload import (
    Request,
    Scenario,
    get_scenario,
    shard_seeds,
    stream_trace,
)

__all__ = [
    "GeoResult",
    "GeoRouter",
    "RegionOutcome",
    "RegionSpec",
    "STOCK_REGIONS",
    "default_regions",
    "validate_geo",
]


@dataclass(frozen=True)
class RegionSpec:
    """One serving region of the geo fleet.

    Attributes:
        name: region label (unique within a fleet).
        accelerator: replica configuration scheme (any
            :func:`~repro.core.configs.make_accelerator` scheme —
            the AQFP / SNN backends give regions real service/energy
            diversity).
        replicas: region pool width.
        price: grid energy price (USD per MJ) — what
            ``cheapest_joule`` routing minimises.
        tz: timezone offset of the diurnal wave, in cycle fractions
            (``3/24`` = three hours east of the reference clock).
    """

    name: str
    accelerator: str = "SMART"
    replicas: int = 2
    price: float = 0.09
    tz: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("region name cannot be empty")
        if self.replicas < 1:
            raise ConfigError("region needs at least one replica")
        if self.price < 0:
            raise ConfigError("energy price must be >= 0")
        if not math.isfinite(self.tz):
            raise ConfigError("timezone offset must be finite")


#: The stock fleet palette ``serve-sim --geo N`` draws from: mixed
#: superconductor backends, cheap-to-dear grids, staggered clocks.
STOCK_REGIONS: tuple[RegionSpec, ...] = (
    RegionSpec("us-east", accelerator="SMART", replicas=2,
               price=0.09, tz=0.0),
    RegionSpec("eu-west", accelerator="SNN", replicas=2,
               price=0.17, tz=0.25),
    RegionSpec("ap-south", accelerator="AQFP", replicas=2,
               price=0.05, tz=0.5),
    RegionSpec("us-west", accelerator="SMART", replicas=2,
               price=0.12, tz=0.875),
    RegionSpec("af-north", accelerator="SNN", replicas=1,
               price=0.03, tz=0.375),
)


def default_regions(count: int) -> tuple[RegionSpec, ...]:
    """The first ``count`` stock regions (suffixed past the palette)."""
    if count < 1:
        raise ConfigError("geo fleet needs at least one region")
    regions = []
    for i in range(count):
        spec = STOCK_REGIONS[i % len(STOCK_REGIONS)]
        if i >= len(STOCK_REGIONS):
            spec = replace(spec,
                           name=f"{spec.name}-{i // len(STOCK_REGIONS)}")
        regions.append(spec)
    return tuple(regions)


def validate_geo(regions: Sequence[RegionSpec], *, geo: object = "home",
                 topology: str = "mesh", bandwidth_gbps: float = 10.0,
                 base_latency_us: float = 50.0,
                 payload_bytes: int = REQUEST_BYTES,
                 storms: int = 0) -> None:
    """Reject malformed geo fleets with clean :class:`ConfigError`\\ s.

    The CLI surfaces these as exit-2 usage errors, matching the
    ``--shards``/``--scale`` pattern.
    """
    if not regions:
        raise ConfigError("geo fleet needs at least one region")
    names = [spec.name for spec in regions]
    if len(set(names)) != len(names):
        raise ConfigError("region names must be unique: "
                          + ", ".join(sorted(names)))
    # both constructors carry the real validation
    Interconnect(regions=len(regions), topology=topology,
                 bandwidth_gbps=bandwidth_gbps,
                 base_latency_us=base_latency_us)
    make_geo(geo)
    if payload_bytes < 0:
        raise ConfigError("payload size must be >= 0")
    if storms < 0:
        raise ConfigError("storm count must be >= 0")


def _split_counts(n: int, capacities: Sequence[float]) -> tuple[int, ...]:
    """Split ``n`` requests over regions by capacity share.

    Largest-remainder apportionment: exact total, deterministic ties
    (lower index wins), at least one request per region.
    """
    count = len(capacities)
    if n < count:
        raise ConfigError(
            f"geo runs need at least one request per region "
            f"({n} requests over {count} regions)"
        )
    total = sum(capacities)
    shares = [n * c / total for c in capacities]
    counts = [math.floor(s) for s in shares]
    order = sorted(range(count),
                   key=lambda i: (counts[i] - shares[i], i))
    for i in order[:n - sum(counts)]:
        counts[i] += 1
    for i in range(count):
        if counts[i] == 0:
            donor = max(range(count), key=lambda j: (counts[j], -j))
            counts[donor] -= 1
            counts[i] = 1
    return tuple(counts)


def _region_scenario(scenario: Scenario, tz: float) -> Scenario:
    """The scenario as region-local traffic: its wave shifted by tz."""
    return replace(scenario, phase=scenario.phase + tz) if tz \
        else scenario


class _RouterView:
    """The read-only fleet surface handed to geo dispatch policies.

    See :class:`~repro.serving.policies.GeoDispatchPolicy` for the
    contract.  Everything here derives from the run *plan* (specs,
    calibrated capacities, static estimates) — never from live engine
    state — which is what keeps the routing scan replayable in every
    worker process.
    """

    __slots__ = ("regions", "slo", "_capacities", "_prices",
                 "_energies", "_batch_lats", "_tz", "_icx", "_payload",
                 "_amp", "_cycles", "_base_phase", "_duration",
                 "_window", "_assigned")

    def __init__(self, spec: dict, icx: Interconnect) -> None:
        regions = spec["regions"]
        self.regions = len(regions)
        self.slo = spec["slo_us"] * 1e-6 if spec["slo_us"] else None
        self._capacities = spec["capacities"]
        self._prices = tuple(r[3] for r in regions)
        self._energies = spec["energies"]
        self._batch_lats = spec["batch_lats"]
        self._tz = tuple(r[4] for r in regions)
        self._icx = icx
        self._payload = spec["payload_bytes"]
        scenario = spec["scenario"]
        if scenario.shape == "diurnal":
            process = scenario.process(1.0)
            self._amp = process.amplitude
            self._cycles = process.cycles
            self._base_phase = process.phase
        else:
            self._amp = self._cycles = self._base_phase = 0.0
        total_rate = sum(spec["rates"])
        self._duration = (sum(spec["counts"]) / total_rate
                          if total_rate else 1.0)
        self._window = spec["window_s"]
        self._assigned: tuple[deque, ...] = tuple(
            deque() for _ in regions)

    def capacity(self, i: int) -> float:
        return self._capacities[i]

    def price(self, i: int) -> float:
        return self._prices[i]

    def energy_per_req(self, i: int) -> float:
        return self._energies[i]

    def batch_latency(self, i: int) -> float:
        return self._batch_lats[i]

    def hops(self, src: int, dst: int) -> int:
        return self._icx.hops(src, dst)

    def delay(self, src: int, dst: int) -> float:
        return self._icx.delay(src, dst, self._payload)

    def wave(self, i: int, t: float) -> float:
        """Instantaneous diurnal load factor at region-local time."""
        if not self._amp:
            return 1.0
        frac = t / self._duration
        return 1.0 - self._amp * math.cos(
            2.0 * math.pi * (self._cycles * frac
                             + self._base_phase + self._tz[i]))

    def window_rate(self, i: int, t: float) -> float:
        """Recent assigned request rate (req/s) for region ``i``."""
        assigned = self._assigned[i]
        horizon = t - self._window
        while assigned and assigned[0] < horizon:
            assigned.popleft()
        return len(assigned) / self._window

    def record(self, i: int, t: float) -> None:
        """Note one request assigned to region ``i`` at ``t``."""
        self._assigned[i].append(t)


def _down(outages, region: int, t: float) -> bool:
    return any(o.region == region and o.at <= t < o.until
               for o in outages)


def _times_streams(spec: dict) -> list:
    """Per-region ``(arrival, home)`` streams — the model-free scan."""
    scenario = spec["scenario"]

    def gen(i: int) -> Iterator[tuple[float, int]]:
        regional = _region_scenario(scenario, spec["regions"][i][4])
        process = regional.process(spec["rates"][i])
        rng = _random.Random(spec["seeds"][i])
        for t in process.times(spec["counts"][i], rng):
            yield (t, i)

    return [gen(i) for i in range(len(spec["regions"]))]


def _request_streams(spec: dict) -> list:
    """Per-region ``(arrival, home, Request)`` streams, globally
    unique ascending ids (region id bases), home-region tagged."""
    scenario = spec["scenario"]

    def gen(i: int) -> Iterator[tuple[float, int, Request]]:
        name = spec["regions"][i][0]
        regional = _region_scenario(scenario, spec["regions"][i][4])
        base = spec["bases"][i]
        for r in stream_trace(regional, spec["rates"][i],
                              spec["counts"][i], spec["seeds"][i],
                              region=name):
            yield (r.arrival, i,
                   r if not base else replace(
                       r, request_id=base + r.request_id))

    return [gen(i) for i in range(len(spec["regions"]))]


def _merge_admission_key(item) -> tuple[float, int]:
    return (item[0], item[1])


def _route_scan(spec: dict, streams: Iterable, outages) -> Iterator:
    """Route the merged admission stream into delivery order.

    Yields ``(deliver, serve, home, rerouted, retried, delay, item)``
    tuples in globally ascending delivery time.  The NETWORK
    :class:`~repro.serving.events.EventQueue` is the re-sort buffer: a
    queued delivery pops once the scan's admission clock passes it
    (future deliveries can never land earlier than their own future
    admissions), and the queue drains fully at stream end.

    With a resilience policy on, a storm reroute is modelled as a
    client *failover retry*: the request first travels to the dark
    region (the failed leg), times out, and is re-sent to the healthy
    one — both legs are charged through the NETWORK delay, and the
    tuple's ``retried`` flag marks the double charge.  Without
    resilience the reroute is the pre-PR silent redirect (single leg).
    """
    regions = len(spec["regions"])
    icx = Interconnect(regions=regions, topology=spec["topology"],
                       bandwidth_gbps=spec["bandwidth_gbps"],
                       base_latency_us=spec["base_latency_us"])
    geo = make_geo(spec["geo"])
    view = _RouterView(spec, icx)
    geo.reset(view)
    payload_bytes = spec["payload_bytes"]
    res_on = bool(spec.get("resilience")) \
        and spec.get("resilience") != "none"
    queue = EventQueue()
    for item in heapq.merge(*streams, key=_merge_admission_key):
        t, home = item[0], item[1]
        while len(queue) and queue.next_time() <= t:
            yield queue.pop().payload
        serve = geo.route(t, home, view)
        if not 0 <= serve < regions:
            raise ConfigError(
                f"geo policy '{geo.name}' routed to region {serve} "
                f"outside [0, {regions})"
            )
        rerouted = False
        retried = False
        failed_leg = 0.0
        if outages and _down(outages, serve, t):
            live = [i for i in range(regions)
                    if not _down(outages, i, t)]
            if live:
                if res_on:
                    # the failed attempt's transfer is real: charge
                    # the leg to the dark region before the retry leg
                    failed_leg = icx.delay(home, serve, payload_bytes)
                    retried = True
                serve = min(live,
                            key=lambda i: (icx.hops(home, i), i))
                rerouted = True
        view.record(serve, t)
        delay = failed_leg + icx.delay(home, serve, payload_bytes)
        queue.push(t + delay, EventKind.NETWORK,
                   payload=(t + delay, serve, home, rerouted, retried,
                            delay, item))
    while len(queue):
        yield queue.pop().payload


def _arrival_span(spec: dict) -> tuple[float, float]:
    """Global (first, last) admission instant over every region."""
    first, last = math.inf, -math.inf
    for stream in _times_streams(spec):
        t0 = tN = next(stream)[0]
        for tN, _ in stream:
            pass
        first = min(first, t0)
        last = max(last, tN)
    return first, last


def _delivery_span(spec: dict, outages) -> tuple[float, float]:
    """Global (first, last) delivery instant after routing."""
    first, last = math.inf, -math.inf
    for deliver, *_ in _route_scan(spec, _times_streams(spec), outages):
        if deliver < first:
            first = deliver
        if deliver > last:
            last = deliver
    return first, last


@dataclass(frozen=True)
class RegionOutcome:
    """One region's worker summary: engine outcome + network ledger.

    ``outcome`` is the exact per-shard summary the sharded merge
    understands (region == shard); the extra fields are the geo
    tier's network accounting for the region.
    """

    region: str
    index: int
    accelerator: str
    replicas: int
    price: float
    capacity_rps: float
    rate_rps: float
    offered: int
    remote: int
    rerouted: int
    delay_s: float
    outcome: ShardOutcome
    retried: int = 0

    @property
    def cost_usd(self) -> float:
        """Served energy priced at the region's grid (USD)."""
        return self.outcome.energy * self.price / 1e6

    @property
    def slo_attainment(self) -> float:
        served = self.outcome.requests
        return self.outcome.slo_hits / served if served else 1.0


def _region_sim(spec: dict, me: int,
                telemetry: Optional[Telemetry]) -> ServingSimulator:
    """Rebuild one region's simulator from picklable primitives.

    A warm run's :class:`MemoSnapshot` — holding every region
    backend's layer totals, keyed structurally — arrives once per
    worker via the pool initializer
    (:func:`~repro.runtime.executor.worker_payload`) and is installed
    into this region's fresh memo.
    """
    _name, accelerator, replicas, _price, _tz = spec["regions"][me]
    slo = SloPolicy(target=spec["slo_us"] * 1e-6) \
        if spec["slo_us"] else None
    payload = worker_payload()
    snapshot = (payload.get("memo")
                if isinstance(payload, dict) else None)
    return ServingSimulator(
        accelerator=accelerator,
        replicas=replicas,
        policy=make_policy(spec["policy"],
                           batch_size=spec["batch_size"]),
        dispatch=spec["dispatch"],
        cache=LayerMemoCache(),
        slo=slo,
        telemetry=telemetry,
        resilience=spec.get("resilience") or None,
        snapshot=snapshot,
    )


def _serve_geo_region(spec: dict) -> RegionOutcome:
    """Serve one region of a geo run (runs in a worker process).

    Every worker replays the identical global routing scan (regional
    streams -> geo policy -> interconnect delay -> delivery order) and
    feeds its own region's deliveries to an independent cluster
    engine, pinned to the *global* delivery span so all regions drain
    at the same horizon.
    """
    t_start = perf_counter()
    me = spec["region"]
    name, accelerator, replicas, price, _tz = spec["regions"][me]
    scenario = spec["scenario"]
    telemetry = (Telemetry(events=spec["trace_events"],
                           tick=spec["tick"] or None)
                 if spec["trace"] else None)
    sim = _region_sim(spec, me, telemetry)
    # a warm parent resolves the outage windows and the global
    # delivery span once and ships them in the spec — both are pure
    # functions of the plan, so recomputing here (the cold path) gives
    # the identical values, just at one O(n) routing scan per worker
    if "outages" in spec:
        outages = spec["outages"]
    else:
        outages = ()
        if spec["storms"]:
            first, last = _arrival_span(spec)
            outages = RegionFailurePlan(
                count=spec["storms"], seed=spec["seed"],
            ).resolve(first, last, len(spec["regions"]))
    span = spec.get("span")
    if span is None:
        span = _delivery_span(spec, outages)
    networks = {m: sim.network(m) for m in scenario.mix.models()}
    failures = (FailurePlan(count=scenario.faults,
                            seed=spec["seeds"][me])
                if scenario.faults else None)
    engine = sim.make_engine(networks, failures=failures,
                             prewarm=spec.get("warm_cells"))

    net = {"offered": 0, "remote": 0, "rerouted": 0, "retried": 0,
           "delay": 0.0}
    arrivals: dict[int, float] = {}

    def deliveries() -> Iterator[Request]:
        scan = _route_scan(spec, _request_streams(spec), outages)
        for deliver, serve, home, rerouted, retried, delay, item in scan:
            if home == me:
                net["offered"] += 1
            if serve != me:
                continue
            request = item[2]
            if delay:
                request = replace(request, arrival=deliver)
                net["delay"] += delay
            if home != me:
                net["remote"] += 1
            if rerouted:
                net["rerouted"] += 1
            if retried:
                net["retried"] += 1
            yield request

    def tee(stream: Iterator[Request]) -> Iterator[Request]:
        for request in stream:
            arrivals[request.request_id] = request.arrival
            yield request

    requests: list[Request] = []
    stream: Iterator[Request] = deliveries()
    if spec["detail"]:
        requests = list(stream)
        for request in requests:
            arrivals[request.request_id] = request.arrival
        stream = iter(requests)
    else:
        stream = tee(stream)

    if telemetry is not None:
        telemetry.begin_run(
            scenario=scenario.name, policy=sim.policy.name,
            dispatch=sim.dispatch, replicas=sim.replicas,
            accelerator=sim.accelerator.name,
            rate_rps=spec["rates"][me], region=name,
            regions=len(spec["regions"]), geo=spec["geo"],
        )

    def wrap(outcome: ShardOutcome) -> RegionOutcome:
        return RegionOutcome(
            region=name, index=me, accelerator=accelerator,
            replicas=replicas, price=price,
            capacity_rps=spec["capacities"][me],
            rate_rps=spec["rates"][me], offered=net["offered"],
            remote=net["remote"], rerouted=net["rerouted"],
            delay_s=net["delay"], outcome=outcome,
            retried=net["retried"],
        )

    first = next(stream, None)
    if first is None:
        # a legal outcome: the geo policy drained this region dry —
        # its pool idles for the whole run (still reporting any
        # snapshot cells it was shipped)
        idle_stats = sim.cache.stats
        return wrap(ShardOutcome(
            shard=me, requests=0, batches=0, energy=0.0, busy_s=0.0,
            first_arrival=math.inf, last_done=-math.inf,
            digest=LatencyDigest(), slo_hits=0,
            cache=CacheStats(seeded=idle_stats.seeded,
                             seed_hits=idle_stats.seed_hits),
            wall_s=perf_counter() - t_start,
        ))
    outcome = engine.run(chain((first,), stream), span=span)

    slo_target = spec["slo_us"] * 1e-6
    digest = LatencyDigest()
    energy = 0.0
    slo_hits = 0
    for request_id, (done, joules) in outcome.done.items():
        latency = done - arrivals[request_id]
        digest.add(latency)
        energy += joules
        if slo_target and latency <= slo_target:
            slo_hits += 1
    busy = sum(record.service for record in outcome.batches)
    last_done = max(record.done for record in outcome.batches)
    stats = sim.cache.stats
    cache = CacheStats(hits=stats.hits, misses=stats.misses,
                       energy_hits=stats.energy_hits,
                       energy_misses=stats.energy_misses,
                       seeded=stats.seeded, seed_hits=stats.seed_hits)

    rows: tuple = ()
    counters: tuple = ()
    if telemetry is not None:
        for row in telemetry.rows:
            row["region"] = name
        rows = tuple(telemetry.rows)
        counters = tuple(sorted(telemetry.counters.items()))

    result = None
    if spec["detail"]:
        ordered = tuple(requests)
        latencies = tuple(outcome.done[r.request_id][0] - r.arrival
                          for r in ordered)
        energies = tuple(outcome.done[r.request_id][1] for r in ordered)
        result = ServingResult(
            accelerator=sim.accelerator.name, replicas=sim.replicas,
            scenario=scenario.name, policy=sim.policy.name,
            rate=spec["rates"][me], requests=ordered,
            latencies=latencies, energy_per_request=energies,
            batches=outcome.batches, cache=cache,
            slo_target=slo_target,
            replica_trace=outcome.replica_trace,
        )

    return wrap(ShardOutcome(
        shard=me, requests=len(outcome.done),
        batches=len(outcome.batches), energy=energy, busy_s=busy,
        first_arrival=min(arrivals.values()), last_done=last_done,
        digest=digest, slo_hits=slo_hits, cache=cache,
        wall_s=perf_counter() - t_start, telemetry_rows=rows,
        counters=counters, result=result,
    ))


@dataclass
class GeoResult:
    """The merge-reduced outcome of one geo run.

    Counters, energy, cost and SLO hits are exact sums over regions;
    latency percentiles read off the merged
    :class:`~repro.serving.sharding.LatencyDigest`.  ``detail`` holds
    the bit-exact merged :class:`~repro.serving.simulator.
    ServingResult` when the run kept per-request arrays.
    """

    scenario: str
    policy: str
    dispatch: str
    geo: str
    topology: str
    storms: int
    rate: float
    requests: int
    batches: int
    energy: float
    busy_s: float
    first_arrival: float
    last_done: float
    digest: LatencyDigest
    slo_target: float
    slo_hits: int
    wall_s: float
    cache: CacheStats
    regions: tuple[RegionOutcome, ...] = ()
    detail: Optional[ServingResult] = None
    resilience: str = ""

    @property
    def replicas(self) -> int:
        """Fleet width: every region's pool summed."""
        return sum(r.replicas for r in self.regions)

    @property
    def makespan(self) -> float:
        """Global first delivery to global last completion (s)."""
        if self.last_done <= self.first_arrival:
            return 0.0
        return self.last_done - self.first_arrival

    @property
    def throughput_rps(self) -> float:
        """Simulated served requests per second of sim-time."""
        return self.requests / self.makespan if self.makespan else 0.0

    @property
    def simulated_rps(self) -> float:
        """Aggregate simulated requests per second of wall time."""
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def utilization(self) -> float:
        available = self.replicas * self.makespan
        return self.busy_s / available if available else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of all requests meeting the SLO (exact)."""
        if not self.slo_target:
            return 1.0
        return self.slo_hits / self.requests if self.requests else 1.0

    @property
    def cost_usd(self) -> float:
        """Fleet energy bill: each region's joules at its grid price."""
        return sum(r.cost_usd for r in self.regions)

    @property
    def net_delay_s(self) -> float:
        """Summed interconnect delay over all delivered requests."""
        return sum(r.delay_s for r in self.regions)

    @property
    def remote_frac(self) -> float:
        """Fraction of requests served outside their home region."""
        remote = sum(r.remote for r in self.regions)
        return remote / self.requests if self.requests else 0.0

    @property
    def retried(self) -> int:
        """Cross-region failover retries (double-charged NETWORK legs
        under a resilience policy)."""
        return sum(r.retried for r in self.regions)

    @property
    def telemetry_rows(self) -> tuple:
        """Every region's telemetry rows, region-tagged, concatenated
        in (region, emission) order."""
        return tuple(chain.from_iterable(r.outcome.telemetry_rows
                                         for r in self.regions))

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` (s): exact when the run kept
        per-request detail, digest-resolution otherwise."""
        if self.detail is not None:
            return self.detail.latency_percentile(q)
        return self.digest.percentile(q)

    def region_rows(self) -> list[dict]:
        """Per-region reporting rows: SLO attainment and $/J economics
        — the dashboard's geo section and the CLI's region table."""
        total = self.requests
        rows = []
        for region in self.regions:
            outcome = region.outcome
            served = outcome.requests
            row = {
                "region": region.region,
                "accelerator": region.accelerator,
                "replicas": region.replicas,
                "requests": served,
                "share": served / total if total else 0.0,
                "p50_us": (outcome.digest.percentile(50) * 1e6
                           if served else 0.0),
                "p95_us": (outcome.digest.percentile(95) * 1e6
                           if served else 0.0),
                "energy_per_req_uj": (outcome.energy / served * 1e6
                                      if served else 0.0),
                "usd_per_mj": region.price,
                "usd_per_req": (region.cost_usd / served
                                if served else 0.0),
                "net_delay_us": (region.delay_s / served * 1e6
                                 if served else 0.0),
                "remote_frac": (region.remote / served
                                if served else 0.0),
                "rerouted": region.rerouted,
            }
            if self.resilience and self.resilience != "none":
                row["retried"] = region.retried
            if self.slo_target:
                row["slo_attain"] = region.slo_attainment
            rows.append(row)
        return rows

    def region_trace_rows(self) -> list[dict]:
        """The per-region summaries as ``ev: "region"`` telemetry rows
        (stamped at run end), ready to append to a saved trace."""
        at = self.last_done if self.requests else 0.0
        return [{"t": at, "ev": "region", "run": 0,
                 "scenario": self.scenario, "policy": self.policy,
                 "geo": self.geo, **row}
                for row in self.region_rows()]

    def to_row(self) -> dict:
        """The aggregate row ``repro serve-sim --geo N`` prints."""
        row = {
            "scenario": self.scenario,
            "policy": self.policy,
            "geo": self.geo,
            "regions": len(self.regions),
            "requests": self.requests,
            "rate_rps": self.rate,
            "p50_us": self.latency_percentile(50) * 1e6,
            "p95_us": self.latency_percentile(95) * 1e6,
            "p99_us": self.latency_percentile(99) * 1e6,
            "throughput_rps": self.throughput_rps,
            "agg_rps": self.simulated_rps,
            "energy_per_req_uj": (self.energy / self.requests * 1e6
                                  if self.requests else 0.0),
            "usd_per_req": (self.cost_usd / self.requests
                            if self.requests else 0.0),
            "net_delay_us": (self.net_delay_s / self.requests * 1e6
                             if self.requests else 0.0),
            "remote_frac": self.remote_frac,
            "cache_hit_rate": self.cache.hit_rate,
        }
        if self.resilience and self.resilience != "none":
            row["resilience"] = self.resilience
            row["retried"] = self.retried
        if self.slo_target:
            row["slo_attain"] = self.slo_attainment
        if self.cache.seeded:
            # warm-fleet effectiveness: snapshot cells shipped across
            # all regions and how many turned into warm promotions
            row["memo_seeded"] = self.cache.seeded
            row["warm_hits"] = self.cache.seed_hits
        return row


class GeoRouter:
    """Fan one logical serving run out across geo regions.

    Args:
        regions: a region count (drawn from :data:`STOCK_REGIONS`) or
            an explicit sequence of :class:`RegionSpec`.
        topology / bandwidth_gbps / base_latency_us / payload_bytes:
            the interconnect (:class:`~repro.serving.interconnect.
            Interconnect`).
        geo: region-routing policy — a :data:`~repro.serving.policies.
            GEO_POLICIES` name or a :class:`~repro.serving.policies.
            GeoDispatchPolicy` instance.
        storms: region-granularity outage windows to sample
            (:class:`~repro.serving.policies.RegionFailurePlan`);
            arrivals for a dark region reroute to the nearest healthy
            one.
        policy / batch_size / dispatch / slo_us: each region engine's
            batching, replica dispatch and SLO — identical across
            regions so cells stay comparable.
        mode / max_workers: the :func:`~repro.runtime.executor.
            parallel_map` pool (one worker per region).
        detail: keep per-request arrays and merge a full bit-exact
            :class:`~repro.serving.simulator.ServingResult` (the
            zero-drift proof path).
        trace / tick / trace_events: per-region telemetry, rows tagged
            with their region name.
        resilience: client resilience policy spec (``"retry"`` /
            ``"hedge"`` / ``"degrade"``, with ``name:key=value``
            options) applied inside every region engine; a storm
            reroute then also charges the failed NETWORK leg as a
            cross-region failover retry.
        prewarm: warm-start the fleet (the default).  The parent
            resolves every region backend's layer cells once through
            a shared memo, snapshots the totals, and broadcasts the
            snapshot to region workers through the pool initializer;
            the outage windows and the global delivery span are
            resolved once in the parent and shipped in the spec, so
            no worker repeats the O(n) routing scans.  All of it is
            exact — warm results are bit-identical to cold.
        snapshot: a pre-built :class:`~repro.serving.memo.
            MemoSnapshot` installed into the parent's warm cache up
            front (e.g. the persisted memo pool).
        memo_cache: the shared parent-side
            :class:`~repro.serving.memo.LayerMemoCache` to calibrate
            and prewarm through across runs (the ``--persist-memo``
            path); default a fresh private one.

    Raises:
        ConfigError: from :func:`validate_geo` for malformed fleets.
    """

    def __init__(self, regions: int | Sequence[RegionSpec], *,
                 topology: str = "mesh", bandwidth_gbps: float = 10.0,
                 base_latency_us: float = 50.0,
                 payload_bytes: int = REQUEST_BYTES,
                 geo: object = "home", storms: int = 0,
                 policy: str = "timeout", batch_size: int = 8,
                 dispatch: str = "round_robin", slo_us: float = 0.0,
                 mode: str = "process",
                 max_workers: Optional[int] = None,
                 detail: bool = False, trace: bool = False,
                 tick: float = 200e-6,
                 trace_events: bool = False,
                 resilience: str = "",
                 prewarm: bool = True,
                 snapshot: Optional[MemoSnapshot] = None,
                 memo_cache: Optional[LayerMemoCache] = None) -> None:
        if isinstance(regions, int):
            regions = default_regions(regions)
        self.regions: tuple[RegionSpec, ...] = tuple(regions)
        validate_geo(self.regions, geo=geo, topology=topology,
                     bandwidth_gbps=bandwidth_gbps,
                     base_latency_us=base_latency_us,
                     payload_bytes=payload_bytes, storms=storms)
        make_policy(policy, batch_size=batch_size)  # fail fast
        if resilience:
            from repro.serving.policies import make_resilience
            make_resilience(resilience)  # fail fast on a bad spec
        self.resilience = resilience
        self.topology = topology
        self.bandwidth_gbps = bandwidth_gbps
        self.base_latency_us = base_latency_us
        self.payload_bytes = payload_bytes
        self.geo = make_geo(geo).name
        self.storms = storms
        self.policy = policy
        self.batch_size = batch_size
        self.dispatch = dispatch
        self.slo_us = slo_us
        self.mode = mode
        self.max_workers = max_workers
        self.detail = detail
        self.trace = trace
        self.tick = tick
        self.trace_events = trace_events
        self.prewarm = prewarm
        self._warm_cache = (memo_cache if memo_cache is not None
                            else LayerMemoCache())
        if snapshot is not None:
            snapshot.install(self._warm_cache)

    def run_scenario(self, scenario: Scenario | str, n_requests: int,
                     seed: int = 0) -> GeoResult:
        """Calibrate regions, fan the routing scan out, and merge."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if n_requests < 1:
            raise ConfigError("trace needs at least one request")
        fleet = self.regions
        count = len(fleet)
        # per-region calibration: each region's own accelerator and
        # pool set its capacity, exactly as the monolithic path would
        # calibrate that region alone — the single-region zero-drift
        # anchor depends on this equality
        calibrators = [
            ServingSimulator(
                accelerator=spec.accelerator, replicas=spec.replicas,
                policy=make_policy(self.policy,
                                   batch_size=self.batch_size),
                dispatch=self.dispatch,
                # one shared memo across the fleet: the structural
                # keying separates backends, and everything it
                # accumulates feeds the broadcast snapshot
                cache=self._warm_cache,
            )
            for spec in fleet
        ]
        capacities = tuple(cal.capacity_rps(scenario)
                           for cal in calibrators)
        rates = tuple(scenario.load * cap for cap in capacities)
        counts = _split_counts(n_requests, capacities)
        seeds = (seed,) if count == 1 else shard_seeds(seed, count)
        bases = tuple(sum(counts[:i]) for i in range(count))
        # static estimates for the energy-price-aware policy: a full
        # batch's service time and per-request energy on each region's
        # backend, mix-weighted through the same memo the engine uses
        fractions = scenario.mix.fractions()
        batch = calibrators[0].policy.max_batch
        energies = tuple(
            sum(frac * cal.cache.energy_total(cal.accelerator,
                                              cal.network(model),
                                              batch) / batch
                for model, frac in fractions.items())
            for cal in calibrators
        )
        batch_lats = tuple(
            batch * fleet[i].replicas / capacities[i]
            for i in range(count)
        )
        total_rate = sum(rates)
        spec = {
            # the Scenario object itself (frozen, picklable) so custom
            # scenarios — phase-shifted, bespoke mixes — survive the
            # trip to worker processes without a registry round-trip
            "scenario": scenario,
            "regions": tuple(
                (s.name, s.accelerator, s.replicas, s.price, s.tz)
                for s in fleet),
            "topology": self.topology,
            "bandwidth_gbps": self.bandwidth_gbps,
            "base_latency_us": self.base_latency_us,
            "payload_bytes": self.payload_bytes,
            "geo": self.geo, "storms": self.storms,
            "rates": rates, "counts": counts, "seeds": seeds,
            "bases": bases, "capacities": capacities,
            "energies": energies, "batch_lats": batch_lats,
            # a ~100-request observation window for spillover's
            # assigned-rate estimate, scaled to the offered rate
            "window_s": 100.0 / max(total_rate, 1e-12),
            "policy": self.policy, "batch_size": self.batch_size,
            "dispatch": self.dispatch, "slo_us": self.slo_us,
            "seed": seed, "detail": self.detail, "trace": self.trace,
            "tick": self.tick, "trace_events": self.trace_events,
            "resilience": self.resilience,
        }
        snapshot: Optional[MemoSnapshot] = None
        if self.prewarm:
            # warm every region backend's layer cells through the
            # shared memo, then resolve the plan-level scans — outage
            # windows and the global delivery span — once instead of
            # once per worker; all pure functions of the plan, so
            # workers get the identical values they would recompute
            for cal in calibrators:
                cal.prewarm(scenario)
            snapshot = MemoSnapshot.from_cache(self._warm_cache)
            outages: tuple = ()
            if self.storms:
                first, last = _arrival_span(spec)
                outages = RegionFailurePlan(
                    count=self.storms, seed=seed,
                ).resolve(first, last, count)
            spec["outages"] = outages
            spec["span"] = _delivery_span(spec, outages)
            spec["warm_cells"] = tuple(
                (model, b)
                for model in sorted(scenario.mix.models())
                for b in range(1, calibrators[0].policy.max_batch + 1)
            )
        specs = [dict(spec, region=i) for i in range(count)]
        t_start = perf_counter()
        outcomes = parallel_map(_serve_geo_region,
                                [(s,) for s in specs],
                                mode=self.mode,
                                max_workers=self.max_workers,
                                payload=({"memo": snapshot}
                                         if snapshot is not None
                                         else None))
        wall = perf_counter() - t_start
        return self._reduce(scenario, total_rate,
                            tuple(outcomes), wall)

    def _reduce(self, scenario: Scenario, rate: float,
                outcomes: tuple[RegionOutcome, ...],
                wall: float) -> GeoResult:
        """Exact merge of the per-region outcomes — the sharded
        merge (digests, counters, detail interleave), region == shard."""
        digest = LatencyDigest()
        cache = CacheStats()
        for region in outcomes:
            digest.merge(region.outcome.digest)
            stats = region.outcome.cache
            cache.hits += stats.hits
            cache.misses += stats.misses
            cache.energy_hits += stats.energy_hits
            cache.energy_misses += stats.energy_misses
            cache.seeded += stats.seeded
            cache.seed_hits += stats.seed_hits
        slo_target = self.slo_us * 1e-6
        shard_outcomes = [region.outcome for region in outcomes]
        detail = _merge_detail(
            shard_outcomes, scenario=scenario.name, policy=self.policy,
            rate=rate,
            accelerator=(self.regions[0].accelerator
                         if len(self.regions) == 1
                         else f"geo[{len(self.regions)}]"),
            replicas=sum(spec.replicas for spec in self.regions),
            slo_target=slo_target, cache=cache,
        ) if self.detail else None
        return GeoResult(
            scenario=scenario.name, policy=self.policy,
            dispatch=self.dispatch, geo=self.geo,
            topology=self.topology, storms=self.storms, rate=rate,
            requests=sum(o.requests for o in shard_outcomes),
            batches=sum(o.batches for o in shard_outcomes),
            energy=sum(o.energy for o in shard_outcomes),
            busy_s=sum(o.busy_s for o in shard_outcomes),
            first_arrival=min(o.first_arrival for o in shard_outcomes),
            last_done=max(o.last_done for o in shard_outcomes),
            digest=digest, slo_target=slo_target,
            slo_hits=sum(o.slo_hits for o in shard_outcomes),
            wall_s=wall, cache=cache, regions=outcomes, detail=detail,
            resilience=self.resilience,
        )
