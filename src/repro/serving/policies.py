"""The pluggable scheduling control plane of the serving engine.

PR 3/4 hard-coded every scheduling decision inside ``ClusterEngine``:
replica selection was a string-matched branch in ``_pick_replica``,
flush ordering was baked into the event heap key and the drain sweep,
autoscaling was one reactive policy inlined in the control tick, and
admission was a single depth test on the arrival path.  Each of the
ROADMAP's scheduler items (EDF flush ordering, priority classes, work
stealing, predictive autoscaling) would have meant another branch in a
900-line engine.

This module extracts the four decision seams as small policy objects
the engine calls through, plus the new policies that ride on them:

- :class:`DispatchPolicy` — which replica serves a flushed batch.  The
  four stock strategies (:class:`RoundRobinDispatch`,
  :class:`LeastLoadedDispatch`, :class:`ShardDispatch`,
  :class:`FastestFinishDispatch`) reproduce the retired string
  branches bit for bit — the equivalence suite in
  ``tests/test_serving_reference.py`` holds every stock scenario x
  batching policy x dispatch cell to exact per-request tuple equality
  across the refactor.
- :class:`FlushPolicy` — which pending batch flushes first when the
  engine has a choice: simultaneous flush deadlines, the end-of-trace
  drain sweep, and the parked-batch queue that drains on control
  events (recovery / scale-up).  :class:`FifoFlush` is the stock
  behaviour; :class:`EdfFlush` adds earliest-deadline-first ordering
  with per-model priority classes.
- :class:`ScalePolicy` — the control-tick scaling decision.
  :class:`ReactiveScalePolicy` wraps the stock
  :class:`~repro.serving.events.AutoscalePolicy` (queue-depth or
  windowed-p95) unchanged; :class:`ForecastScalePolicy` feeds the
  engine's per-tick arrival-rate history into an EWMA or Holt
  (double-exponential) forecast and scales *ahead* of the crest.
- :class:`AdmissionPolicy` — per-arrival admit/shed.
  :class:`DepthAdmission` is the stock in-system concurrency bound.

:class:`WorkStealPolicy` configures the fifth control-plane action:
on control ticks the engine re-dispatches the most-backlogged
replica's last not-yet-started batch to the replica that would finish
it soonest.

Policies are deliberately engine-agnostic: they receive the engine (or
plain values) at call time and keep only their own state, which
``reset()`` clears at the start of every run so one policy instance
can serve many runs deterministically.
"""

from __future__ import annotations

import random as _random
import zlib
from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime cycle
    from repro.serving.events import AutoscalePolicy, Replica

#: Priority classes are small signed integers; the bound keeps the
#: fixed-width flush-key encoding total-ordered.
MAX_PRIORITY = 9999


# ---------------------------------------------------------------------------
# Dispatch: which replica serves a flushed batch
# ---------------------------------------------------------------------------
class DispatchPolicy:
    """Replica selection for one flushed batch.

    ``pick`` receives the engine so strategies can read replica state
    and the memoised per-(configuration, model, batch) service rates;
    ``reset`` runs at the start of every engine run and must clear any
    per-run state (round-robin cursors, shard digests).
    """

    name = "?"

    def reset(self, engine) -> None:
        """Forget per-run state; called once per engine run."""

    def pick(self, engine, model: str, size: int, floor: float,
             candidates: Sequence["Replica"]) -> "Replica":
        """Choose the replica to serve a batch that can start at
        ``floor``; ``candidates`` is non-empty and ordered by index."""
        raise NotImplementedError


class RoundRobinDispatch(DispatchPolicy):
    """Cycle through the live candidates in index order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, engine) -> None:
        self._next = 0

    def pick(self, engine, model, size, floor, candidates):
        picked = candidates[self._next % len(candidates)]
        self._next = (self._next + 1) % len(candidates)
        return picked


class LeastLoadedDispatch(DispatchPolicy):
    """The replica that frees (and finishes warming) earliest."""

    name = "least_loaded"

    def pick(self, engine, model, size, floor, candidates):
        return min(candidates,
                   key=lambda r: (max(r.free_at, r.available_at),
                                  r.index))


class ShardDispatch(DispatchPolicy):
    """Pin each model to one home replica by a stable hash.

    The pin hashes over the *initial* pool, so one replica's failure
    never remaps models homed on healthy replicas; only the dead
    replica's own models fall back (deterministically) into the live
    candidate list.
    """

    name = "shard"

    def __init__(self) -> None:
        self._digests: dict[str, int] = {}

    def reset(self, engine) -> None:
        self._digests.clear()

    def pick(self, engine, model, size, floor, candidates):
        digest = self._digests.get(model)
        if digest is None:
            digest = self._digests[model] = zlib.crc32(model.encode())
        home = engine._replicas[digest % len(engine._initial)]
        if home.up and not home.draining:
            return home
        return candidates[digest % len(candidates)]


class FastestFinishDispatch(DispatchPolicy):
    """The replica that *completes* the batch earliest.

    Weighs each candidate's own service time for this (model, batch)
    — the heterogeneity-aware strategy — via the engine's memoised
    rate lookup, so a mixed pool routes work to the configuration that
    actually finishes it first, not merely the one that frees first.
    """

    name = "fastest_finish"

    def pick(self, engine, model, size, floor, candidates):
        rate = engine._rate

        def finish(replica):
            start = max(floor, replica.free_at, replica.available_at)
            return (start + rate(replica.accelerator, model, size)[0],
                    replica.index)

        return min(candidates, key=finish)


#: Stock dispatch strategies by CLI name.
DISPATCH_POLICIES = {
    "round_robin": RoundRobinDispatch,
    "least_loaded": LeastLoadedDispatch,
    "shard": ShardDispatch,
    "fastest_finish": FastestFinishDispatch,
}


def make_dispatch(dispatch: str | DispatchPolicy) -> DispatchPolicy:
    """Resolve a dispatch name (or pass a policy through).

    Raises:
        ConfigError: for unknown names or non-policy objects.
    """
    if isinstance(dispatch, DispatchPolicy):
        return dispatch
    factory = DISPATCH_POLICIES.get(dispatch)
    if factory is None:
        raise ConfigError(
            f"unknown dispatch '{dispatch}'; known: "
            f"{', '.join(DISPATCH_POLICIES)}"
        )
    return factory()


# ---------------------------------------------------------------------------
# Flush ordering: which pending batch goes first
# ---------------------------------------------------------------------------
class FlushPolicy:
    """Ordering of flush work when the engine has a choice.

    Three decision points, all tie-breaks the event clock cannot make
    on its own:

    - ``flush_key``: heap tie-break for FLUSH events landing at the
      same instant (stock: model name, so simultaneous deadlines fire
      in model order);
    - ``drain_order``: model order of the end-of-trace drain sweep
      over deadline-less queues;
    - ``pick_waiting``: which parked batch (flushed while no replica
      was up) re-dispatches first once capacity returns on a control
      event (recovery / scale-up).
    """

    name = "?"

    def flush_key(self, model: str, deadline: float) -> str:
        """Heap tie-break key for a FLUSH event at ``deadline``."""
        return model

    def drain_order(self, queues: Mapping[str, Sequence]) -> list[str]:
        """Model order for the end-of-trace drain sweep."""
        return sorted(queues)

    def pick_waiting(self, waiting: Sequence[tuple]) -> int:
        """Index of the parked (model, batch, flush) entry to
        re-dispatch next; ``waiting`` is non-empty, oldest first."""
        return 0


class FifoFlush(FlushPolicy):
    """Stock ordering: model-name ties, sorted drain, FIFO parking."""

    name = "fifo"


class EdfFlush(FlushPolicy):
    """Earliest-deadline-first ordering with per-model priorities.

    A batch's deadline *is* its flush instant, so distinct deadlines
    already fire in EDF order off the event heap; this policy settles
    everything the clock leaves open — higher priority classes first,
    then the earlier deadline, then the model name:

    - simultaneous flush deadlines fire in (priority, model) order;
    - the drain sweep serves high-priority queues (oldest head first)
      before low-priority ones;
    - parked batches re-dispatch highest-priority, earliest-flush
      first, never a later-deadline batch ahead of an earlier one of
      the same class.

    Args:
        priorities: model -> priority class; **higher values are more
            urgent** and unlisted models default to class 0.  Classes
            must fit in [-MAX_PRIORITY, MAX_PRIORITY].
    """

    name = "edf"

    def __init__(self, priorities: Optional[Mapping[str, int]] = None
                 ) -> None:
        self.priorities = dict(priorities or {})
        for model, klass in self.priorities.items():
            if not isinstance(klass, int) or isinstance(klass, bool):
                raise ConfigError(
                    f"priority class for '{model}' must be an integer"
                )
            if abs(klass) > MAX_PRIORITY:
                raise ConfigError(
                    f"priority class for '{model}' must be within "
                    f"+/-{MAX_PRIORITY}"
                )

    def priority(self, model: str) -> int:
        """The model's priority class (0 unless configured)."""
        return self.priorities.get(model, 0)

    def flush_key(self, model: str, deadline: float) -> str:
        # fixed-width (MAX_PRIORITY - priority) so lexicographic string
        # order on the heap equals (priority desc, model asc)
        return f"{MAX_PRIORITY - self.priority(model):05d}:{model}"

    def drain_order(self, queues):
        def key(model):
            queue = queues[model]
            head = queue[0].arrival if queue else float("inf")
            return (-self.priority(model), head, model)

        return sorted(queues, key=key)

    def pick_waiting(self, waiting):
        return min(
            range(len(waiting)),
            key=lambda i: (-self.priority(waiting[i][0]), waiting[i][2], i),
        )


#: Flush-ordering policies by CLI name.  ``edf`` is constructed with
#: the run's priority map, so the factory takes keyword arguments.
FLUSH_POLICIES = {
    "fifo": FifoFlush,
    "edf": EdfFlush,
}


def make_flush(flush: str | FlushPolicy,
               priorities: Optional[Mapping[str, int]] = None
               ) -> FlushPolicy:
    """Resolve a flush-ordering name (or pass a policy through).

    ``priorities`` only applies to ``edf``; naming priorities under
    ``fifo`` is a configuration error (they would be silently
    ignored).

    Raises:
        ConfigError: unknown names, or priorities without ``edf``.
    """
    if isinstance(flush, FlushPolicy):
        if priorities:
            raise ConfigError(
                "pass priorities to the flush policy itself when "
                "constructing it directly"
            )
        return flush
    if flush == "edf":
        return EdfFlush(priorities)
    if priorities:
        raise ConfigError(
            "per-model priorities need the 'edf' flush policy "
            "(--flush edf)"
        )
    if flush == "fifo":
        return FifoFlush()
    raise ConfigError(
        f"unknown flush policy '{flush}'; known: "
        f"{', '.join(FLUSH_POLICIES)}"
    )


# ---------------------------------------------------------------------------
# Scaling: the control-tick pool-size decision
# ---------------------------------------------------------------------------
class ScalePolicy:
    """The control-tick scaling decision behind the autoscaler.

    Implementations expose the pool bounds and timing the engine
    enforces (``min_replicas``/``max_replicas``, ``tick``, ``warmup``,
    ``cooldown``), declare what history they need (``window_size``
    completed-request latencies, ``needs_rate`` per-tick arrival
    counts), and return -1/0/+1 from :meth:`decide`.  The engine
    applies at most one action per tick, inside the cooldown, within
    the bounds.

    Policies that size the pool in replicas-worth of capacity set
    ``capacity_pinned = False`` and accept a per-replica requests/s
    figure through :meth:`calibrate` — the simulator calls it before
    every run with a figure derived from the trace's own model mix.
    """

    name = "?"
    needs_rate = False
    #: False when the policy wants :meth:`calibrate` called before
    #: each run; the default True means "nothing to calibrate".
    capacity_pinned = True

    min_replicas: int
    max_replicas: int
    tick: float
    warmup: float
    cooldown: float

    @property
    def window_size(self) -> int:
        """Completed-request latencies to keep (0 = none needed)."""
        return 0

    def calibrate(self, capacity_rps: float) -> None:
        """Accept one replica's capacity (requests/s); no-op here."""

    def reset(self) -> None:
        """Forget per-run forecast state; called once per run."""

    def decide(self, time: float, in_system: int, alive: int,
               window, arrivals: int, dt: float) -> int:
        """Scale action for this tick: +1 up, -1 down, 0 hold.

        Args:
            time: the tick instant (s).
            in_system: admitted requests queued or in flight.
            alive: serving (non-draining) replicas.
            window: the engine's latency window, or None.
            arrivals: arrivals since the previous tick.
            dt: tick interval (s).
        """
        raise NotImplementedError


class ReactiveScalePolicy(ScalePolicy):
    """The stock reactive autoscaler, behind the policy seam.

    Wraps an :class:`~repro.serving.events.AutoscalePolicy` and
    reproduces the engine's retired inline decision exactly: scale on
    in-system backlog per alive replica (``"queue"``), or on the p95
    of the completed-latency window (``"p95"``).
    """

    name = "reactive"

    def __init__(self, policy: "AutoscalePolicy") -> None:
        self.policy = policy
        self.min_replicas = policy.min_replicas
        self.max_replicas = policy.max_replicas
        self.tick = policy.tick
        self.warmup = policy.warmup
        self.cooldown = policy.cooldown

    @property
    def window_size(self) -> int:
        return self.policy.window if self.policy.metric == "p95" else 0

    def decide(self, time, in_system, alive, window, arrivals, dt):
        policy = self.policy
        if policy.metric == "queue":
            if in_system > policy.high_queue * alive:
                return 1
            if in_system < policy.low_queue * alive:
                return -1
        elif window is not None and len(window):
            p95 = window.percentile(95)
            if p95 > policy.target_p95:
                return 1
            if (p95 < 0.5 * policy.target_p95
                    and in_system <= policy.low_queue * alive):
                return -1
        return 0


class ForecastScalePolicy(ScalePolicy):
    """Predictive autoscaling off the engine's arrival-rate history.

    Every control tick observes the arrival rate since the last tick
    and updates an exponential forecast; the pool is then sized for
    the *forecast* rate at a target utilisation, so capacity is warm
    when the crest arrives instead of chasing it:

    - ``mode="ewma"``: single exponential smoothing — the forecast is
      the smoothed level (no trend), and the headroom comes from
      ``target_utilization`` alone;
    - ``mode="holt"``: Holt's double exponential smoothing (the
      non-seasonal Holt-Winters variant) — a smoothed trend is
      projected ``horizon`` ticks ahead, so a rising diurnal edge
      scales the pool *before* latencies degrade.

    Sizing needs the per-replica capacity in requests/s.  Pass it as
    ``capacity_rps``, or leave it None and let
    :class:`~repro.serving.simulator.ServingSimulator` calibrate it
    from the trace's own model mix before the run (scale-ups clone the
    pool's lead configuration, so its capacity is the right unit).

    Args:
        min_replicas, max_replicas: pool bounds.
        mode: ``"ewma"`` or ``"holt"``.
        alpha: level smoothing factor in (0, 1].
        beta: trend smoothing factor in (0, 1] (holt only).
        horizon: ticks ahead to project the trend; None derives the
            smallest horizon covering the warm-up delay, so a
            scale-up ordered now is serving when the forecast lands.
        target_utilization: fraction of per-replica capacity the
            sized pool should run at (headroom below 1.0).
        capacity_rps: one replica's throughput (requests/s); None
            until calibrated.
        tick, warmup, cooldown: control-loop timing, as in
            :class:`~repro.serving.events.AutoscalePolicy`.
    """

    name = "forecast"
    needs_rate = True

    def __init__(self, min_replicas: int = 1, max_replicas: int = 8,
                 mode: str = "holt", alpha: float = 0.3,
                 beta: float = 0.1, horizon: Optional[int] = None,
                 target_utilization: float = 0.7,
                 capacity_rps: Optional[float] = None,
                 tick: float = 200e-6, warmup: float = 1e-3,
                 cooldown: float = 0.0) -> None:
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ConfigError(
                "forecast scaling needs 1 <= min_replicas <= max_replicas"
            )
        if mode not in ("ewma", "holt"):
            raise ConfigError(
                f"unknown forecast mode '{mode}'; known: ewma, holt"
            )
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ConfigError("smoothing factors must be in (0, 1]")
        if horizon is not None and horizon < 1:
            raise ConfigError("forecast horizon must be >= 1 tick")
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigError("target utilization must be in (0, 1]")
        if capacity_rps is not None and capacity_rps <= 0:
            raise ConfigError("per-replica capacity must be positive")
        if tick <= 0 or warmup < 0 or cooldown < 0:
            raise ConfigError("forecast times must be non-negative "
                              "(tick positive)")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.mode = mode
        self.alpha = alpha
        self.beta = beta
        self.horizon = (horizon if horizon is not None
                        else max(1, ceil(warmup / tick)))
        self.target_utilization = target_utilization
        self.capacity_rps = capacity_rps
        #: True when the capacity came from the constructor; the
        #: simulator only recalibrates unpinned policies, so a pinned
        #: one keeps its figure across runs and accelerators.
        self.capacity_pinned = capacity_rps is not None
        self.tick = tick
        self.warmup = warmup
        self.cooldown = cooldown
        self._level: Optional[float] = None
        self._trend = 0.0

    def calibrate(self, capacity_rps: float) -> None:
        """Set the per-replica capacity unless pinned at construction."""
        if not self.capacity_pinned:
            if capacity_rps <= 0:
                raise ConfigError("per-replica capacity must be positive")
            self.capacity_rps = capacity_rps

    def reset(self) -> None:
        if self.capacity_rps is None:
            raise ConfigError(
                "ForecastScalePolicy needs capacity_rps: run through "
                "ServingSimulator (which calibrates it from the trace "
                "mix) or pass it explicitly"
            )
        self._level = None
        self._trend = 0.0

    @property
    def forecast(self) -> float:
        """The current rate forecast (requests/s) at the horizon."""
        if self._level is None:
            return 0.0
        if self.mode == "holt":
            return max(0.0, self._level + self._trend * self.horizon)
        return self._level

    def decide(self, time, in_system, alive, window, arrivals, dt):
        rate = arrivals / dt
        if self._level is None:
            self._level = rate
        elif self.mode == "holt":
            # Holt's recurrences: the old trend carries into the new
            # level, so a steady ramp is tracked without the EWMA's
            # constant lag — exactly what leading the crest needs
            previous = self._level
            self._level = (self.alpha * rate
                           + (1.0 - self.alpha)
                           * (previous + self._trend))
            self._trend = (self.beta * (self._level - previous)
                           + (1.0 - self.beta) * self._trend)
        else:
            self._level = (self.alpha * rate
                           + (1.0 - self.alpha) * self._level)
        desired = ceil(self.forecast
                       / (self.target_utilization * self.capacity_rps))
        desired = max(self.min_replicas,
                      min(self.max_replicas, desired))
        if desired > alive:
            return 1
        if desired < alive:
            return -1
        return 0


def make_scale(scale, autoscale: Optional["AutoscalePolicy"] = None,
               **forecast_kwargs) -> Optional[ScalePolicy]:
    """Resolve a scale spec into a :class:`ScalePolicy`.

    ``scale`` may be a policy instance (passed through), ``""``/None
    (use ``autoscale`` reactively, or nothing), ``"reactive"`` (wrap
    ``autoscale``, which must then be set), or ``"ewma"``/``"holt"``
    (a :class:`ForecastScalePolicy`, taking pool bounds from
    ``autoscale`` when given plus any ``forecast_kwargs``).

    Raises:
        ConfigError: unknown names or a reactive spec without bounds.
    """
    if isinstance(scale, ScalePolicy):
        return scale
    if not scale:
        return ReactiveScalePolicy(autoscale) if autoscale else None
    if scale == "reactive":
        if autoscale is None:
            raise ConfigError(
                "reactive scaling needs pool bounds "
                "(--autoscale MIN:MAX)"
            )
        return ReactiveScalePolicy(autoscale)
    if scale in ("ewma", "holt"):
        if autoscale is not None:
            forecast_kwargs.setdefault("min_replicas",
                                       autoscale.min_replicas)
            forecast_kwargs.setdefault("max_replicas",
                                       autoscale.max_replicas)
        return ForecastScalePolicy(mode=scale, **forecast_kwargs)
    raise ConfigError(
        f"unknown scale policy '{scale}'; known: reactive, ewma, holt"
    )


# ---------------------------------------------------------------------------
# Admission: per-arrival admit / shed
# ---------------------------------------------------------------------------
class AdmissionPolicy:
    """Per-arrival admission decision.

    The engine consults :meth:`admit` for every arrival; a rejected
    request is shed (counted as an SLO miss, zero energy).  The stock
    :class:`DepthAdmission` is special-cased onto the engine's
    allocation-free arrival path; custom policies take the full call.
    """

    name = "?"

    def admit(self, time: float, request, in_system: int) -> bool:
        """Whether to admit ``request`` with ``in_system`` admitted
        requests still queued or in flight."""
        raise NotImplementedError


class DepthAdmission(AdmissionPolicy):
    """Shed once ``depth`` admitted requests are still in the system —
    the concurrency bound real admission controllers enforce."""

    name = "depth"

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigError("shed depth must be >= 1")
        self.depth = depth

    def admit(self, time, request, in_system):
        return in_system < self.depth


# ---------------------------------------------------------------------------
# Work stealing: rebalance scheduled batches on control ticks
# ---------------------------------------------------------------------------
class WorkStealPolicy:
    """Control-tick work stealing between replicas.

    Every control tick, up to ``max_steals`` times: take the
    most-backlogged replica's *last* scheduled batch — provided it has
    not started — and re-dispatch it to the replica that would finish
    it earliest (its own service rate, plus any weight-deployment
    switch charge), but only when that completes at least ``min_gain``
    seconds sooner.  Stealing from the tail keeps the victim's
    earlier schedule intact, so nothing already promised a start time
    moves; the stolen batch keeps its original flush instant, so
    per-request latency accounting is unchanged.

    Args:
        tick: control-loop interval when no autoscaler provides one
            (with an autoscaler, stealing runs on its ticks).
        max_steals: rebalance attempts per tick.
        min_gain: minimum completion-time improvement (s) to steal.
    """

    name = "steal"

    def __init__(self, tick: float = 200e-6, max_steals: int = 1,
                 min_gain: float = 0.0) -> None:
        if tick <= 0:
            raise ConfigError("steal tick must be positive")
        if max_steals < 1:
            raise ConfigError("max_steals must be >= 1")
        if min_gain < 0:
            raise ConfigError("min_gain must be >= 0")
        self.tick = tick
        self.max_steals = max_steals
        self.min_gain = min_gain


# ---------------------------------------------------------------------------
# Resilience: what a client does when a request runs late or is shed
# ---------------------------------------------------------------------------
def _jitter_unit(seed: int, request_id: int, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one backoff decision.

    A pure function of (seed, request id, attempt) rather than a
    stateful RNG, so the same request draws the same jitter whether
    the trace was materialised, streamed, or served by a shard worker
    that never saw the other requests.
    """
    key = f"{seed}:{request_id}:{attempt}".encode()
    return zlib.crc32(key) / 4294967296.0


class ResiliencePolicy:
    """What the simulated client does about a late or shed request.

    The seventh policy seam.  The stock configurations:

    - ``none`` — today's behaviour: a late request is an SLO miss, a
      shed request is gone.  ``make_resilience("none")`` returns
      ``None`` so the engine's hot path stays byte-identical.
    - :class:`RetryPolicy` — re-enqueue a request that has not
      completed ``timeout`` seconds after admission, after a seeded
      exponential backoff with jitter, up to a retry budget.
    - :class:`HedgePolicy` — after a hedge delay, launch a duplicate
      singleton batch on the second-best replica; first completion
      wins and the loser is cancelled with partial-energy accounting.
    - :class:`DegradePolicy` — on shed (or first timeout) serve a
      degraded variant: a singleton at a service/energy discount with
      an accounted accuracy drop.

    Timeouts and hedge delays default to the run's SLO target when not
    given explicitly; a run with neither is a configuration error.
    """

    name = "?"

    def reset(self, engine) -> None:
        """Forget per-run state; called once per engine run."""

    def timeout_s(self, slo) -> float:
        """Effective deadline (s) after which the policy acts."""
        raise NotImplementedError


class RetryPolicy(ResiliencePolicy):
    """Deadline-timeout retries with seeded exponential backoff.

    A request that has not completed ``timeout`` seconds after its
    admission is re-enqueued (bypassing admission control — the
    client already holds a slot) after a backoff of
    ``backoff * multiplier**(attempt-1) * (1 + jitter * u)`` seconds,
    where ``u`` is a pure hash draw of (seed, request id, attempt).
    At most ``budget`` retries are launched per request; whichever
    copy completes first defines the request's latency, and late
    duplicate completions are charged to wasted energy.

    Args:
        timeout_us: deadline in microseconds; 0 uses the SLO target.
        budget: maximum retries per request (>= 1).
        backoff_us: base backoff in microseconds; 0 retries instantly.
        multiplier: exponential backoff growth factor (>= 1).
        jitter: relative jitter amplitude in [0, 1].
        seed: jitter hash seed.
    """

    name = "retry"

    def __init__(self, timeout_us: float = 0.0, budget: int = 2,
                 backoff_us: float = 50.0, multiplier: float = 2.0,
                 jitter: float = 0.25, seed: int = 0) -> None:
        if timeout_us < 0:
            raise ConfigError("retry timeout_us must be >= 0")
        if budget < 1:
            raise ConfigError("retry budget must be >= 1")
        if backoff_us < 0:
            raise ConfigError("retry backoff_us must be >= 0")
        if multiplier < 1:
            raise ConfigError("retry multiplier must be >= 1")
        if not 0 <= jitter <= 1:
            raise ConfigError("retry jitter must be in [0, 1]")
        self.timeout_us = timeout_us
        self.budget = budget
        self.backoff_us = backoff_us
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed

    def timeout_s(self, slo) -> float:
        if self.timeout_us > 0:
            return self.timeout_us * 1e-6
        if slo is not None and slo.target > 0:
            return slo.target
        raise ConfigError("retry needs timeout_us or an SLO target")

    def backoff_s(self, request_id: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = self.backoff_us * 1e-6
        scale = self.multiplier ** (attempt - 1)
        u = _jitter_unit(self.seed, request_id, attempt)
        return base * scale * (1.0 + self.jitter * u)


class HedgePolicy(ResiliencePolicy):
    """Hedged requests: duplicate slow requests to a second replica.

    ``delay`` seconds after admission, a request that has not
    completed is duplicated as a singleton batch on the second-best
    candidate replica (by earliest availability).  First completion
    wins; the losing copy is cancelled, charging only the energy for
    the fraction of service it actually ran.

    Args:
        delay_us: hedge delay in microseconds; 0 uses half the SLO
            target (the classic tail-hedging heuristic).
    """

    name = "hedge"

    def __init__(self, delay_us: float = 0.0) -> None:
        if delay_us < 0:
            raise ConfigError("hedge delay_us must be >= 0")
        self.delay_us = delay_us

    def timeout_s(self, slo) -> float:
        if self.delay_us > 0:
            return self.delay_us * 1e-6
        if slo is not None and slo.target > 0:
            return 0.5 * slo.target
        raise ConfigError("hedge needs delay_us or an SLO target")


class DegradePolicy(ResiliencePolicy):
    """Graceful degradation: serve a cheaper variant instead of failing.

    A shed request — or one that misses its timeout — is served as a
    degraded singleton: the same model dispatched at a service-time
    and energy discount (standing in for a distilled variant or an
    AQFP/SNN-scheme replica), with the accuracy cost accounted on the
    run.  A degraded completion still counts as a completion, so
    shedding under this policy loses accuracy, not requests.

    Args:
        timeout_us: deadline in microseconds; 0 uses the SLO target
            (only used when the run injects no shedding).
        service_scale: degraded service time as a fraction of full.
        energy_scale: degraded energy as a fraction of full.
        accuracy_drop: accounted accuracy cost per degraded request.
    """

    name = "degrade"

    def __init__(self, timeout_us: float = 0.0,
                 service_scale: float = 0.5,
                 energy_scale: float = 0.5,
                 accuracy_drop: float = 0.02) -> None:
        if timeout_us < 0:
            raise ConfigError("degrade timeout_us must be >= 0")
        if not 0 < service_scale <= 1:
            raise ConfigError("degrade service_scale must be in (0, 1]")
        if not 0 < energy_scale <= 1:
            raise ConfigError("degrade energy_scale must be in (0, 1]")
        if accuracy_drop < 0:
            raise ConfigError("degrade accuracy_drop must be >= 0")
        self.timeout_us = timeout_us
        self.service_scale = service_scale
        self.energy_scale = energy_scale
        self.accuracy_drop = accuracy_drop

    def timeout_s(self, slo) -> float:
        if self.timeout_us > 0:
            return self.timeout_us * 1e-6
        if slo is not None and slo.target > 0:
            return slo.target
        raise ConfigError("degrade needs timeout_us or an SLO target")


RESILIENCE_POLICIES = {
    "none": None,
    "retry": RetryPolicy,
    "hedge": HedgePolicy,
    "degrade": DegradePolicy,
}


def _policy_kwargs(text: str, label: str) -> dict:
    """Parse ``key=value,key=value`` option text into numeric kwargs."""
    kwargs: dict = {}
    for part in filter(None, text.split(",")):
        key, sep, value = part.partition("=")
        if not sep or not key or not value:
            raise ConfigError(f"bad {label} option {part!r}; "
                              f"expected key=value")
        try:
            kwargs[key] = int(value) if value.isdigit() else float(value)
        except ValueError:
            raise ConfigError(f"bad {label} option {part!r}; "
                              f"value must be numeric") from None
    return kwargs


def make_resilience(spec) -> Optional[ResiliencePolicy]:
    """Build a resilience policy from a spec string.

    ``""`` and ``"none"`` return ``None`` — the engine keeps its
    exact pre-resilience hot path.  Otherwise the spec is a policy
    name with optional ``key=value`` options after a colon, e.g.
    ``"retry:timeout_us=2000,budget=3"`` or ``"hedge:delay_us=800"``.
    A :class:`ResiliencePolicy` instance passes through unchanged.
    """
    if spec is None or isinstance(spec, ResiliencePolicy):
        return spec
    name, _, options = str(spec).partition(":")
    name = name.strip() or "none"
    if name not in RESILIENCE_POLICIES:
        raise ConfigError(
            f"unknown resilience policy {name!r}; use one of "
            f"{', '.join(sorted(RESILIENCE_POLICIES))}")
    cls = RESILIENCE_POLICIES[name]
    if cls is None:
        if options:
            raise ConfigError("resilience 'none' takes no options")
        return None
    try:
        return cls(**_policy_kwargs(options, f"resilience {name!r}"))
    except TypeError:
        raise ConfigError(
            f"bad options for resilience {name!r}: {options!r}") from None


# ---------------------------------------------------------------------------
# Geo dispatch: which region serves an admitted request
# ---------------------------------------------------------------------------
class GeoDispatchPolicy:
    """Region selection for one admitted request.

    The sixth policy seam, one level above :class:`DispatchPolicy`:
    before a request ever reaches a cluster's replica dispatch, the
    :class:`~repro.serving.geo.GeoRouter` asks a geo policy which
    *region* serves it.  ``route`` receives the arrival instant, the
    request's home region index, and the router view — a read-only
    surface over the fleet plan:

    - ``router.regions`` — region count;
    - ``router.capacity(i)`` — calibrated capacity (req/s);
    - ``router.price(i)`` — energy price (USD/MJ);
    - ``router.energy_per_req(i)`` — per-request energy estimate (J);
    - ``router.batch_latency(i)`` — full-batch service estimate (s);
    - ``router.wave(i, t)`` — instantaneous diurnal load factor at
      region-local time (1.0 flat for non-diurnal scenarios);
    - ``router.hops(src, dst)`` / ``router.delay(src, dst)`` — the
      interconnect (see :mod:`repro.serving.interconnect`);
    - ``router.window_rate(i, t)`` — recent *assigned* request rate
      (req/s over the router's sliding window);
    - ``router.slo`` — latency target (s), or ``None``.

    Policies are pure functions of that view, so every worker process
    replays the identical routing scan and geo runs merge exactly.
    ``reset`` runs once per routing scan.
    """

    name = "?"

    def reset(self, router) -> None:
        """Forget per-scan state; called once per routing scan."""

    def route(self, time: float, home: int, router) -> int:
        """The region index that serves a request admitted at ``time``
        by region ``home``."""
        raise NotImplementedError


class HomeRegionDispatch(GeoDispatchPolicy):
    """Serve every request where it arrived (the null geo policy)."""

    name = "home"

    def route(self, time, home, router):
        return home


class FollowSunDispatch(GeoDispatchPolicy):
    """Chase the night: route to the region deepest in its diurnal
    trough.

    Lower wave factor means local night — idle capacity — so traffic
    follows the sun around the ring.  Ties (every region flat on a
    non-diurnal scenario) break toward fewer hops from home, then the
    lower region index, which degrades to home-region routing.
    """

    name = "follow_sun"

    def route(self, time, home, router):
        return min(range(router.regions),
                   key=lambda i: (router.wave(i, time),
                                  router.hops(home, i), i))


class CheapestJouleDispatch(GeoDispatchPolicy):
    """Energy-price-aware routing: the cheapest joule wins under SLO.

    Candidate regions are those whose static latency estimate — a full
    batch's service time plus the interconnect delay from home — meets
    the SLO target; among them the lowest energy cost per request
    (price x per-request energy) wins, ties toward fewer hops then
    index.  Regions already assigned traffic beyond their calibrated
    capacity (by the router's sliding window) drop out first, so the
    cheapest joule wins only while its region has headroom rather
    than piling the whole fleet onto one grid.  With no SLO every
    region is a candidate; when no region fits the budget the request
    stays home (shipping it anywhere else only adds delay).
    """

    name = "cheapest_joule"

    def route(self, time, home, router):
        slo = router.slo
        eligible = [
            i for i in range(router.regions)
            if slo is None
            or router.batch_latency(i) + router.delay(home, i) <= slo
        ]
        if not eligible:
            return home
        open_pools = [i for i in eligible
                      if router.window_rate(i, time)
                      < router.capacity(i)]
        return min(open_pools or eligible,
                   key=lambda i: (router.price(i)
                                  * router.energy_per_req(i),
                                  router.hops(home, i), i))


class SpilloverDispatch(GeoDispatchPolicy):
    """Serve at home until the home pool saturates, then overflow.

    Saturation is the router's sliding-window assigned rate exceeding
    the region's calibrated capacity.  Overflow goes to the nearest
    region with headroom (fewest hops, then most spare capacity, then
    index); when every region is saturated the request stays home —
    there is nowhere better to spill.
    """

    name = "spillover"

    def route(self, time, home, router):
        if router.window_rate(home, time) <= router.capacity(home):
            return home
        spare = [
            i for i in range(router.regions) if i != home
            and router.window_rate(i, time) < router.capacity(i)
        ]
        if not spare:
            return home
        return min(spare,
                   key=lambda i: (router.hops(home, i),
                                  router.window_rate(i, time)
                                  - router.capacity(i), i))


GEO_POLICIES = {
    policy.name: policy for policy in (
        HomeRegionDispatch, FollowSunDispatch, CheapestJouleDispatch,
        SpilloverDispatch,
    )
}


def make_geo(policy: str | GeoDispatchPolicy) -> GeoDispatchPolicy:
    """Resolve a geo dispatch policy name (or pass an instance through).

    Raises:
        ConfigError: for unknown names.
    """
    if isinstance(policy, GeoDispatchPolicy):
        return policy
    try:
        return GEO_POLICIES[policy]()
    except KeyError:
        raise ConfigError(
            f"unknown geo policy '{policy}'; known: "
            f"{', '.join(GEO_POLICIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Region-granularity outage storms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegionOutage:
    """One region's outage window: down in ``[at, until)``."""

    region: int
    at: float
    until: float

    def __post_init__(self) -> None:
        if self.until <= self.at:
            raise ConfigError("outage must end after it starts")

    def down(self, time: float) -> bool:
        """Whether the region is dark at ``time``."""
        return self.at <= time < self.until


@dataclass(frozen=True)
class RegionFailurePlan:
    """Seeded region-granularity outage storms for the geo tier.

    The cluster-level :class:`~repro.serving.events.FailurePlan` darkens
    single replicas; this darkens whole *regions* — the router reroutes
    arrivals for a dark region to the nearest healthy one, so region
    engines themselves stay fault-free and shard-stable.  ``count``
    outages are sampled over the middle 80% of the trace span
    (round-robin over regions with a seeded shuffle), each lasting
    ``downtime_frac`` of the span.

    Attributes:
        count: outage windows to sample.
        downtime_frac: outage length as a fraction of the trace span.
        seed: RNG seed for sampling.
    """

    count: int = 2
    downtime_frac: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("storm count must be >= 0")
        if not 0.0 < self.downtime_frac < 1.0:
            raise ConfigError("downtime fraction must be in (0, 1)")

    def resolve(self, start: float, end: float,
                regions: int) -> tuple[RegionOutage, ...]:
        """Concrete outage windows for a trace spanning [start, end]."""
        if regions < 1:
            raise ConfigError("region count must be >= 1")
        span = max(end - start, 1e-12)
        rng = _random.Random(self.seed)
        order = list(range(regions))
        rng.shuffle(order)
        downtime = self.downtime_frac * span
        return tuple(sorted(
            (RegionOutage(region=order[i % regions],
                          at=(at := start + span
                              * (0.1 + 0.8 * rng.random())),
                          until=at + downtime)
             for i in range(self.count)),
            key=lambda o: (o.at, o.region),
        ))


__all__ = [
    "AdmissionPolicy",
    "CheapestJouleDispatch",
    "DISPATCH_POLICIES",
    "DepthAdmission",
    "DispatchPolicy",
    "EdfFlush",
    "FLUSH_POLICIES",
    "FastestFinishDispatch",
    "FifoFlush",
    "FlushPolicy",
    "FollowSunDispatch",
    "ForecastScalePolicy",
    "GEO_POLICIES",
    "GeoDispatchPolicy",
    "HomeRegionDispatch",
    "LeastLoadedDispatch",
    "MAX_PRIORITY",
    "RESILIENCE_POLICIES",
    "ReactiveScalePolicy",
    "RegionFailurePlan",
    "RegionOutage",
    "ResiliencePolicy",
    "RetryPolicy",
    "HedgePolicy",
    "DegradePolicy",
    "RoundRobinDispatch",
    "ScalePolicy",
    "ShardDispatch",
    "SpilloverDispatch",
    "WorkStealPolicy",
    "make_dispatch",
    "make_flush",
    "make_geo",
    "make_resilience",
    "make_scale",
]
