"""Sharded scale-out of the serving simulator across worker processes.

One :class:`ShardedEngine` run simulates a single logical trace —
millions of requests — by fanning deterministic shards out through the
:mod:`repro.runtime` process-pool executor.  Each worker streams its
own slice of the global seeded trace (:func:`~repro.serving.workload.
shard_trace`: no process ever materialises the full request list),
serves it on an independent :class:`~repro.serving.events.
ClusterEngine`, and ships back a compact :class:`ShardOutcome`; the
parent merge-reduces those into one :class:`ShardedResult` with exact
counters and energy sums, a mergeable :class:`LatencyDigest` for
percentiles, and per-shard telemetry rows tagged with their shard id.

Why this is exact and not merely parallel: the splitter partitions
models by the same ``crc32(model) % replicas`` pin
:class:`~repro.serving.policies.ShardDispatch` homes batches with, so
each replica's entire traffic lands in exactly one shard and replica
state (free times, resident weights, switch charges) never couples
across workers.  Every shard engine holds the *full* replica pool
(preserving indices and the hash fold) and drains at the *global*
trace end via the engine's ``span`` pin.  On such shard-stable cells a
sharded run reproduces the monolithic engine's per-request latencies
and energies bit for bit — ``detail=True`` merges the shards back
into a full :class:`~repro.serving.simulator.ServingResult` and the
equivalence suite (``tests/test_serving_sharding.py``) holds it to
exact tuple equality.

Control-plane features that inherently observe cross-shard state —
autoscaling, work stealing, admission depth, failure re-dispatch,
hedged/degraded resilience — are rejected up front by
:func:`validate_sharding` with a :class:`~repro.errors.ConfigError`
rather than silently drifting.  Deadline-timeout retries *are*
shard-stable (their backoff jitter is a pure hash of seed, request id
and attempt, and retried singletons re-dispatch to the model's home
replica), so ``resilience="retry"`` shards exactly.

The engine itself is fault tolerant: a worker shard that crashes is
re-run with capped exponential backoff (``shard_retries``), and long
runs can checkpoint completed :class:`ShardOutcome` pickles to disk
(``checkpoint=``) so an interrupted run resumes with only the missing
shards.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass
from itertools import chain
from time import perf_counter
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.runtime.executor import parallel_map, worker_payload
from repro.serving.batching import make_policy
from repro.serving.policies import make_resilience
from repro.serving.events import SloPolicy
from repro.serving.memo import CacheStats, LayerMemoCache, MemoSnapshot
from repro.serving.simulator import ServingResult, ServingSimulator
from repro.serving.telemetry import Telemetry
from repro.serving.workload import (
    Request,
    Scenario,
    get_scenario,
    shard_trace,
    trace_span,
)

__all__ = [
    "LatencyDigest",
    "ShardOutcome",
    "ShardedEngine",
    "ShardedResult",
    "validate_sharding",
]

#: Dispatch strategies whose decisions depend only on the model being
#: dispatched (never on cross-request engine state), so a model-
#: partitioned trace reproduces them exactly across workers.
SHARD_STABLE_DISPATCH = ("shard",)

#: Resilience policies whose duplicate scheduling depends only on the
#: request itself (deadline + pure seeded jitter) and whose retries
#: re-dispatch to the model's home replica, so they replay identically
#: inside a single shard.
SHARD_STABLE_RESILIENCE = ("retry",)

#: Worker-crash retry backoff never sleeps longer than this (s).
_BACKOFF_CAP_S = 2.0


def validate_sharding(shards: int, *, replicas: int,
                      dispatch: object = "shard", autoscale: str = "",
                      scale: str = "", steal: bool = False,
                      shed: int = 0, fail: int = 0,
                      resilience: object = "",
                      scenarios: Sequence[str | Scenario] = ()) -> None:
    """Reject shard counts and features a sharded run cannot honour.

    Raises:
        ConfigError: whenever the combination would make sharded and
            monolithic results diverge (or the shard count is
            malformed) — the CLI surfaces these as clean exit-2
            errors, matching the ``--scale``/``--flush`` pattern.
    """
    if shards < 1:
        raise ConfigError("shard count must be >= 1")
    if replicas < 1:
        raise ConfigError("cluster needs at least one replica")
    if shards > replicas:
        raise ConfigError(
            f"{shards} shards need at least {shards} replicas (got "
            f"{replicas}); every worker shard must own at least one "
            f"home replica"
        )
    name = dispatch if isinstance(dispatch, str) \
        else getattr(dispatch, "name", "?")
    if name not in SHARD_STABLE_DISPATCH:
        raise ConfigError(
            f"sharded runs need a shard-stable dispatch "
            f"({', '.join(SHARD_STABLE_DISPATCH)}), not '{name}': "
            f"stateful strategies route on cross-request state the "
            f"workers cannot share"
        )
    if autoscale or scale:
        raise ConfigError(
            "sharded runs cannot autoscale: pool changes would couple "
            "shards through the shared replica set"
        )
    if steal:
        raise ConfigError(
            "work stealing moves batches between shard-owned "
            "replicas; disable stealing for sharded runs"
        )
    if shed:
        raise ConfigError(
            "admission control sheds on the global in-system depth, "
            "which no single shard observes; disable shedding for "
            "sharded runs"
        )
    if fail:
        raise ConfigError(
            "failure injection re-dispatches in-flight batches across "
            "shard boundaries; sharded runs must be fault-free"
        )
    res = make_resilience(resilience) if isinstance(resilience, str) \
        else resilience
    if res is not None and res.name not in SHARD_STABLE_RESILIENCE:
        raise ConfigError(
            f"resilience '{res.name}' is not shard-stable: hedged "
            f"duplicates pick the second-best replica from live pool-"
            f"wide state, and degraded fallbacks couple to admission "
            f"shedding — neither is visible to a single shard; "
            f"sharded runs support only "
            f"{', '.join(SHARD_STABLE_RESILIENCE)} (or none)"
        )
    for scenario in scenarios:
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if scenario.faults:
            raise ConfigError(
                f"scenario '{scenario.name}' injects replica faults; "
                f"failure re-dispatch is not shard-stable"
            )


class LatencyDigest:
    """A mergeable fixed-relative-resolution latency summary.

    Values land in geometric buckets of width ``1 + resolution``, so
    any percentile read off the digest is within ``resolution/2``
    (relative) of the exact nearest-rank value while the digest stays
    O(distinct buckets) — a million served latencies digest into a few
    hundred counters, which is what lets worker shards ship summaries
    instead of per-request arrays.  Count, sum, min and max are exact.
    """

    __slots__ = ("resolution", "counts", "count", "total",
                 "min", "max", "_scale")

    def __init__(self, resolution: float = 0.01) -> None:
        if resolution <= 0:
            raise ConfigError("digest resolution must be positive")
        self.resolution = resolution
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._scale = 1.0 / math.log1p(resolution)

    def add(self, value: float) -> None:
        """Record one latency (s)."""
        idx = (math.floor(math.log(value) * self._scale)
               if value > 0.0 else -(1 << 62))
        counts = self.counts
        counts[idx] = counts.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest (same resolution) into this one."""
        if other.resolution != self.resolution:
            raise ConfigError("cannot merge digests of different "
                              "resolutions")
        counts = self.counts
        for idx, n in other.counts.items():
            counts[idx] = counts.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate nearest-rank percentile ``q`` (in [0, 100]).

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the exact observed min/max.
        """
        if not self.count:
            raise ConfigError("percentile of an empty digest")
        if not 0.0 <= q <= 100.0:
            raise ConfigError("percentile rank must be in [0, 100]")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                if idx <= -(1 << 62):
                    return 0.0
                mid = math.exp((idx + 0.5) / self._scale)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits


@dataclass(frozen=True)
class ShardOutcome:
    """One worker shard's summary, shipped back to the parent.

    Counters, energies and busy time are exact; latency percentiles
    travel in the mergeable ``digest``.  ``result`` carries the full
    per-request :class:`ServingResult` only when the run asked for
    ``detail`` (the equivalence-test path); ``telemetry_rows`` are the
    shard's trace rows, each already tagged with ``shard``.
    """

    shard: int
    requests: int
    batches: int
    energy: float
    busy_s: float
    first_arrival: float
    last_done: float
    digest: LatencyDigest
    slo_hits: int
    cache: CacheStats
    wall_s: float
    telemetry_rows: tuple = ()
    counters: tuple = ()
    result: Optional[ServingResult] = None


def _shard_simulator(spec: dict,
                     telemetry: Optional[Telemetry]) -> ServingSimulator:
    """Rebuild the per-shard simulator from picklable primitives.

    A warm run's :class:`MemoSnapshot` arrives via the pool
    initializer (:func:`~repro.runtime.executor.worker_payload`) —
    shipped once per worker, not pickled into every shard spec — and
    is installed into the shard's fresh memo so its first request
    already hits warm layer totals.
    """
    slo = SloPolicy(target=spec["slo_us"] * 1e-6) \
        if spec["slo_us"] else None
    payload = worker_payload()
    snapshot = (payload.get("memo")
                if isinstance(payload, dict) else None)
    return ServingSimulator(
        accelerator=spec["accelerator"],
        replicas=spec["replicas"],
        policy=make_policy(spec["policy"], batch_size=spec["batch_size"]),
        dispatch=spec["dispatch"],
        cache=LayerMemoCache(),
        slo=slo,
        telemetry=telemetry,
        resilience=spec.get("resilience") or None,
        snapshot=snapshot,
    )


def _serve_shard(spec: dict) -> ShardOutcome:
    """Serve one shard of the global trace (runs in a worker process).

    Module-level and dict-parameterised so the process pool can pickle
    the call; everything heavier (scenario, networks, memo cache,
    engine) is rebuilt inside the worker.
    """
    t_start = perf_counter()
    scenario = get_scenario(spec["scenario"])
    telemetry = (Telemetry(events=spec["trace_events"],
                           tick=spec["tick"] or None)
                 if spec["trace"] else None)
    sim = _shard_simulator(spec, telemetry)
    shard = shard_trace(scenario, spec["rate"], spec["n"], spec["seed"],
                        shards=spec["shards"], shard=spec["shard"],
                        replicas=spec["replicas"],
                        span=spec.get("span"))
    networks = {m: sim.network(m) for m in scenario.mix.models()}
    engine = sim.make_engine(networks, prewarm=spec.get("warm_cells"))

    arrivals: dict[int, float] = {}

    def tee(stream):
        for request in stream:
            arrivals[request.request_id] = request.arrival
            yield request

    requests: list[Request] = []
    stream = iter(shard)
    if spec["detail"]:
        requests = list(stream)
        for request in requests:
            arrivals[request.request_id] = request.arrival
        stream = iter(requests)
    else:
        stream = tee(stream)

    if telemetry is not None:
        telemetry.begin_run(
            scenario=scenario.name, policy=sim.policy.name,
            dispatch=sim.dispatch, replicas=sim.replicas,
            accelerator=sim.accelerator.name, rate_rps=spec["rate"],
            shard=spec["shard"], shards=spec["shards"],
        )

    first = next(stream, None)
    if first is None:
        # a legal outcome: few models, unlucky hash fold — this
        # shard's replicas simply idle for the whole run (still
        # reporting any snapshot cells it was shipped)
        idle_stats = sim.cache.stats
        return ShardOutcome(
            shard=spec["shard"], requests=0, batches=0, energy=0.0,
            busy_s=0.0, first_arrival=math.inf, last_done=-math.inf,
            digest=LatencyDigest(), slo_hits=0,
            cache=CacheStats(seeded=idle_stats.seeded,
                             seed_hits=idle_stats.seed_hits),
            wall_s=perf_counter() - t_start,
        )
    outcome = engine.run(chain((first,), stream), span=shard.span)

    slo_target = spec["slo_us"] * 1e-6
    digest = LatencyDigest()
    energy = 0.0
    slo_hits = 0
    for request_id, (done, joules) in outcome.done.items():
        latency = done - arrivals[request_id]
        digest.add(latency)
        energy += joules
        if slo_target and latency <= slo_target:
            slo_hits += 1
    busy = sum(record.service for record in outcome.batches)
    last_done = max(record.done for record in outcome.batches)
    stats = sim.cache.stats
    cache = CacheStats(hits=stats.hits, misses=stats.misses,
                       energy_hits=stats.energy_hits,
                       energy_misses=stats.energy_misses,
                       seeded=stats.seeded, seed_hits=stats.seed_hits)

    rows: tuple = ()
    counters: tuple = ()
    if telemetry is not None:
        for row in telemetry.rows:
            row["shard"] = spec["shard"]
        rows = tuple(telemetry.rows)
        counters = tuple(sorted(telemetry.counters.items()))

    result = None
    if spec["detail"]:
        ordered = tuple(requests)
        latencies = tuple(outcome.done[r.request_id][0] - r.arrival
                          for r in ordered)
        energies = tuple(outcome.done[r.request_id][1] for r in ordered)
        result = ServingResult(
            accelerator=sim.accelerator.name, replicas=sim.replicas,
            scenario=scenario.name, policy=sim.policy.name,
            rate=spec["rate"], requests=ordered, latencies=latencies,
            energy_per_request=energies, batches=outcome.batches,
            cache=cache, slo_target=slo_target,
            replica_trace=outcome.replica_trace,
        )

    return ShardOutcome(
        shard=spec["shard"], requests=len(outcome.done),
        batches=len(outcome.batches), energy=energy, busy_s=busy,
        first_arrival=min(arrivals.values()), last_done=last_done,
        digest=digest, slo_hits=slo_hits, cache=cache,
        wall_s=perf_counter() - t_start, telemetry_rows=rows,
        counters=counters, result=result,
    )


def _spec_fingerprint(spec: dict) -> str:
    """Stable identity of a sharded run's configuration.

    All of a run's shard specs differ only in ``"shard"``; dropping it
    yields the key a checkpoint is valid for.
    """
    return repr({k: spec[k] for k in sorted(spec) if k != "shard"})


@dataclass(frozen=True)
class _ShardFailure:
    """A worker shard that raised instead of finishing."""

    shard: int
    error: str


def _serve_shard_safe(spec: dict) -> ShardOutcome | _ShardFailure:
    """Crash-isolating wrapper around :func:`_serve_shard`.

    A raising shard comes back as a :class:`_ShardFailure` instead of
    aborting the whole fan-out, so the parent keeps every completed
    :class:`ShardOutcome` and re-runs only the failed shards.  (A
    worker that dies outright — SIGKILL, ``os._exit`` — is caught one
    layer down by :func:`~repro.runtime.executor.parallel_map`'s
    incomplete-only re-run instead.)
    """
    try:
        return _serve_shard(spec)
    except Exception as exc:  # noqa: BLE001 — shard faults are data
        return _ShardFailure(spec["shard"],
                             f"{type(exc).__name__}: {exc}")


@dataclass
class ShardedResult:
    """The merge-reduced outcome of one sharded run.

    Counters, energy, busy time and SLO hits are exact sums over the
    shards; latency percentiles read off the merged
    :class:`LatencyDigest` (within its resolution).  ``detail`` holds
    the bit-exact merged :class:`ServingResult` when the run was
    started with ``detail=True``.
    """

    accelerator: str
    replicas: int
    scenario: str
    policy: str
    dispatch: str
    rate: float
    shards: int
    requests: int
    batches: int
    energy: float
    busy_s: float
    first_arrival: float
    last_done: float
    digest: LatencyDigest
    slo_target: float
    slo_hits: int
    wall_s: float
    cache: CacheStats
    outcomes: tuple[ShardOutcome, ...] = ()
    detail: Optional[ServingResult] = None
    resilience: str = ""
    shard_retries: int = 0

    @property
    def makespan(self) -> float:
        """Global first arrival to global last completion (s)."""
        if self.last_done <= self.first_arrival:
            return 0.0
        return self.last_done - self.first_arrival

    @property
    def throughput_rps(self) -> float:
        """Simulated served requests per second of sim-time."""
        return self.requests / self.makespan if self.makespan else 0.0

    @property
    def simulated_rps(self) -> float:
        """Aggregate simulated requests per second of *wall* time —
        the scale-out headline the ``serving_scale`` bench records."""
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch size across all shards."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool over the global makespan."""
        available = self.replicas * self.makespan
        return self.busy_s / available if available else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of all requests meeting the SLO (exact)."""
        if not self.slo_target:
            return 1.0
        return self.slo_hits / self.requests if self.requests else 1.0

    @property
    def telemetry_rows(self) -> tuple:
        """Every shard's telemetry rows, shard-tagged, concatenated
        in (shard, emission) order."""
        return tuple(chain.from_iterable(o.telemetry_rows
                                         for o in self.outcomes))

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` (s): exact when the run kept
        per-request detail, digest-resolution otherwise."""
        if self.detail is not None:
            return self.detail.latency_percentile(q)
        return self.digest.percentile(q)

    def to_row(self) -> dict:
        """The reporting row ``repro serve-sim --shards N`` prints."""
        row = {
            "scenario": self.scenario,
            "policy": self.policy,
            "shards": self.shards,
            "requests": self.requests,
            "rate_rps": self.rate,
            "p50_us": self.latency_percentile(50) * 1e6,
            "p95_us": self.latency_percentile(95) * 1e6,
            "p99_us": self.latency_percentile(99) * 1e6,
            "throughput_rps": self.throughput_rps,
            "agg_rps": self.simulated_rps,
            "energy_per_req_uj": (self.energy / self.requests * 1e6
                                  if self.requests else 0.0),
            "mean_batch": self.mean_batch,
            "utilization": self.utilization,
            "cache_hit_rate": self.cache.hit_rate,
        }
        if self.slo_target:
            row["slo_attain"] = self.slo_attainment
        if self.resilience:
            row["resilience"] = self.resilience
        if self.shard_retries:
            row["shard_retries"] = self.shard_retries
        if self.cache.seeded:
            # warm-fleet effectiveness: snapshot cells shipped across
            # all shards and how many turned into warm promotions
            row["memo_seeded"] = self.cache.seeded
            row["warm_hits"] = self.cache.seed_hits
        return row


def _merge_detail(outcomes: Sequence[ShardOutcome], *, scenario: str,
                  policy: str, rate: float, accelerator: str,
                  replicas: int, slo_target: float,
                  cache: CacheStats) -> Optional[ServingResult]:
    """Reassemble per-shard ServingResults into the monolithic one.

    Requests (and their latencies/energies) interleave back into
    global request-id order — exactly the monolithic trace order, as
    ids are assigned in arrival order.  Batches from different shards
    have no global dispatch order, so they are canonically sorted; the
    equivalence suite compares them as sets.
    """
    shards = [o.result for o in outcomes if o.result is not None]
    if not shards:
        return None
    triplets = sorted(
        chain.from_iterable(zip(r.requests, r.latencies,
                                r.energy_per_request) for r in shards),
        key=lambda triplet: triplet[0].request_id,
    )
    requests = tuple(t[0] for t in triplets)
    batches = tuple(sorted(
        chain.from_iterable(r.batches for r in shards),
        key=lambda b: (b.flush, b.start, b.done, b.replica, b.model),
    ))
    return ServingResult(
        accelerator=accelerator, replicas=replicas, scenario=scenario,
        policy=policy, rate=rate, requests=requests,
        latencies=tuple(t[1] for t in triplets),
        energy_per_request=tuple(t[2] for t in triplets),
        batches=batches, cache=cache, slo_target=slo_target,
        replica_trace=((requests[0].arrival, replicas),),
    )


class ShardedEngine:
    """Fan one logical serving run out across worker processes.

    Args:
        shards: worker shard count (each one independent
            :class:`~repro.serving.events.ClusterEngine` over the full
            replica pool, fed only its models' traffic).
        accelerator: replica configuration scheme name.
        replicas: cluster width; must be >= ``shards``.
        policy: batching policy name (``fixed``/``timeout``).
        batch_size: batching policy batch size.
        dispatch: must be shard-stable (``shard``).
        slo_us: per-request latency SLO (us); 0 disables.
        mode: executor mode (``process``/``thread``/``inline``) — the
            runtime executor falls back to threads transparently where
            process pools are unavailable.
        max_workers: pool width cap (default: executor's own).
        detail: keep per-request arrays and merge a full bit-exact
            :class:`ServingResult` (the equivalence-test path; costs
            O(n) parent memory, leave off at million-request scale).
        trace: record per-shard telemetry (shard-tagged rows on
            ``result.telemetry_rows``).
        tick: telemetry timeline sampling interval (s), when tracing.
        trace_events: include per-request event rows in the trace
            (off keeps only timeline samples — the scale default).
        resilience: client resilience spec string; only shard-stable
            policies (:data:`SHARD_STABLE_RESILIENCE`) are accepted.
        shard_retries: how many times a crashed/raising worker shard
            is re-run (with capped exponential backoff) before the
            run gives up.
        retry_backoff_s: base sleep before the first shard re-run;
            doubles per attempt, capped at ``_BACKOFF_CAP_S``.
        checkpoint: optional path; completed :class:`ShardOutcome`
            pickles land there after every fan-out round, and a rerun
            with the same configuration resumes from them, serving
            only the missing shards.  A checkpoint written by a
            different configuration is ignored and overwritten.
        prewarm: warm-start the fleet (the default).  The parent
            resolves every (config, model, batch) layer cell once,
            snapshots the totals, and broadcasts the snapshot to the
            workers through the pool initializer; the global trace
            span is computed once in the parent and shipped in the
            spec so no worker repeats the span-recording pass.  The
            memo is exact, so warm results are bit-identical to cold
            — pass ``False`` for the cold reference path (the bench
            baseline).
        snapshot: a pre-built :class:`MemoSnapshot` to install into
            the parent's warm cache up front (e.g. totals loaded from
            the persisted memo pool), on top of which ``prewarm``
            fills whatever is missing.
        memo_cache: the parent-side :class:`LayerMemoCache` to
            calibrate and prewarm through; pass a shared instance to
            accumulate warm totals across runs (the ``--persist-memo``
            path), default a fresh private one.

    Raises:
        ConfigError: from :func:`validate_sharding`, for any
            combination whose sharded results would not be exact.
    """

    def __init__(self, shards: int, accelerator: str = "SMART",
                 replicas: int = 2, policy: str = "timeout",
                 batch_size: int = 8, dispatch: str = "shard",
                 slo_us: float = 0.0, mode: str = "process",
                 max_workers: Optional[int] = None,
                 detail: bool = False, trace: bool = False,
                 tick: float = 200e-6,
                 trace_events: bool = False,
                 resilience: str = "",
                 shard_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 checkpoint: Optional[str] = None,
                 prewarm: bool = True,
                 snapshot: Optional[MemoSnapshot] = None,
                 memo_cache: Optional[LayerMemoCache] = None) -> None:
        validate_sharding(shards, replicas=replicas, dispatch=dispatch,
                          resilience=resilience)
        make_policy(policy, batch_size=batch_size)  # fail fast
        if shard_retries < 0:
            raise ConfigError("shard_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        self.shards = shards
        self.accelerator = accelerator
        self.replicas = replicas
        self.policy = policy
        self.batch_size = batch_size
        self.dispatch = dispatch
        self.slo_us = slo_us
        self.mode = mode
        self.max_workers = max_workers
        self.detail = detail
        self.trace = trace
        self.tick = tick
        self.trace_events = trace_events
        # normalise "none"/"" to the empty spec so rows stay clean
        self.resilience = \
            resilience if make_resilience(resilience) is not None else ""
        self.shard_retries = shard_retries
        self.retry_backoff_s = retry_backoff_s
        self.checkpoint = checkpoint
        self.prewarm = prewarm
        self._warm_cache = (memo_cache if memo_cache is not None
                            else LayerMemoCache())
        if snapshot is not None:
            snapshot.install(self._warm_cache)

    def run_scenario(self, scenario: Scenario | str, n_requests: int,
                     seed: int = 0) -> ShardedResult:
        """Calibrate, shard, fan out, and merge one scenario run."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        validate_sharding(self.shards, replicas=self.replicas,
                          dispatch=self.dispatch,
                          resilience=self.resilience,
                          scenarios=(scenario,))
        if n_requests < 1:
            raise ConfigError("trace needs at least one request")
        # calibrate the offered rate exactly as the monolithic path
        # does, so sharded and monolithic runs serve the same trace;
        # the calibrator runs over the parent's warm cache, so its
        # cells feed straight into the broadcast snapshot
        calibrator = ServingSimulator(
            accelerator=self.accelerator, replicas=self.replicas,
            policy=make_policy(self.policy, batch_size=self.batch_size),
            dispatch=self.dispatch,
            cache=self._warm_cache,
        )
        rate = scenario.load * calibrator.capacity_rps(scenario)
        snapshot: Optional[MemoSnapshot] = None
        span: Optional[tuple[float, float]] = None
        warm_cells: Optional[tuple] = None
        if self.prewarm:
            # one parent-side pass resolves every layer cell and the
            # global trace span; workers then skip both — the memo is
            # exact, so nothing downstream changes bit-wise
            snapshot = calibrator.prewarm(scenario)
            span = trace_span(scenario, rate, n_requests, seed)
            warm_cells = tuple(
                (model, batch)
                for model in sorted(scenario.mix.models())
                for batch in range(1, calibrator.policy.max_batch + 1)
            )
        specs = [
            {
                "scenario": scenario.name, "rate": rate,
                "n": n_requests, "seed": seed, "shards": self.shards,
                "shard": shard, "replicas": self.replicas,
                "accelerator": self.accelerator, "policy": self.policy,
                "batch_size": self.batch_size,
                "dispatch": self.dispatch, "slo_us": self.slo_us,
                "detail": self.detail, "trace": self.trace,
                "tick": self.tick, "trace_events": self.trace_events,
                "resilience": self.resilience,
                "span": span, "warm_cells": warm_cells,
            }
            for shard in range(self.shards)
        ]
        t_start = perf_counter()
        fingerprint = _spec_fingerprint(specs[0])
        done = self._load_checkpoint(fingerprint)
        retried = 0
        attempt = 0
        while True:
            pending = [s for s in specs if s["shard"] not in done]
            if not pending:
                break
            if attempt:
                time.sleep(min(
                    self.retry_backoff_s * 2 ** (attempt - 1),
                    _BACKOFF_CAP_S))
            stats: dict = {}
            batch = parallel_map(_serve_shard_safe,
                                 [(s,) for s in pending],
                                 mode=self.mode,
                                 max_workers=self.max_workers,
                                 stats=stats,
                                 payload=({"memo": snapshot}
                                          if snapshot is not None
                                          else None))
            retried += stats.get("retried", 0)
            failures = []
            for item in batch:
                if isinstance(item, ShardOutcome):
                    done[item.shard] = item
                else:
                    failures.append(item)
            self._save_checkpoint(fingerprint, done)
            if not failures:
                break
            attempt += 1
            if attempt > self.shard_retries:
                raise RuntimeError(
                    f"shard {failures[0].shard} still failing after "
                    f"{self.shard_retries} retries: "
                    f"{failures[0].error}")
            retried += len(failures)
        wall = perf_counter() - t_start
        outcomes = tuple(done[shard] for shard in range(self.shards))
        return self._reduce(scenario, rate, outcomes, wall, retried)

    # -- crash recovery --------------------------------------------------
    def _load_checkpoint(self, fingerprint: str) -> dict:
        """Completed shard outcomes from a matching prior run."""
        if not self.checkpoint or not os.path.exists(self.checkpoint):
            return {}
        try:
            with open(self.checkpoint, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            return {}  # corrupt/truncated checkpoint: start fresh
        if payload.get("fingerprint") != fingerprint:
            return {}  # different run configuration: start fresh
        return dict(payload.get("outcomes", {}))

    def _save_checkpoint(self, fingerprint: str, done: dict) -> None:
        if not self.checkpoint or not done:
            return
        tmp = f"{self.checkpoint}.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump({"fingerprint": fingerprint,
                         "outcomes": dict(done)}, handle)
        os.replace(tmp, self.checkpoint)

    def _reduce(self, scenario: Scenario, rate: float,
                outcomes: tuple[ShardOutcome, ...],
                wall: float, retried: int = 0) -> ShardedResult:
        """Exact merge of the per-shard outcomes."""
        digest = LatencyDigest()
        cache = CacheStats()
        for outcome in outcomes:
            digest.merge(outcome.digest)
            cache.hits += outcome.cache.hits
            cache.misses += outcome.cache.misses
            cache.energy_hits += outcome.cache.energy_hits
            cache.energy_misses += outcome.cache.energy_misses
            cache.seeded += outcome.cache.seeded
            cache.seed_hits += outcome.cache.seed_hits
        slo_target = self.slo_us * 1e-6
        detail = _merge_detail(
            outcomes, scenario=scenario.name, policy=self.policy,
            rate=rate, accelerator=self.accelerator,
            replicas=self.replicas, slo_target=slo_target, cache=cache,
        ) if self.detail else None
        return ShardedResult(
            accelerator=self.accelerator, replicas=self.replicas,
            scenario=scenario.name, policy=self.policy,
            dispatch=self.dispatch, rate=rate, shards=self.shards,
            requests=sum(o.requests for o in outcomes),
            batches=sum(o.batches for o in outcomes),
            energy=sum(o.energy for o in outcomes),
            busy_s=sum(o.busy_s for o in outcomes),
            first_arrival=min(o.first_arrival for o in outcomes),
            last_done=max(o.last_done for o in outcomes),
            digest=digest, slo_target=slo_target,
            slo_hits=sum(o.slo_hits for o in outcomes),
            wall_s=wall, cache=cache, outcomes=outcomes, detail=detail,
            resilience=self.resilience, shard_retries=retried,
        )
