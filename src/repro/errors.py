"""Exception hierarchy for the SMART reproduction library.

Every error raised by this package derives from :class:`ReproError`, so a
downstream user can catch one type at an API boundary.  The subclasses map
to the major subsystems; they carry ordinary messages, no custom state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An accelerator / memory configuration is inconsistent or out of range."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class SimulationError(ReproError):
    """The transient circuit simulation failed to run or converge."""


class MappingError(ReproError):
    """A CNN layer cannot be mapped onto the systolic array as requested."""


class ScheduleError(ReproError):
    """The compiler produced, or was asked to apply, an invalid schedule."""


class SolverError(ReproError):
    """The ILP solver failed or returned an infeasible/unbounded status."""
