"""SMART reproduction: heterogeneous scratchpad memory for SFQ systolic
CNN accelerators (Zokaee & Jiang, MICRO 2021).

Public API tour:

- :mod:`repro.core` -- SMART itself: the pipelined CMOS-SFQ RANDOM
  array, the heterogeneous SPM, the Table 4 configurations and scheme
  factories (``make_tpu`` / ``make_supernpu`` / ``make_smart`` /
  ``make_accelerator``).
- :mod:`repro.systolic` -- the weight-stationary systolic simulator
  (SCALE-SIM substitute) and memory-system stall models.
- :mod:`repro.models` -- the six-CNN model zoo with the paper's batch
  sizes.
- :mod:`repro.compiler` -- the ILP allocation/prefetch compiler
  (scipy/HiGHS in place of Gurobi) and its greedy baseline.
- :mod:`repro.sfq` -- SFQ devices, PTL/JTL interconnect and H-trees.
- :mod:`repro.spice` -- the transient superconductor circuit simulator
  used for model validation (JoSIM substitute).
- :mod:`repro.cryomem` -- cryo-pgen/cryo-mem style memory models and
  the Table 1 technologies.
- :mod:`repro.eval` -- one experiment function per paper table/figure.

Quick start::

    from repro.core import make_smart, make_supernpu
    from repro.models import get_model

    net = get_model("AlexNet")
    smart = make_smart().simulate(net, batch=1)
    supernpu = make_supernpu().simulate(net, batch=1)
    print(supernpu.latency / smart.latency)
"""

from repro import errors, units

__version__ = "1.0.0"

__all__ = ["errors", "units", "__version__"]
