"""SMART's primary contribution: the pipelined CMOS-SFQ RANDOM array,
the heterogeneous SPM, the Table 4 accelerator configurations and the
pipeline design-space exploration.
"""

from repro.core.pipelined_array import PipelinedCmosSfqArray
from repro.core.hetero_spm import SmartSpm
from repro.core.design_space import (
    DesignPoint,
    evaluate_design_point,
    explore_design_space,
)
from repro.core.configs import (
    SCHEMES,
    make_accelerator,
    make_energy_model,
    make_smart,
    make_supernpu,
    make_tpu,
)

__all__ = [
    "PipelinedCmosSfqArray",
    "SmartSpm",
    "DesignPoint",
    "evaluate_design_point",
    "explore_design_space",
    "SCHEMES",
    "make_accelerator",
    "make_energy_model",
    "make_smart",
    "make_supernpu",
    "make_tpu",
]
