"""Accelerator configurations (paper Table 4) and scheme factories.

Factories return ready-to-run :class:`AcceleratorModel` /
:class:`EnergyModel` pairs for every scheme of the evaluation:

- ``TPU``: 0.7 GHz, 256x256, 45 TMAC/s peak, ideal unified buffer;
- ``SuperNPU`` (= scheme ``SHIFT``): 52.6 GHz, 64x256, 842 TMAC/s peak,
  24 MB + 24 MB SHIFT SPMs, 128 KB weight SHIFT;
- ``SRAM``: SuperNPU with all SHIFT replaced by Josephson-CMOS SRAM at
  TPU capacity;
- ``Heter``: SRAM plus three 32 KB SHIFT arrays, ideal allocation;
- ``Pipe``: Heter with the SRAM replaced by the 28 MB pipelined
  CMOS-SFQ array;
- ``SMART``: Pipe plus the ILP compiler's prefetching (a = 3).

Sensitivity knobs (Figs 22-25) are exposed as factory arguments.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.hetero_spm import SmartSpm
from repro.core.pipelined_array import PipelinedCmosSfqArray
from repro.cryomem.sram_array import JosephsonCmosSram
from repro.cryomem.technology import TABLE1
from repro.errors import ConfigError
from repro.sfq.constants import ERSFQ_1UM
from repro.systolic.energy import EnergyModel
from repro.systolic.memsys import (
    DramModel,
    HeterogeneousSpm,
    IdealSpm,
    MemorySystem,
    RandomSpm,
    ShiftSpm,
)
from repro.systolic.simulator import AcceleratorModel
from repro.units import GHZ, KB, MB, NS

#: SHIFT lanes clock in segments: only the active segment's DFFs pulse
#: on an advance.  A 4 KB clocked segment lands SuperNPU's SPM-dominated
#: energy profile (Figs 20/21); Fig 16's per-bank *access* energies use
#: the full lane, matching that figure's semantics.
SHIFT_ENERGY_SEGMENT_BYTES = 4 * KB

#: Average fraction of DFFs holding a 1 (only 1s dissipate in ERSFQ).
SHIFT_ACTIVITY = 0.5

#: Per-DFF pulse energy (paper Table 1).
SHIFT_CELL_ENERGY = 0.1e-15

#: ERSFQ matrix energy per MAC: 1.9 W at the 842 TMAC/s peak (Sec 5);
#: ERSFQ dissipation is activity-proportional, so this prices each MAC.
SFQ_MAC_ENERGY = 1.9 / 842e12

#: TPU average power (Sec 5, citing Jouppi 2017).
TPU_POWER = 40.0

SCHEMES = ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")

#: AQFP adiabatic logic clocks at a few GHz — an order below ERSFQ —
#: but switches at ~1e-20 J/op, two orders below the ERSFQ matrix
#: (Cai et al., the AQFP stochastic-computing DL accelerator).
AQFP_CLOCK = 5 * GHZ
AQFP_MAC_ENERGY = SFQ_MAC_ENERGY / 100.0

#: Fraction of MAC slots that carry a spike in the SFQ-SNN design
#: (Karamuftuoglu et al.): only spiking events dissipate, so the
#: effective energy per nominal MAC scales by the activity.
SNN_SPIKE_ACTIVITY = 0.25


def _shift_step_energy(lane_bytes: float) -> float:
    """Energy of one lane advance for a lane of ``lane_bytes``."""
    segment = min(lane_bytes, SHIFT_ENERGY_SEGMENT_BYTES)
    return segment * 8 * SHIFT_CELL_ENERGY * SHIFT_ACTIVITY


def _technology_random_spm(name: str, capacity: int, banks: int = 256,
                           write_latency: float | None = None) -> RandomSpm:
    """A non-pipelined RANDOM SPM for one Table 1 technology."""
    tech = TABLE1[name]
    read = tech.effective_read_latency
    write = write_latency if write_latency is not None else tech.write_latency
    return RandomSpm(
        capacity_bytes=capacity,
        banks=banks,
        read_latency=read,
        write_latency=write,
        issue_interval=read,
        line_bytes=16,
        pipelined=False,
    )


def make_tpu() -> AcceleratorModel:
    """The CMOS TPU baseline (Table 4)."""
    memsys = MemorySystem(
        scheme="ideal",
        dram=DramModel(),
        total_capacity=28 * MB,
        ideal=IdealSpm(capacity_bytes=28 * MB),
    )
    return AcceleratorModel(name="TPU", rows=256, cols=256,
                            frequency=0.7 * GHZ, memsys=memsys)


def make_supernpu() -> AcceleratorModel:
    """The SHIFT-based SFQ baseline (Table 4)."""
    memsys = MemorySystem(
        scheme="shift",
        dram=DramModel(),
        total_capacity=48 * MB + 128 * KB,
        shift=ShiftSpm(capacity_bytes=24 * MB, banks=64),
    )
    return AcceleratorModel(name="SuperNPU", rows=64, cols=256,
                            frequency=ERSFQ_1UM.clock_frequency,
                            memsys=memsys)


def make_smart(shift_kb: int = 32, random_mb: int = 28,
               prefetch_depth: int = 3,
               write_latency: float | None = None,
               name: str = "SMART") -> AcceleratorModel:
    """SMART with the Fig 22-25 sensitivity knobs.

    Args:
        shift_kb: per-operand SHIFT array capacity (Fig 22).
        random_mb: RANDOM array capacity (Fig 23).
        prefetch_depth: ILP prefetch lookahead a (Fig 24; 1 = none).
        write_latency: RANDOM write latency override (Fig 25), seconds.
    """
    array = PipelinedCmosSfqArray(capacity_bytes=random_mb * MB)
    spm = SmartSpm(shift_capacity=shift_kb * KB,
                   random=array, prefetch_depth=prefetch_depth)
    hetero = spm.as_hetero()
    if write_latency is not None:
        random = hetero.random
        random = RandomSpm(
            capacity_bytes=random.capacity_bytes,
            banks=random.banks,
            read_latency=random.read_latency,
            write_latency=write_latency,
            issue_interval=random.issue_interval,
            line_bytes=random.line_bytes,
            pipelined=write_latency <= 1 * NS,
        )
        hetero = HeterogeneousSpm(
            input_shift=hetero.input_shift,
            weight_shift=hetero.weight_shift,
            output_shift=hetero.output_shift,
            random=random,
            prefetch_depth=prefetch_depth,
        )
    memsys = MemorySystem(
        scheme="heterogeneous",
        dram=DramModel(),
        total_capacity=spm.total_capacity,
        hetero=hetero,
    )
    return AcceleratorModel(name=name, rows=64, cols=256,
                            frequency=ERSFQ_1UM.clock_frequency,
                            memsys=memsys)


def make_accelerator(scheme: str, technology: str = "SRAM",
                     prefetch_depth: int | None = None) -> AcceleratorModel:
    """Build any evaluation scheme.

    Args:
        scheme: one of SCHEMES, or "TPU", or "hX" heterogeneous variants
            via scheme="Heter" with ``technology`` in Table 1, or
            homogeneous technology replacements via scheme="homogeneous",
            or the alternative superconductor backends "AQFP" /
            "SNN" (PAPERS.md cost models the geo tier uses for
            per-region accelerator diversity).
        technology: Table 1 technology for SRAM/Heter/homogeneous.
        prefetch_depth: override the scheme's prefetch lookahead
            (enables the hVTM+p configuration of Fig 7).
    """
    if scheme == "TPU":
        return make_tpu()
    if scheme == "SHIFT":
        return make_supernpu()
    if scheme == "AQFP":
        # SMART's memory system on an adiabatic AQFP matrix: the slow
        # multi-phase AC clock costs throughput, the near-reversible
        # switching wins energy by two orders.
        return replace(make_smart(name="AQFP"), frequency=AQFP_CLOCK)
    if scheme == "SNN":
        # The high-fan-in SFQ spiking design: ERSFQ-speed clock over a
        # quarter-size neuron array, sparse spike-driven dissipation.
        return replace(make_smart(name="SNN"), rows=32, cols=128)
    if scheme == "homogeneous":
        random = _technology_random_spm(technology, 28 * MB)
        memsys = MemorySystem(
            scheme="homogeneous", dram=DramModel(),
            total_capacity=28 * MB, random=random,
        )
        return AcceleratorModel(name=f"homo-{technology}", rows=64,
                                cols=256,
                                frequency=ERSFQ_1UM.clock_frequency,
                                memsys=memsys)
    if scheme == "SRAM":
        random = _technology_random_spm("SRAM", 28 * MB)
        memsys = MemorySystem(
            scheme="homogeneous", dram=DramModel(),
            total_capacity=28 * MB, random=random,
        )
        return AcceleratorModel(name="SRAM", rows=64, cols=256,
                                frequency=ERSFQ_1UM.clock_frequency,
                                memsys=memsys)
    if scheme == "Heter":
        depth = prefetch_depth if prefetch_depth is not None else 1
        shift = ShiftSpm(capacity_bytes=32 * KB, banks=256)
        hetero = HeterogeneousSpm(
            input_shift=shift, weight_shift=shift, output_shift=shift,
            random=_technology_random_spm(technology, 28 * MB),
            prefetch_depth=depth,
        )
        memsys = MemorySystem(
            scheme="heterogeneous", dram=DramModel(),
            total_capacity=28 * MB + 96 * KB, hetero=hetero,
        )
        return AcceleratorModel(name=f"h{technology}", rows=64, cols=256,
                                frequency=ERSFQ_1UM.clock_frequency,
                                memsys=memsys)
    if scheme == "Pipe":
        return make_smart(prefetch_depth=1, name="Pipe")
    if scheme == "SMART":
        depth = prefetch_depth if prefetch_depth is not None else 3
        return make_smart(prefetch_depth=depth)
    raise ConfigError(f"unknown scheme '{scheme}'")


def make_energy_model(accelerator: AcceleratorModel) -> EnergyModel:
    """The energy coefficients matching one accelerator configuration."""
    name = accelerator.name
    if name == "TPU":
        return EnergyModel(
            mac_energy=0.0, idle_power=TPU_POWER,
            shift_step_energy=0.0, random_access_energy=0.0,
            spm_leakage=0.0, cooled=False,
        )
    if name == "SuperNPU":
        lane_bytes = 24 * MB / 64
        return EnergyModel(
            mac_energy=SFQ_MAC_ENERGY, idle_power=0.0,
            shift_step_energy=_shift_step_energy(lane_bytes),
            random_access_energy=0.0, spm_leakage=0.0, cooled=True,
        )
    if name in ("SRAM", "homo-SRAM") or name.startswith("homo-"):
        tech = name.split("-")[-1] if "-" in name else "SRAM"
        array = JosephsonCmosSram(28 * MB)
        access = (array.access_energy if tech == "SRAM"
                  else TABLE1[tech].read_energy * 16)
        leak = array.leakage_power if tech == "SRAM" else 2.3e-3
        return EnergyModel(
            mac_energy=SFQ_MAC_ENERGY, idle_power=0.0,
            shift_step_energy=0.0,
            random_access_energy=access,
            spm_leakage=leak, cooled=True,
        )
    if name == "AQFP":
        array = PipelinedCmosSfqArray()
        return EnergyModel(
            mac_energy=AQFP_MAC_ENERGY, idle_power=0.0,
            shift_step_energy=_shift_step_energy(128),
            random_access_energy=array.access_energy,
            spm_leakage=array.leakage_power, cooled=True,
        )
    if name == "SNN":
        array = PipelinedCmosSfqArray()
        return EnergyModel(
            mac_energy=SFQ_MAC_ENERGY * SNN_SPIKE_ACTIVITY,
            idle_power=0.0,
            shift_step_energy=_shift_step_energy(128),
            random_access_energy=array.access_energy,
            spm_leakage=array.leakage_power, cooled=True,
        )
    if name.startswith("h"):  # heterogeneous hVTM/hSRAM/hMRAM/hSNM
        tech = name[1:]
        array = JosephsonCmosSram(28 * MB)
        access = (array.access_energy if tech == "SRAM"
                  else TABLE1[tech].read_energy * 16)
        leak = array.leakage_power if tech == "SRAM" else 2.3e-3
        return EnergyModel(
            mac_energy=SFQ_MAC_ENERGY, idle_power=0.0,
            shift_step_energy=_shift_step_energy(128),
            random_access_energy=access,
            spm_leakage=leak, cooled=True,
        )
    # Pipe / SMART and sensitivity variants
    array = PipelinedCmosSfqArray()
    return EnergyModel(
        mac_energy=SFQ_MAC_ENERGY, idle_power=0.0,
        shift_step_energy=_shift_step_energy(128),
        random_access_energy=array.access_energy,
        spm_leakage=array.leakage_power, cooled=True,
    )
