"""Pipeline design-space exploration (paper Sec 4.2.4 / Fig 14).

Sweeping the target pipeline frequency of the CMOS-SFQ array trades:

- **leakage**: higher frequency needs smaller sub-bank MATs (more CMOS
  periphery) and more H-tree repeaters (more biased drivers);
- **access energy**: more pipeline components switch per access;
- **area**: extra periphery and repeaters.

The frequency axis tops out at 1 / 103.02 ps = 9.71 GHz: the nTron
conversion is one indivisible stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipelined_array import PipelinedCmosSfqArray
from repro.errors import ConfigError
from repro.sfq.constants import TABLE2_COMPONENTS
from repro.units import GHZ, MB


#: The nTron-imposed frequency ceiling (Hz): ~9.71 GHz.
MAX_PIPELINE_FREQUENCY = 1.0 / TABLE2_COMPONENTS["ntron"].latency


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated pipeline configuration.

    Attributes:
        frequency: pipeline frequency (Hz).
        subbank_mats: MAT count each sub-bank needed.
        htree_repeaters: repeater pairs inserted per H-tree bit lane.
        leakage_power: array standby power (W).
        access_energy: energy per line access (J).
        area: array area (m^2).
        access_latency: pipelined access latency (s).
    """

    frequency: float
    subbank_mats: int
    htree_repeaters: int
    leakage_power: float
    access_energy: float
    area: float
    access_latency: float


#: The default Fig 14 frequency sweep.
DEFAULT_FREQUENCIES = (
    0.5 * GHZ, 1 * GHZ, 2 * GHZ, 4 * GHZ, 6 * GHZ, 8 * GHZ,
    MAX_PIPELINE_FREQUENCY,
)


def evaluate_design_point(frequency: float,
                          capacity_bytes: int = 28 * MB,
                          banks: int = 256) -> DesignPoint:
    """Evaluate the array at one target pipeline frequency.

    A module-level function so the runtime's process pool can ship it
    to workers.

    Raises:
        ConfigError: if the frequency exceeds the nTron ceiling.
    """
    if frequency > MAX_PIPELINE_FREQUENCY * (1 + 1e-9):
        raise ConfigError(
            f"{frequency:.3g} Hz exceeds the nTron ceiling "
            f"{MAX_PIPELINE_FREQUENCY:.3g} Hz"
        )
    array = PipelinedCmosSfqArray(
        capacity_bytes=capacity_bytes,
        banks=banks,
        stage_time=1.0 / frequency,
    )
    return DesignPoint(
        frequency=frequency,
        subbank_mats=array.subbank.mats,
        htree_repeaters=array.htree.repeater_count,
        leakage_power=array.leakage_power,
        access_energy=array.access_energy,
        area=array.area,
        access_latency=array.access_latency,
    )


def explore_design_space(
    frequencies: tuple[float, ...] = DEFAULT_FREQUENCIES,
    capacity_bytes: int = 28 * MB,
    banks: int = 256,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[DesignPoint]:
    """Evaluate the array at each target pipeline frequency.

    With ``parallel=True`` the points are evaluated concurrently
    through the runtime's process pool (results keep frequency order).

    Raises:
        ConfigError: if a requested frequency exceeds the nTron ceiling.
    """
    argtuples = [(freq, capacity_bytes, banks) for freq in frequencies]
    if parallel and len(argtuples) > 1:
        from repro.runtime.executor import parallel_map
        return parallel_map(evaluate_design_point, argtuples,
                            mode="process", max_workers=max_workers)
    return [evaluate_design_point(*args) for args in argtuples]
