"""SMART's heterogeneous SPM assembly (paper Sec 4.1 / 4.4).

Three small SHIFT arrays (inputs, outputs/PSums, weights — 32 KB x 256
banks each in Table 4) stream sequential data at full systolic rate; one
shared pipelined CMOS-SFQ RANDOM array (28 MB, 256 banks, 0.103 ns
stage) holds everything and serves the random traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.pipelined_array import PipelinedCmosSfqArray
from repro.cryomem.shift_array import ShiftArray
from repro.errors import ConfigError
from repro.sfq.constants import SCALED_28NM, SfqProcess
from repro.systolic.memsys import HeterogeneousSpm, ShiftSpm
from repro.units import KB


@dataclass(frozen=True)
class SmartSpm:
    """The full SMART SPM: three SHIFT arrays + one RANDOM array.

    Attributes:
        shift_capacity: capacity of each SHIFT array (bytes).
        shift_banks: lanes per SHIFT array.
        random: the pipelined CMOS-SFQ array.
        prefetch_depth: ILP prefetch lookahead ``a``.
        area_process: SFQ process used for area accounting (the paper
            scales JJs to 28 nm for area comparisons).
    """

    shift_capacity: int = 32 * KB
    shift_banks: int = 256
    random: PipelinedCmosSfqArray = field(
        default_factory=PipelinedCmosSfqArray
    )
    prefetch_depth: int = 3
    area_process: SfqProcess = field(default=SCALED_28NM)

    def __post_init__(self) -> None:
        if self.shift_capacity <= 0:
            raise ConfigError("SHIFT capacity must be positive")

    @property
    def total_capacity(self) -> int:
        """Aggregate SPM capacity (bytes)."""
        return 3 * self.shift_capacity + self.random.capacity_bytes

    @cached_property
    def shift_arrays(self) -> dict[str, ShiftArray]:
        """The physical SHIFT arrays, for area/energy accounting."""
        return {
            name: ShiftArray(self.shift_capacity, banks=self.shift_banks,
                             process=self.area_process)
            for name in ("inputs", "outputs", "weights")
        }

    def as_hetero(self) -> HeterogeneousSpm:
        """The timing view the systolic simulator consumes."""
        def shift_view() -> ShiftSpm:
            return ShiftSpm(capacity_bytes=self.shift_capacity,
                            banks=self.shift_banks)

        return HeterogeneousSpm(
            input_shift=shift_view(),
            weight_shift=shift_view(),
            output_shift=shift_view(),
            random=self.random.as_random_spm(),
            prefetch_depth=self.prefetch_depth,
        )

    @property
    def shift_area(self) -> float:
        """Area of the three SHIFT arrays (m^2, 28 nm-scaled JJs)."""
        return sum(a.area for a in self.shift_arrays.values())

    @property
    def area(self) -> float:
        """Total SPM area (m^2)."""
        return self.shift_area + self.random.area

    @property
    def leakage_power(self) -> float:
        """SPM standby power (W) — the RANDOM array only."""
        return self.random.leakage_power
