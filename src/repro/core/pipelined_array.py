"""The pipelined CMOS-SFQ RANDOM array (paper Sec 4.2, Figs 10/11).

CMOS sub-banks (SRAM cells + CMOS peripherals — no SFQ decoders) are
connected by SFQ H-trees built from PTLs and splitter units.  The access
path pipeline is:

    request SFQ H-tree (m stages) -> nTron SFQ->CMOS (1 stage) ->
    CMOS sub-bank (1 stage) -> DC/SFQ CMOS->SFQ (1 stage) ->
    reply SFQ H-tree (m stages)

The nTron's 103.02 ps conversion cannot be split, so it sets the stage
time and the maximum pipeline frequency of ~9.7 GHz (Sec 4.2.4).  The
sub-bank MAT count is raised until its access fits one stage; the
H-trees get repeaters until every segment sustains the stage rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.cryomem.mosfet import CryoMosfet
from repro.cryomem.subbank import CmosSubbank, subbank_for_stage_time
from repro.errors import ConfigError
from repro.sfq.cells import DCSFQConverter, NTron
from repro.sfq.constants import ERSFQ_1UM, TABLE2_COMPONENTS, SfqProcess
from repro.sfq.htree import SfqHTree
from repro.systolic.memsys import RandomSpm
from repro.units import MB


@dataclass(frozen=True)
class PipelinedCmosSfqArray:
    """A banked CMOS-SFQ array pipelined at the nTron stage time.

    Attributes:
        capacity_bytes: total capacity (28 MB in Table 4).
        banks: CMOS sub-banks (256 in Table 4).
        line_bytes: bytes per access.
        mosfet: cryogenic CMOS operating point.
        process: SFQ process for the H-trees and converters.
        stage_time: pipeline stage period (s); defaults to the nTron
            latency, the unbreakable bottleneck.
    """

    capacity_bytes: int = 28 * MB
    banks: int = 256
    line_bytes: int = 128
    mosfet: CryoMosfet = field(default_factory=CryoMosfet)
    process: SfqProcess = field(default=ERSFQ_1UM)
    stage_time: float = TABLE2_COMPONENTS["ntron"].latency

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.banks < 1:
            raise ConfigError("array needs positive capacity and banks")
        if self.stage_time < TABLE2_COMPONENTS["ntron"].latency:
            raise ConfigError(
                "stage time cannot beat the nTron conversion latency"
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @cached_property
    def subbank(self) -> CmosSubbank:
        """Per-bank CMOS sub-bank sized to fit one pipeline stage."""
        return subbank_for_stage_time(
            self.capacity_bytes // self.banks,
            self.stage_time,
            self.mosfet,
            line_bytes=self.line_bytes,
        )

    @property
    def array_side(self) -> float:
        """Side of the square array footprint (m)."""
        return math.sqrt(self.banks) * self.subbank.side

    @cached_property
    def htree(self) -> SfqHTree:
        """The request SFQ H-tree (the reply tree mirrors it)."""
        return SfqHTree(
            banks=self.banks,
            array_side=self.array_side,
            bus_width=8 + 32,  # serialized data byte lanes + address/ctl
            target_frequency=1.0 / self.stage_time,
            process=self.process,
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def pipeline_frequency(self) -> float:
        """Sustained request rate (Hz): ~9.7 GHz at the nTron stage."""
        return 1.0 / self.stage_time

    @property
    def pipeline_stages(self) -> int:
        """Total pipeline depth of one access."""
        return 2 * self.htree.pipeline_stages + 3  # ntron, bank, dcsfq

    @property
    def access_latency(self) -> float:
        """Full (pipelined) random access latency (s)."""
        return self.pipeline_stages * self.stage_time

    @property
    def issue_interval(self) -> float:
        """Initiation interval: one line per stage time (s)."""
        return self.stage_time

    @property
    def byte_interval(self) -> float:
        """Per-byte service time of one bank (s): Table 4's 0.11 ns."""
        return self.stage_time

    # ------------------------------------------------------------------
    # Energy / power / area
    # ------------------------------------------------------------------
    @property
    def access_energy(self) -> float:
        """Dynamic energy of one line access (J)."""
        ntron = NTron(self.process)
        dcsfq = DCSFQConverter(self.process)
        return (
            self.htree.energy_per_access(broadcast=True)
            + self.htree.energy_per_access(broadcast=False)
            + self.subbank.access_energy
            + ntron.dynamic_energy_per_pulse
            + dcsfq.dynamic_energy_per_pulse * self.line_bytes * 8
        )

    @property
    def leakage_power(self) -> float:
        """Standby power (W): Sec 4.4 quotes ~102 mW for 28 MB."""
        subbanks = self.banks * self.subbank.leakage_power
        ntrons = self.banks * NTron(self.process).leakage_power
        dcsfq = self.banks * DCSFQConverter(self.process).leakage_power
        return subbanks + 2 * self.htree.leakage_power + ntrons + dcsfq

    @property
    def area(self) -> float:
        """Total area (m^2): CMOS banks + SFQ H-trees + converters."""
        converters = self.banks * (
            NTron(self.process).area_f2 + DCSFQConverter(self.process).area_f2
        ) * self.process.jj_diameter**2
        return (self.banks * self.subbank.area + 2 * self.htree.area
                + converters)

    # ------------------------------------------------------------------
    # Adapters
    # ------------------------------------------------------------------
    def as_random_spm(self) -> RandomSpm:
        """The timing view the systolic simulator consumes."""
        return RandomSpm(
            capacity_bytes=self.capacity_bytes,
            banks=self.banks,
            read_latency=self.access_latency,
            write_latency=self.access_latency,
            issue_interval=self.issue_interval,
            line_bytes=self.line_bytes,
            pipelined=True,
        )
