"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                  # show available experiments
    python -m repro fig18                 # reproduce Fig 18
    python -m repro fig7 fig24 tab1       # several at once (parallel)
    python -m repro all                   # everything (cached+parallel)
    python -m repro sweep design_space --param frequency=0.5,1,2,4
    python -m repro serve-sim             # serving percentiles, all scenarios
    python -m repro serve-sim bursty --policy fixed --replicas 4
    python -m repro serve-sim diurnal --autoscale 1:8   # scale on queue depth
    python -m repro serve-sim diurnal --scale holt --slo 2000  # predictive
    python -m repro serve-sim overload --slo 1500 --shed 64   # SLO + shedding
    python -m repro serve-sim steady --fail 2 --replicas 3    # outage storm
    python -m repro serve-sim hot-model --flush edf --priority ResNet50=1
    python -m repro serve-sim bursty --steal --dispatch round_robin
    python -m repro serve-sim failure-storm --slo 3000 --resilience hedge
    python -m repro serve-sim bursty --slo 2000 --resilience retry:budget=1
    python -m repro serve-sim --persist-memo    # warm layer memo across runs
    python -m repro serve-sim bursty --trace out.jsonl  # telemetry trace
    python -m repro serve-sim steady --shards 4 --replicas 4 --requests 1000000
    python -m repro report                # fleet dashboard -> HTML
    python -m repro report --json         # ... or the report as JSON
    python -m repro report --rows grid.json --trace out.jsonl -o fleet.html
    python -m repro runs                  # recent runs from the ledger
    python -m repro cache                 # result-cache statistics
    python -m repro cache clear           # drop every cached result

Flags (anywhere on the line)::

    --json         machine-readable rows instead of tables
    --serial       run jobs inline instead of a worker pool
    --no-cache     bypass the content-addressed result cache
    --workers N    worker-pool width
    --limit N      how many ledger rows ``runs`` shows (default 20)
    --job-timeout S  per-job wall-clock bound; a hung job becomes a
                     per-job error instead of wedging the batch
"""

from __future__ import annotations

import ast
import json
import os
import sys
from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from repro.errors import ConfigError
from repro.eval import report
from repro.runtime import Job, ResultCache, RunStore, Runtime, Sweep
from repro.runtime import registry


def _figure_experiments() -> dict:
    """CLI name -> (callable, description), paper figures only."""
    return {e.name: (e.func, e.description)
            for e in registry.all_experiments() if e.figure}


#: Experiment registry view: CLI name -> (callable, description).
EXPERIMENTS = _figure_experiments()


@dataclass
class CliOptions:
    """Flags shared by every subcommand."""

    as_json: bool = False
    serial: bool = False
    no_cache: bool = False
    workers: Optional[int] = None
    limit: int = 20
    job_timeout: Optional[float] = None


def _parse_flags(argv: list[str]) -> tuple[CliOptions, list[str]]:
    """Split flags out of ``argv``; raises ConfigError on bad usage."""
    opts = CliOptions()
    args: list[str] = []
    i = 0
    while i < len(argv):
        token = argv[i]
        if token == "--json":
            opts.as_json = True
        elif token == "--serial":
            opts.serial = True
        elif token == "--no-cache":
            opts.no_cache = True
        elif token.partition("=")[0] == "--job-timeout":
            name, eq, value = token.partition("=")
            if not eq:
                i += 1
                if i >= len(argv):
                    raise ConfigError("--job-timeout needs seconds")
                value = argv[i]
            try:
                seconds = float(value)
            except ValueError:
                raise ConfigError(
                    f"--job-timeout needs seconds, got {value!r}"
                ) from None
            if seconds <= 0:
                raise ConfigError("--job-timeout must be positive")
            opts.job_timeout = seconds
        elif token.partition("=")[0] in ("--workers", "--limit"):
            name, eq, value = token.partition("=")
            if eq and not value:
                raise ConfigError(f"{name} needs a number")
            if not eq:
                i += 1
                if i >= len(argv):
                    raise ConfigError(f"{name} needs a number")
                value = argv[i]
            try:
                number = int(value)
            except ValueError:
                raise ConfigError(f"{name} needs a number, got {value!r}")
            if number < 1:
                raise ConfigError(f"{name} must be >= 1")
            if name == "--workers":
                opts.workers = number
            else:
                opts.limit = number
        else:
            args.append(token)
        i += 1
    return opts, args


def _make_runtime(opts: CliOptions) -> Runtime:
    return Runtime(mode="inline" if opts.serial else "auto",
                   max_workers=opts.workers,
                   use_cache=not opts.no_cache,
                   job_timeout=opts.job_timeout)


def run(name: str) -> None:
    """Run one experiment serially and print its table."""
    experiment = registry.get(name)
    print(f"\n=== {name}: {experiment.description} ===")
    print(report.render_rows(experiment.func()))


def _print_results(results, opts: CliOptions) -> None:
    if opts.as_json:
        print(report.to_json([{
            "experiment": r.job.experiment,
            "params": dict(r.job.params),
            "cached": r.cached,
            "elapsed_s": r.elapsed_s,
            "error": r.error,
            "rows": r.rows,
        } for r in results]))
        return
    for r in results:
        experiment = registry.get(r.job.experiment)
        suffix = " [cached]" if r.cached else ""
        print(f"\n=== {r.job.label}: {experiment.description}{suffix} ===")
        if r.error:
            print(f"ERROR: {r.error}")
        else:
            print(report.render_rows(r.rows))


def _print_summary(runtime: Runtime) -> None:
    s = runtime.last_summary
    print(f"\n{s.jobs} job(s) in {s.wall_s:.2f}s wall "
          f"({s.cache_hits} cache hit(s), {s.executed} executed, "
          f"{s.errors} error(s))")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_list() -> int:
    print(__doc__)
    experiments = registry.all_experiments()
    width = max(len(e.name) for e in experiments)
    for e in experiments:
        if e.figure:
            print(f"  {e.name.ljust(width)}  {e.description}")
    print("\nsweep targets:")
    for e in experiments:
        if not e.figure:
            print(f"  {e.name.ljust(width)}  {e.description}")
    return 0


def _cmd_run(names: list[str], opts: CliOptions) -> int:
    if names == ["all"]:
        names = [e.name for e in registry.all_experiments() if e.figure]
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'")
        return 2
    runtime = _make_runtime(opts)
    results = runtime.run_jobs([Job(n) for n in names])
    _print_results(results, opts)
    if len(results) > 1 and not opts.as_json:
        _print_summary(runtime)
    return 1 if any(r.error for r in results) else 0


def _split_values(raw: str) -> list[str]:
    """Split on commas outside brackets, so ``(16,32),(64,128)`` works."""
    chunks, depth, current = [], 0, []
    for char in raw:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    chunks.append("".join(current))
    return chunks


def _parse_param(token: str) -> tuple[str, list]:
    name, eq, raw = token.partition("=")
    if not eq or not name or not raw:
        raise ConfigError(f"bad --param {token!r}; expected name=v1,v2,...")
    values = []
    for chunk in _split_values(raw):
        try:
            values.append(ast.literal_eval(chunk))
        except (ValueError, SyntaxError):
            values.append(chunk)
    return name, values


def _cmd_sweep(args: list[str], opts: CliOptions) -> int:
    if not args:
        print("usage: python -m repro sweep <experiment> "
              "--param name=v1,v2,... [--param ...]")
        return 2
    name, rest = args[0], args[1:]
    grid = {}
    i = 0
    try:
        while i < len(rest):
            if rest[i] != "--param":
                raise ConfigError(f"unexpected argument {rest[i]!r}")
            if i + 1 >= len(rest):
                raise ConfigError("--param needs name=v1,v2,...")
            axis, values = _parse_param(rest[i + 1])
            grid[axis] = values
            i += 2
        sweep = Sweep(name, grid=grid)
        runtime = _make_runtime(opts)
        results = runtime.run_sweep(sweep)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
    _print_results(results, opts)
    if not opts.as_json:
        _print_summary(runtime)
    return 1 if any(r.error for r in results) else 0


def _cmd_serve_sim(args: list[str], opts: CliOptions) -> int:
    """Serve simulated request traffic and print percentile rows."""
    from repro.models import model_names
    from repro.serving import (LayerMemoCache, POLICIES, Telemetry,
                               get_scenario)
    from repro.serving.experiments import (make_slo, parse_autoscale,
                                           parse_priorities,
                                           serving_grid)
    from repro.serving.memo import (load_persistent_memo,
                                    store_persistent_memo)
    from repro.serving.policies import (make_flush, make_resilience,
                                        make_scale)
    from repro.serving.sharding import validate_sharding
    from repro.serving.simulator import DISPATCH_STRATEGIES

    scenarios: list[str] = []
    policies = list(POLICIES)
    requests, replicas, batch_size, seed = 2000, 2, 8, 7
    accelerator, dispatch = "SMART", "round_robin"
    slo_us, shed_depth, autoscale, faults = 0.0, 0, "", 0
    flush, scale, steal, persist_memo = "fifo", "", False, False
    resilience = ""
    trace_path = ""
    shards, dispatch_given = 1, False
    replicas_given, accelerator_given = False, False
    geo_raw, geo_policy, topology, storms = "", "home", "mesh", 0
    priority_specs: list[str] = []
    try:
        i = 0
        while i < len(args):
            token = args[i]
            if token in ("--requests", "--replicas", "--batch-size",
                         "--seed", "--shed", "--fail", "--shards",
                         "--geo-storms"):
                if i + 1 >= len(args):
                    raise ConfigError(f"{token} needs a value")
                try:
                    value = int(args[i + 1])
                except ValueError:
                    raise ConfigError(
                        f"{token} needs a number, got {args[i + 1]!r}"
                    ) from None
                if (token not in ("--seed", "--fail", "--geo-storms")
                        and value < 1):
                    raise ConfigError(f"{token} must be >= 1")
                if token in ("--fail", "--geo-storms") and value < 0:
                    raise ConfigError(f"{token} must be >= 0")
                if token == "--requests":
                    requests = value
                elif token == "--replicas":
                    replicas = value
                    replicas_given = True
                elif token == "--batch-size":
                    batch_size = value
                elif token == "--shed":
                    shed_depth = value
                elif token == "--fail":
                    faults = value
                elif token == "--shards":
                    shards = value
                elif token == "--geo-storms":
                    storms = value
                else:
                    seed = value
                i += 2
            elif token == "--slo":
                if i + 1 >= len(args):
                    raise ConfigError("--slo needs a value")
                try:
                    slo_us = float(args[i + 1])
                except ValueError:
                    raise ConfigError(
                        f"--slo needs microseconds, got {args[i + 1]!r}"
                    ) from None
                if slo_us <= 0:
                    raise ConfigError("--slo must be positive")
                i += 2
            elif token == "--autoscale":
                if i + 1 >= len(args):
                    raise ConfigError("--autoscale needs MIN:MAX")
                autoscale = args[i + 1]
                parse_autoscale(autoscale)  # validate the spec early
                i += 2
            elif token == "--flush":
                if i + 1 >= len(args):
                    raise ConfigError("--flush needs a policy name "
                                      "(fifo or edf)")
                flush = args[i + 1]
                i += 2
            elif token == "--scale":
                if i + 1 >= len(args):
                    raise ConfigError("--scale needs a policy name "
                                      "(reactive, ewma or holt)")
                scale = args[i + 1]
                i += 2
            elif token == "--priority":
                if i + 1 >= len(args):
                    raise ConfigError("--priority needs model=N")
                priority_specs.append(args[i + 1])
                i += 2
            elif token == "--resilience":
                if i + 1 >= len(args):
                    raise ConfigError(
                        "--resilience needs a policy spec (none, "
                        "retry, hedge or degrade, with optional "
                        "name:key=value,... options)")
                resilience = args[i + 1]
                make_resilience(resilience)  # fail fast on a bad spec
                i += 2
            elif token == "--trace":
                if i + 1 >= len(args):
                    raise ConfigError("--trace needs an output path")
                trace_path = args[i + 1]
                i += 2
            elif token == "--geo":
                if i + 1 >= len(args):
                    raise ConfigError("--geo needs a region count or "
                                      "comma-separated stock region "
                                      "names")
                geo_raw = args[i + 1]
                i += 2
            elif token == "--geo-policy":
                if i + 1 >= len(args):
                    from repro.serving.policies import GEO_POLICIES
                    raise ConfigError(
                        "--geo-policy needs a name; known: "
                        f"{', '.join(GEO_POLICIES)}"
                    )
                geo_policy = args[i + 1]
                i += 2
            elif token == "--topology":
                if i + 1 >= len(args):
                    from repro.serving.interconnect import TOPOLOGIES
                    raise ConfigError(
                        "--topology needs a name; known: "
                        f"{', '.join(TOPOLOGIES)}"
                    )
                topology = args[i + 1]
                i += 2
            elif token == "--steal":
                steal = True
                i += 1
            elif token == "--persist-memo":
                persist_memo = True
                i += 1
            elif token in ("--policy", "--accelerator", "--dispatch"):
                if i + 1 >= len(args):
                    raise ConfigError(f"{token} needs a value")
                value = args[i + 1]
                if token == "--policy":
                    policies = value.split(",")
                    for name in policies:
                        if name not in POLICIES:
                            raise ConfigError(
                                f"unknown batching policy '{name}'; "
                                f"known: {', '.join(POLICIES)}"
                            )
                elif token == "--dispatch":
                    if value not in DISPATCH_STRATEGIES:
                        raise ConfigError(
                            f"unknown dispatch '{value}'; known: "
                            f"{', '.join(DISPATCH_STRATEGIES)}"
                        )
                    dispatch = value
                    dispatch_given = True
                else:
                    accelerator = value
                    accelerator_given = True
                i += 2
            elif token.startswith("-"):
                raise ConfigError(f"unknown serve-sim flag {token!r}")
            else:
                scenarios.append(token)
                i += 1
        from repro.core import make_accelerator
        make_accelerator(accelerator)  # validate before the grid runs
        res_policy = make_resilience(resilience)
        if res_policy is not None:
            # fail fast when the spec carries no deadline and there is
            # no SLO target to inherit one from
            res_policy.timeout_s(make_slo(slo_us, shed_depth))
        else:
            make_slo(slo_us, shed_depth)
        priority = ",".join(priority_specs)
        priorities = parse_priorities(priority)
        for model in priorities:
            if model not in model_names():
                raise ConfigError(
                    f"unknown model '{model}' in --priority; known: "
                    f"{', '.join(model_names())}"
                )
        make_flush(flush, priorities or None)  # validate the pair
        if scale:
            make_scale(scale, parse_autoscale(autoscale))
        for name in scenarios:
            get_scenario(name)
        geo_regions: tuple = ()
        if geo_raw:
            from repro.serving.geo import (STOCK_REGIONS,
                                           default_regions,
                                           validate_geo)
            try:
                geo_regions = default_regions(int(geo_raw))
            except ValueError:
                stock = {spec.name: spec for spec in STOCK_REGIONS}
                unknown = [n for n in geo_raw.split(",")
                           if n not in stock]
                if unknown:
                    raise ConfigError(
                        f"unknown region(s) {', '.join(unknown)}; "
                        f"stock regions: {', '.join(stock)}"
                    ) from None
                geo_regions = tuple(stock[n]
                                    for n in geo_raw.split(","))
            validate_geo(geo_regions, geo=geo_policy,
                         topology=topology, storms=storms)
            if shards > 1:
                raise ConfigError(
                    "cannot combine --geo with --shards: regions "
                    "already fan across worker processes"
                )
            if replicas_given or accelerator_given:
                raise ConfigError(
                    "--geo regions carry their own accelerator and "
                    "replica counts; drop --replicas/--accelerator"
                )
            if faults:
                raise ConfigError(
                    "--fail is not plumbed through --geo; use "
                    "--geo-storms for region-granularity outages or a "
                    "fault-carrying scenario (failure-storm)"
                )
            if (shed_depth or autoscale or scale or steal
                    or flush != "fifo" or priority_specs):
                raise ConfigError(
                    "--geo supports --policy/--dispatch/--slo/"
                    "--resilience/--trace/--persist-memo riders only; "
                    "shed, autoscale, scale, steal, flush and "
                    "priority are not plumbed through region engines"
                )
        elif geo_policy != "home" or topology != "mesh" or storms:
            raise ConfigError(
                "--geo-policy/--topology/--geo-storms need --geo"
            )
        if shards > 1:
            # a bare --shards N implies the shard-stable dispatch;
            # an explicit conflicting one is rejected below
            if not dispatch_given:
                dispatch = "shard"
            if flush != "fifo" or priority_specs:
                raise ConfigError(
                    "sharded runs use the default fifo flush; priority "
                    "flush queues are not plumbed across worker shards"
                )
            validate_sharding(shards, replicas=replicas,
                              dispatch=dispatch, autoscale=autoscale,
                              scale=scale, steal=steal, shed=shed_depth,
                              fail=faults, scenarios=scenarios,
                              resilience=resilience)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2

    if geo_regions:
        return _serve_sim_geo(
            opts, scenarios=scenarios, policies=policies,
            requests=requests, batch_size=batch_size, seed=seed,
            dispatch=dispatch, slo_us=slo_us, regions=geo_regions,
            geo_policy=geo_policy, topology=topology, storms=storms,
            trace_path=trace_path, resilience=resilience,
            persist_memo=persist_memo,
        )
    if shards > 1:
        return _serve_sim_sharded(
            opts, scenarios=scenarios, policies=policies,
            requests=requests, replicas=replicas,
            batch_size=batch_size, seed=seed, accelerator=accelerator,
            dispatch=dispatch, slo_us=slo_us, shards=shards,
            trace_path=trace_path, resilience=resilience,
            persist_memo=persist_memo,
        )

    cache = LayerMemoCache()
    memo_store = ResultCache() if persist_memo else None
    loaded = (load_persistent_memo(cache, memo_store)
              if persist_memo else 0)
    # 200us matches the autoscaler's default control-loop interval, so
    # a traced run without --scale still gets a metrics timeline
    telemetry = Telemetry(tick=200e-6) if trace_path else None
    rows = serving_grid(
        requests=requests, accelerator=accelerator, replicas=replicas,
        batch_size=batch_size, dispatch=dispatch, seed=seed,
        scenarios=scenarios or None, policies=policies, cache=cache,
        slo_us=slo_us, shed_depth=shed_depth, autoscale=autoscale,
        faults=faults, flush=flush, priority=priority, scale=scale,
        steal=steal, telemetry=telemetry, resilience=resilience,
    )
    stored = (store_persistent_memo(cache, memo_store)
              if persist_memo else 0)
    if telemetry is not None:
        telemetry.save(trace_path)
    if opts.as_json:
        print(report.to_json(rows))
        return 0
    extras = "".join(
        part for part, on in (
            (f", slo {slo_us:g}us", slo_us),
            (f", shed@{shed_depth}", shed_depth),
            (f", autoscale {autoscale}", autoscale),
            (f", scale {scale}", scale),
            (f", flush {flush}", flush != "fifo"),
            (", stealing", steal),
            (f", {faults} fault(s)", faults),
            (f", resilience {resilience}",
             resilience and resilience != "none"),
        ) if on
    )
    print(f"\n=== serve-sim: {accelerator} x{replicas} "
          f"({dispatch}), {requests} requests/scenario{extras} ===")
    print(report.render_rows(rows))
    if persist_memo and loaded and not len(cache):
        # a fully warm start: every lookup came from persisted totals,
        # so the layer-level memo never saw a single simulation
        print(f"\nlayer-memo: warm start, every lookup served from "
              f"the persisted pool ({cache.stats.hit_rate:.1%} hit "
              f"rate, 0 layer simulations)")
    else:
        print(f"\nlayer-memo: {len(cache)} distinct layer x batch "
              f"results, {cache.stats.hit_rate:.1%} hit rate")
    if persist_memo:
        print(f"persisted memo: {loaded} totals loaded, "
              f"{stored} stored")
    if telemetry is not None:
        print(f"telemetry trace: {trace_path} "
              f"({telemetry.counters['runs']} run(s), "
              f"{len(telemetry.rows)} row(s))")
    return 0


def _serve_sim_sharded(opts: CliOptions, *, scenarios: list[str],
                       policies: list[str], requests: int,
                       replicas: int, batch_size: int, seed: int,
                       accelerator: str, dispatch: str, slo_us: float,
                       shards: int, trace_path: str,
                       resilience: str = "",
                       persist_memo: bool = False) -> int:
    """The ``serve-sim --shards N`` path: fan out, merge, report.

    Every cell's engine calibrates and prewarms through one shared
    parent-side memo, so the broadcast snapshot grows across cells;
    ``--persist-memo`` loads the persisted totals pool into that memo
    up front (a fully warm fleet) and stores it back after the grid.
    """
    from repro.serving import LayerMemoCache, SCENARIOS, Telemetry
    from repro.serving.memo import (load_persistent_memo,
                                    store_persistent_memo)
    from repro.serving.sharding import ShardedEngine

    memo_cache = LayerMemoCache()
    memo_store = ResultCache() if persist_memo else None
    loaded = (load_persistent_memo(memo_cache, memo_store)
              if persist_memo else 0)
    # fault-carrying scenarios are not shard-stable, so the default
    # grid skips them (asking for one explicitly is an exit-2 error)
    names = scenarios or [name for name, s in SCENARIOS.items()
                          if not s.faults]
    trace = bool(trace_path)
    rows: list[dict] = []
    results = []
    for name in names:
        for policy in policies:
            engine = ShardedEngine(
                shards, accelerator=accelerator, replicas=replicas,
                policy=policy, batch_size=batch_size, dispatch=dispatch,
                slo_us=slo_us, trace=trace, resilience=resilience,
                memo_cache=memo_cache,
            )
            result = engine.run_scenario(name, requests, seed)
            results.append(result)
            rows.append(result.to_row())
    stored = (store_persistent_memo(memo_cache, memo_store)
              if persist_memo else 0)
    if trace:
        # merge the shard-tagged worker traces into one JSONL sink
        telemetry = Telemetry()
        for result in results:
            for outcome in result.outcomes:
                for key, count in outcome.counters:
                    telemetry.counters[key] = (
                        telemetry.counters.get(key, 0) + count)
            telemetry.rows.extend(result.telemetry_rows)
        telemetry.save(trace_path)
    if opts.as_json:
        print(report.to_json(rows))
        return 0
    total = sum(r.requests for r in results)
    wall = sum(r.wall_s for r in results)
    extras = f", slo {slo_us:g}us" if slo_us else ""
    print(f"\n=== serve-sim: {accelerator} x{replicas} ({dispatch}), "
          f"{requests} requests/scenario across {shards} shard "
          f"worker(s){extras} ===")
    print(report.render_rows(rows))
    print(f"\nscale-out: {total} requests simulated in {wall:.2f}s "
          f"wall ({total / wall:,.0f} aggregate req/s)" if wall
          else f"\nscale-out: {total} requests simulated")
    seeded = sum(r.cache.seeded for r in results)
    if seeded:
        print(f"warm fleet: {seeded} snapshot cells shipped, "
              f"{sum(r.cache.seed_hits for r in results)} warm hits "
              f"across shard workers")
    if persist_memo:
        print(f"persisted memo: {loaded} totals loaded, "
              f"{stored} stored")
    if trace:
        print(f"telemetry trace: {trace_path} "
              f"({len(telemetry.rows)} shard-tagged row(s))")
    return 0


def _serve_sim_geo(opts: CliOptions, *, scenarios: list[str],
                   policies: list[str], requests: int, batch_size: int,
                   seed: int, dispatch: str, slo_us: float,
                   regions: tuple, geo_policy: str, topology: str,
                   storms: int, trace_path: str,
                   resilience: str = "",
                   persist_memo: bool = False) -> int:
    """The ``serve-sim --geo REGIONS`` path: route, fan out, merge.

    All region calibrators share one parent-side memo (structural
    keying keeps the mixed backends apart), so the broadcast snapshot
    accumulates across cells; ``--persist-memo`` loads the persisted
    totals pool into it up front and stores it back after the grid.
    """
    from repro.serving import LayerMemoCache, SCENARIOS, Telemetry
    from repro.serving.geo import GeoRouter
    from repro.serving.memo import (load_persistent_memo,
                                    store_persistent_memo)

    memo_cache = LayerMemoCache()
    memo_store = ResultCache() if persist_memo else None
    loaded = (load_persistent_memo(memo_cache, memo_store)
              if persist_memo else 0)
    names = scenarios or list(SCENARIOS)
    trace = bool(trace_path)
    router = GeoRouter(
        regions, topology=topology, geo=geo_policy, storms=storms,
        policy=policies[0], batch_size=batch_size, dispatch=dispatch,
        slo_us=slo_us, trace=trace, resilience=resilience,
        memo_cache=memo_cache,
    )
    rows: list[dict] = []
    region_rows: list[dict] = []
    results = []
    for name in names:
        for policy in policies:
            router.policy = policy
            result = router.run_scenario(name, requests, seed)
            results.append(result)
            rows.append(result.to_row())
            region_rows.extend(
                {"scenario": name, "policy": policy, **row}
                for row in result.region_rows()
            )
    stored = (store_persistent_memo(memo_cache, memo_store)
              if persist_memo else 0)
    if trace:
        # one JSONL sink holding every region-tagged worker trace plus
        # the per-region summary rows the dashboard's geo table reads
        telemetry = Telemetry()
        for result in results:
            telemetry.rows.extend(result.telemetry_rows)
            telemetry.rows.extend(result.region_trace_rows())
        telemetry.save(trace_path)
    if opts.as_json:
        print(report.to_json(rows + region_rows))
        return 0
    total = sum(r.requests for r in results)
    wall = sum(r.wall_s for r in results)
    extras = "".join(
        part for part, on in (
            (f", slo {slo_us:g}us", slo_us),
            (f", {storms} region storm(s)", storms),
        ) if on
    )
    region_names = ", ".join(spec.name for spec in router.regions)
    print(f"\n=== serve-sim: geo[{len(router.regions)}] "
          f"({geo_policy} over {topology}), {requests} "
          f"requests/scenario{extras} ===")
    print(f"regions: {region_names}")
    print(report.render_rows(rows))
    print("\nper-region breakdown:")
    print(report.render_rows(region_rows))
    print(f"\ngeo scale-out: {total} requests simulated in "
          f"{wall:.2f}s wall ({total / wall:,.0f} aggregate req/s)"
          if wall else f"\ngeo scale-out: {total} requests simulated")
    seeded = sum(r.cache.seeded for r in results)
    if seeded:
        print(f"warm fleet: {seeded} snapshot cells shipped, "
              f"{sum(r.cache.seed_hits for r in results)} warm hits "
              f"across region workers")
    if persist_memo:
        print(f"persisted memo: {loaded} totals loaded, "
              f"{stored} stored")
    if trace:
        print(f"telemetry trace: {trace_path} "
              f"({len(telemetry.rows)} region-tagged row(s))")
    return 0


def _cmd_report(args: list[str], opts: CliOptions) -> int:
    """Build the fleet report (JSON and/or the HTML dashboard)."""
    from repro.eval.blocks import (load_bench, load_ledger,
                                   load_rows, load_telemetry)
    from repro.eval.dashboard import (DEFAULT_WINDOW, build_report,
                                      render_html, summary_rows)

    bench_path, ledger_path, out_path = "BENCH_serving.json", "", ""
    rows_paths: list[str] = []
    trace_paths: list[str] = []
    window = DEFAULT_WINDOW
    try:
        i = 0
        while i < len(args):
            token = args[i]
            if token in ("--bench", "--ledger", "--rows", "--trace",
                         "--out", "-o", "--window"):
                if i + 1 >= len(args):
                    raise ConfigError(f"{token} needs a value")
                value = args[i + 1]
                if token == "--bench":
                    bench_path = value
                elif token == "--ledger":
                    ledger_path = value
                elif token == "--rows":
                    rows_paths.append(value)
                elif token == "--trace":
                    trace_paths.append(value)
                elif token == "--window":
                    try:
                        window = int(value)
                    except ValueError:
                        raise ConfigError(
                            f"--window needs a number, got {value!r}"
                        ) from None
                    if window < 1:
                        raise ConfigError("--window must be >= 1")
                else:
                    out_path = value
            elif token.startswith("-"):
                raise ConfigError(f"unknown report flag {token!r}")
            else:
                raise ConfigError(f"unexpected report argument {token!r}")
            i += 2

        grid_rows: list[dict] = []
        for path in rows_paths:
            grid_rows.extend(load_rows(path))
        telemetry_rows: list[dict] = []
        for path in trace_paths:
            telemetry_rows.extend(load_telemetry(path))
        fleet = build_report(
            load_bench(bench_path),
            ledger_rows=load_ledger(ledger_path or None),
            grid_rows=grid_rows,
            telemetry_rows=telemetry_rows,
            window=window,
        )
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
    if opts.as_json:
        print(report.to_json(fleet))
        if out_path:  # HTML only when a destination was asked for
            _write_text(out_path, render_html(fleet))
        return 0
    out_path = out_path or "repro-report.html"
    _write_text(out_path, render_html(fleet))
    cells = summary_rows(fleet)
    if cells:
        print(report.render_rows(cells))
    else:
        print(f"no bench points in '{bench_path}'")
    runs = fleet["runs"]
    print(f"\nreport: {len(cells)} bench cell(s), {runs['total']} "
          f"ledger run(s), {len(fleet['timeline'])} telemetry "
          f"run(s) -> {out_path}")
    return 0


def _write_text(path: str, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _cmd_runs(args: list[str], opts: CliOptions) -> int:
    if args:
        print(f"unknown runs argument(s) {' '.join(args)!r}; "
              f"use --limit N to bound the listing")
        return 2
    store = RunStore()
    rows = [{
        "run_id": r.run_id,
        "experiment": r.experiment,
        "params": json.dumps(dict(r.params), sort_keys=True),
        "started": datetime.fromtimestamp(r.started).isoformat(
            timespec="seconds"),
        "elapsed_s": r.elapsed_s,
        "cached": r.cached,
        "rows": r.row_count,
        "error": r.error or "",
    } for r in store.recent(opts.limit)]
    print(report.render_rows(rows, as_json=opts.as_json))
    return 0


def _cmd_cache(args: list[str], opts: CliOptions) -> int:
    cache = ResultCache()
    if args == ["clear"]:
        removed = cache.clear()
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'}")
        return 0
    if args and args != ["stats"]:
        print(f"unknown cache command {' '.join(args)!r}; "
              f"use 'cache' or 'cache clear'")
        return 2
    entries = cache.entries()
    if opts.as_json:
        print(report.to_json({
            "cache_dir": str(cache.cache_dir),
            "entries": entries,
        }))
        return 0
    total = sum(e["bytes"] for e in entries)
    print(f"cache dir: {cache.cache_dir} "
          f"({len(entries)} entries, {total / 1024:.1f} KiB)")
    rows = [{
        "experiment": e["experiment"],
        "params": json.dumps(e["params"], sort_keys=True),
        "rows": e["rows"],
        "elapsed_s": e["elapsed_s"],
        "kib": e["bytes"] / 1024,
    } for e in entries]
    print(report.render_rows(rows))
    return 0


def main(argv: list[str]) -> int:
    """CLI dispatcher; returns a process exit code."""
    try:
        opts, args = _parse_flags(list(argv))
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
    if not args or args[0] in ("-h", "--help", "list"):
        return _cmd_list()
    if args[0] == "sweep":
        return _cmd_sweep(args[1:], opts)
    if args[0] == "serve-sim":
        return _cmd_serve_sim(args[1:], opts)
    if args[0] == "report":
        return _cmd_report(args[1:], opts)
    if args[0] == "runs":
        return _cmd_runs(args[1:], opts)
    if args[0] == "cache":
        return _cmd_cache(args[1:], opts)
    return _cmd_run(args, opts)


def console_main() -> None:
    """``repro`` console-script entry point."""
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)


if __name__ == "__main__":
    console_main()
