"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig18                # reproduce Fig 18
    python -m repro fig7 fig24 tab1     # several at once
    python -m repro all                  # everything (slow)
"""

from __future__ import annotations

import sys

from repro.eval import report
from repro.eval import experiments as exp

#: Experiment registry: CLI name -> (callable, description).
EXPERIMENTS = {
    "fig2": (exp.fig2_wires, "PTL vs JTL vs CMOS wires"),
    "fig5": (exp.fig5_homogeneous, "homogeneous SPM technologies"),
    "fig6": (lambda: [
        {"operand": k, **v} for k, v in exp.fig6_trace_structure().items()
    ], "memory trace structure"),
    "fig7": (exp.fig7_heterogeneous, "heterogeneous SPM technologies"),
    "fig9": (lambda: [exp.fig9_htree_breakdown()],
             "CMOS H-tree breakdown"),
    "fig12": (exp.fig12_subbank_validation, "sub-bank validation"),
    "fig13": (exp.fig13_htree_validation,
              "SFQ H-tree validation (runs the circuit simulator)"),
    "fig14": (exp.fig14_design_space, "pipeline design space"),
    "fig16": (exp.fig16_access_energy, "per-access energy"),
    "fig17": (exp.fig17_area_breakdown, "area breakdown"),
    "fig18": (exp.fig18_single_speedup, "single-image speedup"),
    "fig19": (exp.fig19_batch_speedup, "batch speedup"),
    "fig20": (exp.fig20_single_energy, "single-image energy"),
    "fig21": (exp.fig21_batch_energy, "batch energy"),
    "fig22": (exp.fig22_shift_capacity, "SHIFT capacity sensitivity"),
    "fig23": (exp.fig23_random_capacity, "RANDOM capacity sensitivity"),
    "fig24": (exp.fig24_prefetch_depth, "prefetch depth sensitivity"),
    "fig25": (exp.fig25_write_latency, "write latency sensitivity"),
    "tab1": (exp.tab1_technologies, "cryogenic memory technologies"),
    "tab2": (exp.tab2_components, "SFQ H-tree components"),
    "tab4": (exp.tab4_configurations, "baseline configurations"),
}


def run(name: str) -> None:
    """Run one experiment and print its table."""
    func, description = EXPERIMENTS[name]
    print(f"\n=== {name}: {description} ===")
    rows = func()
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    print(report.format_table(headers, body))


def main(argv: list[str]) -> int:
    """CLI dispatcher; returns a process exit code."""
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        width = max(len(n) for n in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {description}")
        return 0
    names = list(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'")
        return 2
    for name in names:
        run(name)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
