"""Composable analytics blocks over scenario-keyed result rows.

The repo accumulates history with no analysis layer: the runtime's
JSONL run ledger, the committed ``BENCH_serving.json`` trajectory,
``--json`` sweep outputs and saved telemetry traces.  This module is
the filter / aggregate / normalise / pivot pipeline over all of them —
a row is a plain ``dict``, a :class:`Block` maps ``list[dict] ->
list[dict]``, and a :class:`Pipeline` chains blocks::

    rows = load_bench("BENCH_serving.json")
    latest = Pipeline([
        FilterBlock("scenario", ["bursty"]),
        AggregateBlock(by=("cell",), metrics={"rps": "median",
                                              "rps_last": ("rps", "last")}),
    ]).apply(rows)

Loaders normalise source-specific drift in one place — notably the
bench file's legacy ``requests`` spelling of ``n_requests`` — and
reject unlabelled bench points outright (the committed history is
fully migrated to the labelled schema), so every downstream block
sees uniform columns.
``repro report`` and the statistical ``tools/bench_guard.py`` both
build on these primitives.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.eval.report import geomean, percentile

Row = dict  # one observation: column name -> value


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------
class Block:
    """One step of an analytics pipeline: rows in, rows out."""

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        raise NotImplementedError

    def __call__(self, rows: Sequence[Row]) -> list[Row]:
        return self.apply(rows)


class Pipeline(Block):
    """Apply a sequence of blocks left to right."""

    def __init__(self, blocks: Sequence[Block]) -> None:
        self.blocks = tuple(blocks)

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        out = list(rows)
        for block in self.blocks:
            out = block.apply(out)
        return out


class FilterBlock(Block):
    """Keep rows whose ``column`` value is in ``values`` (or that
    satisfy ``predicate``); ``exclude`` inverts the selection.

    Args:
        column: column the membership test reads.
        values: accepted values (a single scalar is promoted).
        predicate: row -> bool alternative to column/values.
        exclude: drop the matching rows instead of keeping them.
    """

    def __init__(self, column: Optional[str] = None,
                 values: Any = None,
                 predicate: Optional[Callable[[Row], bool]] = None,
                 exclude: bool = False) -> None:
        if (column is None) == (predicate is None):
            raise ConfigError(
                "FilterBlock needs exactly one of column or predicate"
            )
        if column is not None and isinstance(values, (str, int, float,
                                                      bool)):
            values = (values,)
        self.column = column
        self.values = None if values is None else tuple(values)
        self.predicate = predicate
        self.exclude = exclude

    def _match(self, row: Row) -> bool:
        if self.predicate is not None:
            return bool(self.predicate(row))
        value = row.get(self.column)
        return value in self.values if self.values is not None \
            else value is not None

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        return [r for r in rows if self._match(r) != self.exclude]


def _finite(values: Iterable[Any]) -> list[float]:
    out = []
    for v in values:
        if isinstance(v, bool):
            out.append(float(v))
        elif isinstance(v, (int, float)) and math.isfinite(v):
            out.append(float(v))
    return out


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


#: Named aggregation functions over the finite numeric values of a
#: column (``first``/``last``/``count`` also accept non-numeric cells).
AGGREGATORS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "mean": lambda vs: sum(_finite(vs)) / len(_finite(vs)),
    "median": lambda vs: _median(_finite(vs)),
    "min": lambda vs: min(_finite(vs)),
    "max": lambda vs: max(_finite(vs)),
    "sum": lambda vs: sum(_finite(vs)),
    "count": len,
    "first": lambda vs: vs[0],
    "last": lambda vs: vs[-1],
    "geomean": lambda vs: geomean(_finite(vs)),
    "p95": lambda vs: percentile(_finite(vs), 95.0),
    "mad": lambda vs: _median([abs(v - _median(_finite(vs)))
                               for v in _finite(vs)]),
}


class AggregateBlock(Block):
    """Group rows and aggregate columns within each group.

    Args:
        by: grouping columns (group key order is first-seen order).
        metrics: output column -> aggregation.  The value is either an
            :data:`AGGREGATORS` name / callable applied to the column
            of the *same* name, or a ``(source_column, aggregation)``
            pair when the output is named differently (e.g. ``{"rps":
            "median", "rps_last": ("rps", "last")}``).

    Groups whose source column is entirely missing/non-numeric drop
    that metric rather than crashing the pipeline.
    """

    def __init__(self, by: Sequence[str],
                 metrics: Mapping[str, Any]) -> None:
        if not metrics:
            raise ConfigError("AggregateBlock needs at least one metric")
        self.by = tuple(by)
        resolved = []
        for out_name, spec in metrics.items():
            if isinstance(spec, tuple):
                source, agg = spec
            else:
                source, agg = out_name, spec
            if isinstance(agg, str):
                if agg not in AGGREGATORS:
                    raise ConfigError(
                        f"unknown aggregator '{agg}'; known: "
                        f"{', '.join(sorted(AGGREGATORS))}"
                    )
                agg = AGGREGATORS[agg]
            resolved.append((out_name, source, agg))
        self.metrics = tuple(resolved)

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        groups: dict[tuple, list[Row]] = {}
        for row in rows:
            groups.setdefault(
                tuple(row.get(c) for c in self.by), []
            ).append(row)
        out = []
        for key, members in groups.items():
            result: Row = dict(zip(self.by, key))
            for out_name, source, agg in self.metrics:
                values = [r[source] for r in members if source in r]
                try:
                    result[out_name] = agg(values)
                except (ConfigError, ValueError, ZeroDivisionError,
                        IndexError):
                    continue  # no usable values in this group
            out.append(result)
        return out


class NormalizeBlock(Block):
    """Divide metric columns by a baseline row's value, per group.

    The plotty-style normalisation: within each ``by`` group, the row
    matching ``baseline`` (a column -> value selector) provides the
    denominator; every row gains ``column + suffix`` columns.  Groups
    with no (or a zero/non-numeric) baseline pass through unchanged.

    Args:
        columns: metric columns to normalise.
        baseline: selector picking the baseline row within each group,
            e.g. ``{"variant": ""}`` or ``{"policy": "fixed"}``.
        by: grouping columns (default: one global group).
        suffix: appended to each normalised column's name.
    """

    def __init__(self, columns: Sequence[str] | str,
                 baseline: Mapping[str, Any],
                 by: Sequence[str] = (),
                 suffix: str = "_norm") -> None:
        if not baseline:
            raise ConfigError("NormalizeBlock needs a baseline selector")
        self.columns = ((columns,) if isinstance(columns, str)
                        else tuple(columns))
        self.baseline = dict(baseline)
        self.by = tuple(by)
        self.suffix = suffix

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        bases: dict[tuple, Row] = {}
        for row in rows:
            if all(row.get(c) == v for c, v in self.baseline.items()):
                # last matching row wins, like latest_per_cell
                bases[tuple(row.get(c) for c in self.by)] = row
        out = []
        for row in rows:
            base = bases.get(tuple(row.get(c) for c in self.by))
            row = dict(row)
            if base is not None:
                for column in self.columns:
                    denom, value = base.get(column), row.get(column)
                    if isinstance(denom, (int, float)) and denom \
                            and isinstance(value, (int, float)):
                        row[column + self.suffix] = value / denom
            out.append(row)
        return out


class PivotBlock(Block):
    """Reshape long rows into one wide row per ``index`` value.

    Each distinct ``column`` value becomes an output column holding
    that group's ``value``; collisions (several rows landing in one
    cell) resolve through ``aggregate`` (default: last wins).
    """

    def __init__(self, index: Sequence[str] | str, column: str,
                 value: str, aggregate: Any = "last") -> None:
        self.index = (index,) if isinstance(index, str) else tuple(index)
        self.column = column
        self.value = value
        if isinstance(aggregate, str):
            if aggregate not in AGGREGATORS:
                raise ConfigError(
                    f"unknown aggregator '{aggregate}'; known: "
                    f"{', '.join(sorted(AGGREGATORS))}"
                )
            aggregate = AGGREGATORS[aggregate]
        self.aggregate = aggregate

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        cells: dict[tuple, dict[str, list]] = {}
        for row in rows:
            if self.column not in row or self.value not in row:
                continue
            key = tuple(row.get(c) for c in self.index)
            cells.setdefault(key, {}).setdefault(
                str(row[self.column]), []
            ).append(row[self.value])
        out = []
        for key, columns in cells.items():
            result: Row = dict(zip(self.index, key))
            for name, values in columns.items():
                try:
                    result[name] = self.aggregate(values)
                except (ConfigError, ValueError, ZeroDivisionError,
                        IndexError):
                    continue
            out.append(result)
        return out


class SortBlock(Block):
    """Stable sort by one or more columns (missing values sort first)."""

    def __init__(self, by: Sequence[str] | str,
                 reverse: bool = False) -> None:
        self.by = (by,) if isinstance(by, str) else tuple(by)
        self.reverse = reverse

    def apply(self, rows: Sequence[Row]) -> list[Row]:
        def key(row: Row):
            return tuple((row.get(c) is not None, row.get(c) or 0)
                         if isinstance(row.get(c), (int, float))
                         else (row.get(c) is not None, str(row.get(c)))
                         for c in self.by)
        return sorted(rows, key=key, reverse=self.reverse)


# ---------------------------------------------------------------------------
# Loaders: one normalisation point per history source
# ---------------------------------------------------------------------------
def bench_cell(point: Mapping[str, Any]) -> tuple[str, int, str]:
    """(scenario, n_requests, variant) of one bench point.

    Every point must carry its ``scenario`` label and a request count
    (``n_requests``, or the pre-label ``requests`` spelling); the
    committed history was migrated to the labelled schema, so an
    unlabelled point is a malformed write, not legacy data.
    Unlabelled variants are the plain serving path.

    Raises:
        ConfigError: for points missing the scenario label or the
            request count — rejecting beats emitting a None-keyed
            cell that silently splits the trajectory.
    """
    if "scenario" not in point:
        raise ConfigError(
            "bench point is missing its 'scenario' label; every "
            "point must use the labelled schema"
        )
    n_requests = point.get("n_requests", point.get("requests"))
    if n_requests is None:
        raise ConfigError(
            "bench point is missing 'n_requests' (or the legacy "
            "'requests' spelling)"
        )
    return (str(point["scenario"]), int(n_requests),
            str(point.get("variant", "")))


def bench_label(cell: tuple[str, int, str]) -> str:
    """Human label of a bench cell: ``scenario/n[/variant]``."""
    scenario, n_requests, variant = cell
    base = f"{scenario}/{n_requests}"
    return f"{base}/{variant}" if variant else base


def load_bench(path) -> list[Row]:
    """``BENCH_serving.json`` points as uniform rows, file order.

    Every row carries normalised ``scenario`` / ``n_requests`` /
    ``variant`` / ``cell`` columns (see :func:`bench_cell`, which
    rejects unlabelled points), a global ``seq`` and a per-cell
    ``cell_seq``
    index, plus whatever metric columns the point recorded (``rps``,
    ``cold_rps``, ``wall_s``, ...).  Missing/unreadable files load as
    no rows, like the guard.
    """
    try:
        history = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(history, list):
        return []
    rows: list[Row] = []
    per_cell: dict[tuple[str, int, str], int] = {}
    for seq, point in enumerate(history):
        if not isinstance(point, dict) or "rps" not in point:
            continue
        cell = bench_cell(point)
        row = dict(point)
        row["scenario"], row["n_requests"], row["variant"] = cell
        row["cell"] = bench_label(cell)
        row["seq"] = seq
        row["cell_seq"] = per_cell[cell] = per_cell.get(cell, -1) + 1
        row.pop("requests", None)  # legacy spelling of n_requests
        rows.append(row)
    return rows


def load_ledger(source=None) -> list[Row]:
    """Run-ledger records as rows (oldest first).

    ``source`` is a :class:`~repro.runtime.store.RunStore`, a path to
    a JSONL ledger, or None for the default store.  Scalar job
    parameters are hoisted into top-level columns (without clobbering
    the record's own) so they can be filtered and grouped on; the full
    mapping stays under ``params``.
    """
    from repro.runtime.store import RunStore

    store = source if isinstance(source, RunStore) else RunStore(source)
    rows = []
    for record in store.records():
        row: Row = {
            "run_id": record.run_id,
            "experiment": record.experiment,
            "started": record.started,
            "elapsed_s": record.elapsed_s,
            "cached": record.cached,
            "error": record.error,
            "row_count": record.row_count,
            "params": dict(record.params),
        }
        for name, value in record.params.items():
            if isinstance(value, (str, int, float, bool)) \
                    and name not in row:
                row[name] = value
        rows.append(row)
    return rows


def load_telemetry(path) -> list[Row]:
    """A saved telemetry trace's rows (see
    :func:`repro.serving.telemetry.load_trace`), with the source path
    attached as a ``trace`` column.  Rows from a sharded scale-out run
    keep their ``shard`` id, which the dashboard timeline uses to give
    each worker shard its own series."""
    from repro.serving.telemetry import load_trace

    _meta, rows = load_trace(path)
    name = Path(path).name
    for row in rows:
        row["trace"] = name
    return rows


def load_rows(path) -> list[Row]:
    """Result rows from a ``--json`` output file.

    Accepts both shapes the CLI emits: a flat JSON array of row dicts
    (``serve-sim --json``), or a list of job results carrying ``rows``
    (``sweep --json`` / ``run --json``) — the latter is flattened with
    the experiment name and sweep parameters merged into each row.

    Raises:
        ConfigError: when the file is missing or not JSON.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except OSError:
        raise ConfigError(f"no rows file at '{path}'") from None
    except json.JSONDecodeError:
        raise ConfigError(f"'{path}' is not JSON") from None
    if not isinstance(payload, list):
        raise ConfigError(f"'{path}' holds no row array")
    out: list[Row] = []
    for entry in payload:
        if not isinstance(entry, dict):
            continue
        if isinstance(entry.get("rows"), list):  # sweep/job result
            base = {"experiment": entry.get("experiment")}
            params = entry.get("params")
            if isinstance(params, dict):
                for name, value in params.items():
                    if isinstance(value, (str, int, float, bool)):
                        base.setdefault(name, value)
            for row in entry["rows"]:
                if isinstance(row, dict):
                    merged = dict(base)
                    merged.update(row)
                    out.append(merged)
        else:
            out.append(dict(entry))
    return out
