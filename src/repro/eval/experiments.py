"""One function per paper table/figure, returning plain dict rows.

Every function regenerates the series the paper plots, normalised the
same way the paper normalises; benchmarks print these rows and assert
the shape targets recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core import (
    PipelinedCmosSfqArray,
    explore_design_space,
    make_accelerator,
    make_energy_model,
    make_smart,
    make_supernpu,
    make_tpu,
)
from repro.cryomem import (
    CmosSubbank,
    JosephsonCmosSram,
    ShiftArray,
    SUBBANK_CHIP_DATA,
    TABLE1,
    relative_error,
)
from repro.cryomem.mosfet import CryoMosfet
from repro.models import batch_size_for, get_model, model_names
from repro.sfq import CmosWire, JtlLine, PtlLink
from repro.sfq.constants import SCALED_28NM, TABLE2_COMPONENTS
from repro.systolic.mapping import WeightStationaryMapping
from repro.systolic.trace import layer_trace
from repro.units import GHZ, KB, MB, NS, UM, to_ns, to_pj, to_ps

#: Models of the paper's Figs 18-21.
EVAL_SCHEMES = ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")


# ---------------------------------------------------------------------------
# Substrate figures
# ---------------------------------------------------------------------------
def fig2_wires(lengths_um=(10, 25, 50, 100, 150, 200)) -> list[dict]:
    """Fig 2: PTL vs JTL vs CMOS wire latency and energy vs length."""
    rows = []
    for length_um in lengths_um:
        length = length_um * UM
        ptl = PtlLink(length)
        jtl = JtlLine(length)
        cmos = CmosWire(length)
        rows.append({
            "length_um": length_um,
            "ptl_ps": to_ps(ptl.latency),
            "jtl_ps": to_ps(jtl.latency),
            "cmos_ps": to_ps(cmos.latency),
            "ptl_j": ptl.dynamic_energy_per_pulse,
            "jtl_j": jtl.energy_per_pulse,
            "cmos_j": cmos.energy_per_bit,
        })
    return rows


def tab1_technologies() -> list[dict]:
    """Table 1: the cryogenic memory technology comparison."""
    rows = []
    for tech in TABLE1.values():
        rows.append({
            "name": tech.name,
            "read_ns": to_ns(tech.read_latency),
            "write_ns": to_ns(tech.write_latency),
            "cell_f2": tech.cell_size_f2,
            "read_j": tech.read_energy,
            "write_j": tech.write_energy,
            "random": tech.random_access,
            "destructive": tech.destructive_read,
        })
    return rows


def tab2_components() -> list[dict]:
    """Table 2: SFQ H-tree component latency and power."""
    rows = []
    for name, spec in TABLE2_COMPONENTS.items():
        rows.append({
            "component": name,
            "latency_ps": to_ps(spec.latency),
            "leakage_uw": spec.leakage_power * 1e6,
            "dynamic_nw": spec.dynamic_power * 1e9,
        })
    return rows


def fig6_trace_structure(model: str = "AlexNet",
                         layer_name: str = "conv2") -> dict:
    """Fig 6: run/jump structure of one layer's memory streams."""
    net = get_model(model)
    layer = next(l for l in net.layers if l.name == layer_name)
    mapping = WeightStationaryMapping(layer, 64, 256)
    trace = layer_trace(mapping)
    out = {}
    for operand, stats in trace.streams().items():
        out[operand] = {
            "words": stats.words,
            "jumps": stats.jumps,
            "avg_jump_words": stats.avg_jump_words,
            "rand_fetches": stats.rand_fetches,
        }
    return out


def fig9_htree_breakdown() -> dict:
    """Fig 9: CMOS H-tree share of a 28 MB Josephson-CMOS array."""
    array = JosephsonCmosSram(28 * MB, banks=256)
    breakdown = array.breakdown
    return {
        "total_latency_ns": to_ns(array.access_latency),
        "total_energy_pj": to_pj(array.access_energy),
        "htree_latency_share": breakdown.latency_share("htree"),
        "htree_energy_share": breakdown.energy_share("htree"),
    }


def fig12_subbank_validation() -> list[dict]:
    """Fig 12: 4 K CMOS sub-bank model vs the fabricated chip."""
    mosfet = CryoMosfet(node=0.18e-6, temperature=4.0,
                        supply_voltage=1.8, vth_300k=0.5)
    rows = []
    for point in SUBBANK_CHIP_DATA:
        model = CmosSubbank(point.capacity_bytes, mats=point.mats,
                            mosfet=mosfet)
        rows.append({
            "capacity_kb": point.capacity_bytes // KB,
            "chip_ns": to_ns(point.latency),
            "model_ns": to_ns(model.access_latency),
            "latency_err": relative_error(model.access_latency,
                                          point.latency),
            "chip_pj": to_pj(point.energy),
            "model_pj": to_pj(model.access_energy),
            "energy_err": relative_error(model.access_energy, point.energy),
        })
    return rows


def fig13_htree_validation(lengths_mm=(0.1, 0.2, 0.4, 0.8),
                           run_spice: bool = True) -> list[dict]:
    """Fig 13: analytical splitter-unit model vs transient simulation.

    The analytical latency is calibrated component latencies composed
    along the path (driver + PTL + receiver + splitter + driver + PTL +
    receiver); the "simulated" value comes from the transient circuit
    simulator (our JoSIM substitute).  ``run_spice=False`` returns the
    analytical side only (for quick tests).
    """
    from repro.spice import TransientSimulator, build_splitter_unit
    from repro.spice.circuits import SfqCellLibrary
    from repro.spice.measure import pulse_delay

    lib = SfqCellLibrary()
    line = lib.line
    rows = []
    for length_mm in lengths_mm:
        length = length_mm * 1e-3
        line_delay = line.delay(length)
        # calibrated per-cell latencies measured once from the simulator
        # would be ideal; the Table 2 values are the architectural spec
        analytic = (
            TABLE2_COMPONENTS["driver"].latency
            + TABLE2_COMPONENTS["receiver"].latency
            + TABLE2_COMPONENTS["splitter"].latency
            + TABLE2_COMPONENTS["driver"].latency
            + TABLE2_COMPONENTS["receiver"].latency
            + 2 * line_delay
        )
        row = {
            "length_mm": length_mm,
            "analytic_ps": to_ps(analytic),
            "analytic_freq_ghz": 0.9 / (2 * line_delay + 8.75e-12) / 1e9,
        }
        if run_spice:
            netlist, probes = build_splitter_unit(length, lib=lib)
            simulator = TransientSimulator(netlist)
            result = simulator.run(40e-12 + 4 * length / 1e8 + 60e-12)
            measured = pulse_delay(result, probes["launch"],
                                   probes["arrive"])
            row["spice_ps"] = to_ps(measured)
            row["spice_energy_j"] = result.total_dissipated
        rows.append(row)
    return rows


def _design_point_row(point) -> dict:
    """One Fig 14-style row for a :class:`DesignPoint`."""
    return {
        "frequency_ghz": point.frequency / GHZ,
        "leakage_mw": point.leakage_power * 1e3,
        "access_energy_pj": to_pj(point.access_energy),
        "area_mm2": point.area * 1e6,
        "subbank_mats": point.subbank_mats,
        "repeaters": point.htree_repeaters,
    }


def fig14_design_space() -> list[dict]:
    """Fig 14: leakage / energy / area vs pipeline frequency."""
    return [_design_point_row(p) for p in explore_design_space()]


def design_space(frequency: float | None = None,
                 capacity_mb: float = 28.0,
                 banks: int = 256) -> list[dict]:
    """Parametric design-space experiment for runtime sweeps.

    ``frequency`` is in GHz; ``None`` evaluates the full Fig 14 sweep.
    Registered under ``design_space`` so
    ``python -m repro sweep design_space --param frequency=0.5,1,2``
    runs one cached job per grid point.
    """
    from repro.core.design_space import explore_design_space as explore
    kwargs = dict(capacity_bytes=int(capacity_mb * MB), banks=banks)
    if frequency is None:
        points = explore(**kwargs)
    else:
        points = explore(frequencies=(float(frequency) * GHZ,), **kwargs)
    return [_design_point_row(p) for p in points]


# ---------------------------------------------------------------------------
# System comparisons
# ---------------------------------------------------------------------------
def _latency(accelerator, model: str, batch: int) -> float:
    return accelerator.simulate(get_model(model), batch).latency / batch


def fig5_homogeneous(model: str = "AlexNet") -> list[dict]:
    """Fig 5: SuperNPU with homogeneous SPMs of each technology.

    Latency normalised to the SHIFT baseline; includes the hypothetical
    ideal random array (0.02 ns) the paper invokes ("would have
    eliminated memory access stalls": -94%).
    """
    shift = _latency(make_supernpu(), model, 1)
    rows = [{"spm": "SHIFT", "norm_latency": 1.0}]
    for tech in ("SRAM", "MRAM", "SNM", "VTM"):
        acc = make_accelerator("homogeneous", technology=tech)
        rows.append({
            "spm": tech,
            "norm_latency": _latency(acc, model, 1) / shift,
        })
    # ideal 0.02 ns random array: stall-free at the SFQ clock
    from repro.systolic.memsys import DramModel, IdealSpm, MemorySystem
    from repro.systolic.simulator import AcceleratorModel
    ideal = AcceleratorModel(
        name="ideal-random", rows=64, cols=256, frequency=52.6 * GHZ,
        memsys=MemorySystem(scheme="ideal", dram=DramModel(),
                            total_capacity=28 * MB,
                            ideal=IdealSpm(28 * MB)),
    )
    rows.append({
        "spm": "ideal-0.02ns",
        "norm_latency": _latency(ideal, model, 1) / shift,
    })
    return rows


def fig7_heterogeneous(model: str = "AlexNet") -> list[dict]:
    """Fig 7: heterogeneous SPMs (hSRAM/hMRAM/hSNM/hVTM/hVTM+p)."""
    shift = _latency(make_supernpu(), model, 1)
    rows = [{"spm": "SHIFT", "norm_latency": 1.0}]
    for tech in ("SRAM", "MRAM", "SNM", "VTM"):
        acc = make_accelerator("Heter", technology=tech)
        rows.append({
            "spm": f"h{tech}",
            "norm_latency": _latency(acc, model, 1) / shift,
        })
    prefetched = make_accelerator("Heter", technology="VTM",
                                  prefetch_depth=3)
    rows.append({
        "spm": "hVTM+p",
        "norm_latency": _latency(prefetched, model, 1) / shift,
    })
    return rows


def fig16_access_energy() -> list[dict]:
    """Fig 16: per-access energy of SHIFT banks vs the RANDOM array.

    Every DFF of a lane pulses on an advance, so the per-access energy
    scales with the bank size: SuperNPU's 384 KB input lanes and 96 KB
    output lanes burn orders of magnitude more than SMART's 128 B lanes
    ("move only 128 DFFs per access"); the RANDOM array pays one
    pipelined line access.
    """
    from repro.core.configs import SHIFT_ACTIVITY, SHIFT_CELL_ENERGY
    rows = []
    for label, lane_bytes in (
        ("384KB-SHIFT", 384 * KB),
        ("96KB-SHIFT", 96 * KB),
        ("128B-SHIFT", 128),
    ):
        energy = lane_bytes * 8 * SHIFT_CELL_ENERGY * SHIFT_ACTIVITY
        rows.append({"array": label, "access_energy_pj": to_pj(energy)})
    array = PipelinedCmosSfqArray()
    rows.append({
        "array": "RANDOM",
        "access_energy_pj": to_pj(array.access_energy),
    })
    return rows


def fig17_area_breakdown() -> list[dict]:
    """Fig 17: SPM area of SuperNPU vs SMART (28 nm-scaled JJs).

    The paper reports SMART within ~+3% of SuperNPU's total chip area;
    we compare the SPM complexes (the matrix unit is identical).
    """
    supernpu_spm = (
        ShiftArray(24 * MB, banks=64, process=SCALED_28NM).area
        + ShiftArray(24 * MB, banks=256, process=SCALED_28NM).area
        + ShiftArray(128 * KB, banks=256, process=SCALED_28NM).area
    )
    from repro.core.hetero_spm import SmartSpm
    smart = SmartSpm()
    rows = [
        {"config": "SuperNPU", "spm_area_mm2": supernpu_spm * 1e6,
         "shift_mm2": supernpu_spm * 1e6, "random_mm2": 0.0},
        {"config": "SMART", "spm_area_mm2": smart.area * 1e6,
         "shift_mm2": smart.shift_area * 1e6,
         "random_mm2": smart.random.area * 1e6},
    ]
    rows.append({
        "config": "SMART/SuperNPU",
        "spm_area_mm2": smart.area / supernpu_spm,
        "shift_mm2": 0.0, "random_mm2": 0.0,
    })
    return rows


def _speedup_rows(batch: bool) -> list[dict]:
    """Shared Fig 18/19 machinery: TMAC/s normalised to the TPU."""
    tpu = make_tpu()
    accelerators = {s: make_accelerator(s) for s in EVAL_SCHEMES}
    rows = []
    for model in model_names():
        tpu_batch = batch_size_for(model, "tpu") if batch else 1
        base = _latency(tpu, model, tpu_batch)
        row = {"model": model}
        for scheme, acc in accelerators.items():
            if batch:
                family = ("supernpu" if scheme in ("SHIFT", "SRAM")
                          else "smart")
                b = batch_size_for(model, family)
            else:
                b = 1
            row[scheme] = base / _latency(acc, model, b)
        rows.append(row)
    return rows


def fig18_single_speedup() -> list[dict]:
    """Fig 18: single-image throughput normalised to the TPU."""
    return _speedup_rows(batch=False)


def fig19_batch_speedup() -> list[dict]:
    """Fig 19: batch throughput normalised to the TPU."""
    return _speedup_rows(batch=True)


def _energy_rows(batch: bool) -> list[dict]:
    """Shared Fig 20/21 machinery: energy normalised to the TPU."""
    tpu = make_tpu()
    tpu_energy = make_energy_model(tpu)
    accelerators = {s: make_accelerator(s) for s in EVAL_SCHEMES}
    rows = []
    for model in model_names():
        net = get_model(model)
        tpu_batch = batch_size_for(model, "tpu") if batch else 1
        base = tpu_energy.evaluate(tpu.simulate(net, tpu_batch))
        base_per_image = base.total / tpu_batch
        row = {"model": model}
        for scheme, acc in accelerators.items():
            if batch:
                family = ("supernpu" if scheme in ("SHIFT", "SRAM")
                          else "smart")
                b = batch_size_for(model, family)
            else:
                b = 1
            run = acc.simulate(net, b)
            energy = make_energy_model(acc).evaluate(run)
            row[scheme] = (energy.total / b) / base_per_image
            if scheme == "SMART":
                row["smart_matrix_share"] = energy.share("matrix")
                row["smart_dynamic_share"] = energy.share("spm_dynamic")
        rows.append(row)
    return rows


def fig20_single_energy() -> list[dict]:
    """Fig 20: single-image inference energy normalised to the TPU."""
    return _energy_rows(batch=False)


def fig21_batch_energy() -> list[dict]:
    """Fig 21: batch inference energy normalised to the TPU."""
    return _energy_rows(batch=True)


# ---------------------------------------------------------------------------
# Sensitivity studies (Figs 22-25), normalised to SuperNPU as the paper does
# ---------------------------------------------------------------------------
def _smart_speedups(make_variant, settings, batch: bool) -> list[dict]:
    supernpu = make_supernpu()
    rows = []
    for setting in settings:
        variant = make_variant(setting)
        single = []
        batched = []
        for model in model_names():
            b_super = batch_size_for(model, "supernpu")
            b_smart = batch_size_for(model, "smart")
            base_single = _latency(supernpu, model, 1)
            base_batch = _latency(supernpu, model, b_super)
            single.append(base_single / _latency(variant, model, 1))
            batched.append(base_batch / _latency(variant, model, b_smart))
        from repro.eval.report import geomean
        rows.append({
            "setting": setting,
            "single_speedup": geomean(single),
            "batch_speedup": geomean(batched),
        })
    return rows


def fig22_shift_capacity(sizes_kb=(16, 32, 64, 128)) -> list[dict]:
    """Fig 22: SMART vs SHIFT array capacity."""
    return _smart_speedups(lambda kb: make_smart(shift_kb=kb), sizes_kb,
                           batch=True)


def fig23_random_capacity(sizes_mb=(14, 28, 56, 112)) -> list[dict]:
    """Fig 23: SMART vs RANDOM array capacity.

    A larger RANDOM array stores more in-flight images, so the feasible
    batch scales with capacity (that is the paper's mechanism for the
    +41%/+73% batch gains at 56/112 MB); single-image inference cannot
    exploit extra capacity.
    """
    supernpu = make_supernpu()
    rows = []
    for mb in sizes_mb:
        variant = make_smart(random_mb=mb)
        single = []
        batched = []
        for model in model_names():
            b_super = batch_size_for(model, "supernpu")
            b_base = batch_size_for(model, "smart")
            b_smart = max(1, round(b_base * mb / 28))
            base_single = _latency(supernpu, model, 1)
            base_batch = _latency(supernpu, model, b_super)
            single.append(base_single / _latency(variant, model, 1))
            batched.append(base_batch / _latency(variant, model, b_smart))
        from repro.eval.report import geomean
        rows.append({
            "setting": mb,
            "single_speedup": geomean(single),
            "batch_speedup": geomean(batched),
        })
    return rows


def fig24_prefetch_depth(depths=(1, 2, 3, 4, 5)) -> list[dict]:
    """Fig 24: SMART vs ILP prefetch lookahead a."""
    return _smart_speedups(lambda a: make_smart(prefetch_depth=a), depths,
                           batch=True)


def fig25_write_latency(latencies_ns=(0.11, 2.0, 3.0)) -> list[dict]:
    """Fig 25: SMART vs RANDOM array write latency."""
    return _smart_speedups(
        lambda ns: make_smart(write_latency=ns * NS), latencies_ns,
        batch=True,
    )


def tab4_configurations() -> list[dict]:
    """Table 4: the three baseline configurations."""
    rows = []
    for acc in (make_tpu(), make_supernpu(), make_smart()):
        rows.append({
            "name": acc.name,
            "frequency_ghz": acc.frequency / GHZ,
            "pe_array": f"{acc.rows}x{acc.cols}",
            "peak_tmacs": acc.peak_macs / 1e12,
            "spm_bytes": acc.memsys.total_capacity,
        })
    return rows


# ---------------------------------------------------------------------------
# Runtime registry wiring
# ---------------------------------------------------------------------------
def fig6_trace_rows(model: str = "AlexNet",
                    layer_name: str = "conv2") -> list[dict]:
    """Fig 6 as flat rows (one per operand) for the runtime/CLI."""
    return [
        {"operand": operand, **stats}
        for operand, stats in fig6_trace_structure(model,
                                                   layer_name).items()
    ]


def fig9_htree_rows() -> list[dict]:
    """Fig 9 as a single-row table for the runtime/CLI."""
    return [fig9_htree_breakdown()]


#: (name, callable, description); the registration order is the
#: ``python -m repro all`` execution/report order.
_FIGURE_EXPERIMENTS = (
    ("fig2", fig2_wires, "PTL vs JTL vs CMOS wires"),
    ("fig5", fig5_homogeneous, "homogeneous SPM technologies"),
    ("fig6", fig6_trace_rows, "memory trace structure"),
    ("fig7", fig7_heterogeneous, "heterogeneous SPM technologies"),
    ("fig9", fig9_htree_rows, "CMOS H-tree breakdown"),
    ("fig12", fig12_subbank_validation, "sub-bank validation"),
    ("fig13", fig13_htree_validation,
     "SFQ H-tree validation (runs the circuit simulator)"),
    ("fig14", fig14_design_space, "pipeline design space"),
    ("fig16", fig16_access_energy, "per-access energy"),
    ("fig17", fig17_area_breakdown, "area breakdown"),
    ("fig18", fig18_single_speedup, "single-image speedup"),
    ("fig19", fig19_batch_speedup, "batch speedup"),
    ("fig20", fig20_single_energy, "single-image energy"),
    ("fig21", fig21_batch_energy, "batch energy"),
    ("fig22", fig22_shift_capacity, "SHIFT capacity sensitivity"),
    ("fig23", fig23_random_capacity, "RANDOM capacity sensitivity"),
    ("fig24", fig24_prefetch_depth, "prefetch depth sensitivity"),
    ("fig25", fig25_write_latency, "write latency sensitivity"),
    ("tab1", tab1_technologies, "cryogenic memory technologies"),
    ("tab2", tab2_components, "SFQ H-tree components"),
    ("tab4", tab4_configurations, "baseline configurations"),
)


def _register_defaults() -> None:
    from repro.runtime.registry import register_experiment

    for name, func, description in _FIGURE_EXPERIMENTS:
        register_experiment(name, func, description)
    # Parametric experiments: sweep targets, not part of ``repro all``.
    # (The serving_* targets self-register from
    # repro.serving.experiments, loaded by the registry alongside us.)
    register_experiment(
        "design_space", design_space,
        "pipelined array design point(s); params: frequency (GHz), "
        "capacity_mb, banks", figure=False)


_register_defaults()
