"""The ``repro report`` fleet dashboard: JSON report + static HTML.

:func:`build_report` condenses the repo's accumulated history — bench
trajectory points, the run ledger, optional serving result rows and
telemetry traces, all pre-loaded through :mod:`repro.eval.blocks` —
into one deterministic, JSON-serialisable report dict (no wall-clock
stamps, so golden-file tests hold it exactly).  :func:`render_html`
turns that report into a self-contained static dashboard: inline CSS +
SVG, no scripts, no external assets, light/dark via
``prefers-color-scheme``.

Sections:

- **bench**: per-cell throughput trajectory (every committed
  ``BENCH_serving.json`` point), with the median-of-last-N robust
  baseline and the latest point's delta against it — the same
  statistics ``tools/bench_guard.py`` gates on;
- **variants**: the control-plane variant comparison each scenario's
  bench cells imply (plain vs ``forecast`` vs ``persist``);
- **policies** / **frontier**: scenario x policy comparison table and
  the SLO-attainment-vs-energy frontier, when serving result rows
  (``serve-sim --json`` / ``sweep --json`` files) are supplied;
- **regions**: per-region SLO-attainment and $/J rows from geo runs
  (``ev: "region"`` trace rows or ``serve-sim --geo --json`` rows);
- **runs**: per-experiment ledger aggregates (runs, cache share,
  errors, elapsed);
- **timeline**: per-run metrics timelines from saved telemetry traces
  (in-system requests, arrival rate, replicas, windowed p95, energy),
  one per worker shard / geo region in scale-out traces.
"""

from __future__ import annotations

import html
from typing import Optional, Sequence

from repro.eval.blocks import (
    AGGREGATORS,
    AggregateBlock,
    Row,
    SortBlock,
)

#: Schema tag carried by every report.
REPORT_SCHEMA = "repro-report/1"

#: Bench points the robust baseline looks back over (median of the
#: last N per cell), matching the guard's default window.
DEFAULT_WINDOW = 5


def _round(value, digits: int = 4):
    return round(value, digits) if isinstance(value, float) else value


# ---------------------------------------------------------------------------
# Report assembly (pure data, deterministic)
# ---------------------------------------------------------------------------
def _bench_cells(bench_rows: Sequence[Row], window: int) -> list[Row]:
    median = AGGREGATORS["median"]
    mad = AGGREGATORS["mad"]
    cells: dict[str, list[Row]] = {}
    for row in bench_rows:
        cells.setdefault(row["cell"], []).append(row)
    out = []
    for cell, points in sorted(cells.items()):
        tail = [p["rps"] for p in points[-window:]]
        latest = points[-1]
        med = median(tail)
        rel_mad = (mad(tail) / med) if med else 0.0
        entry: Row = {
            "cell": cell,
            "scenario": latest["scenario"],
            "n_requests": latest["n_requests"],
            "variant": latest["variant"],
            "points": len(points),
            "latest_rps": _round(latest["rps"], 1),
            "median_rps": _round(med, 1),
            "delta_pct": _round(100.0 * (latest["rps"] / med - 1.0), 1)
            if med else 0.0,
            "noise_pct": _round(100.0 * rel_mad, 1),
            "trajectory": [_round(p["rps"], 1) for p in points],
        }
        if isinstance(latest.get("cold_rps"), (int, float)):
            entry["latest_cold_rps"] = _round(latest["cold_rps"], 1)
        out.append(entry)
    return out


def _variant_table(bench_rows: Sequence[Row]) -> list[Row]:
    """Latest rps per variant, one row per (scenario, n_requests)."""
    latest: dict[tuple, dict[str, float]] = {}
    for row in bench_rows:
        key = (row["scenario"], row["n_requests"])
        latest.setdefault(key, {})[row["variant"] or "plain"] = \
            _round(row["rps"], 1)
    out = []
    for (scenario, n_requests), variants in sorted(latest.items()):
        entry: Row = {"scenario": scenario, "n_requests": n_requests}
        entry.update(dict(sorted(variants.items())))
        out.append(entry)
    return out


#: Serving-row columns the policy comparison keeps, in display order.
#: The resilience counters (timeouts/retries/hedges/cancels/degraded)
#: only appear on rows from runs with an active policy, so plain grids
#: stay uncluttered.
_POLICY_METRICS = ("p50_us", "p95_us", "p99_us", "throughput_rps",
                   "energy_per_req_uj", "mean_batch", "utilization",
                   "slo_attain", "shed_rate", "timeouts", "retries",
                   "hedges", "cancels", "degraded", "memo_seeded",
                   "warm_hits")


def _policy_table(grid_rows: Sequence[Row]) -> list[Row]:
    present = [m for m in _POLICY_METRICS
               if any(isinstance(r.get(m), (int, float))
                      for r in grid_rows)]
    if not present:
        return []
    by = [c for c in ("scenario", "policy", "scale", "dispatch",
                      "resilience")
          if any(r.get(c) is not None for r in grid_rows)]
    if not by:
        return []
    rows = AggregateBlock(
        by=by, metrics={m: "mean" for m in present}
    ).apply(list(grid_rows))
    rows = SortBlock(by).apply(rows)
    return [{k: _round(v) for k, v in row.items()} for row in rows]


def _frontier(grid_rows: Sequence[Row]) -> list[Row]:
    """SLO-attainment vs energy points, labelled by their policy."""
    out = []
    for row in grid_rows:
        attain = row.get("slo_attain")
        energy = row.get("energy_total_uj", row.get("energy_per_req_uj"))
        if not isinstance(attain, (int, float)) \
                or not isinstance(energy, (int, float)):
            continue
        label = str(row.get("scale") or row.get("policy") or "?")
        if row.get("scenario"):
            label = f"{row['scenario']}/{label}"
        if row.get("region"):
            # per-region rows from a geo run: one frontier point per
            # region, so a fleet fans into distinguishable markers
            label = f"{label}@{row['region']}"
        out.append({"label": label, "energy_uj": _round(energy),
                    "slo_attain": _round(attain)})
    return SortBlock("label").apply(out)


#: Region-row columns the geo section keeps, in display order.
_REGION_METRICS = ("requests", "share", "p50_us", "p95_us",
                   "slo_attain", "energy_per_req_uj", "usd_per_mj",
                   "usd_per_req", "net_delay_us", "remote_frac",
                   "rerouted", "retried")


def _region_table(grid_rows: Sequence[Row],
                  telemetry_rows: Sequence[Row]) -> list[Row]:
    """Per-region SLO-attainment and $/J rows from geo runs.

    Sources both surfaces a geo run leaves behind: ``ev: "region"``
    summary rows in a saved telemetry trace (``serve-sim --geo
    --trace``) and per-region rows in supplied serving-result JSON
    (``serve-sim --geo --json``, recognised by their ``region`` +
    ``usd_per_mj`` columns).
    """
    out = []
    seen = set()
    rows = [r for r in telemetry_rows if r.get("ev") == "region"]
    rows += [r for r in grid_rows
             if r.get("region") is not None and "usd_per_mj" in r]
    for row in rows:
        entry: Row = {
            "scenario": row.get("scenario", ""),
            "policy": row.get("policy", ""),
            "region": row.get("region", ""),
            "accelerator": row.get("accelerator", ""),
            "replicas": row.get("replicas", 0),
        }
        entry.update({m: _round(row[m]) for m in _REGION_METRICS
                      if isinstance(row.get(m), (int, float))})
        key = tuple(sorted(entry.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(entry)
    return SortBlock(("scenario", "policy", "region")).apply(out)


def _ledger_summary(ledger_rows: Sequence[Row]) -> Row:
    rows = list(ledger_rows)
    per_experiment = AggregateBlock(
        by=("experiment",),
        metrics={
            "runs": ("run_id", "count"),
            "cached": ("cached", "sum"),
            "errors": ("error", lambda vs: sum(1 for v in vs if v)),
            "median_elapsed_s": ("elapsed_s", "median"),
            "rows_total": ("row_count", "sum"),
        },
    ).apply(rows)
    per_experiment = SortBlock("experiment").apply(per_experiment)
    return {
        "total": len(rows),
        "cached": sum(1 for r in rows if r.get("cached")),
        "errors": sum(1 for r in rows if r.get("error")),
        "experiments": [{k: _round(v) for k, v in row.items()}
                        for row in per_experiment],
    }


def _timeline_runs(telemetry_rows: Sequence[Row]) -> list[Row]:
    """One timeline per (trace, run[, shard]): meta + the samples.

    Sharded traces tag every row with a ``shard`` id and geo traces
    with a ``region`` name; each worker gets its own timeline entry
    (and report row), so a scale-out run renders one timeline per
    shard / region instead of collapsing the workers into one mixed
    series.
    """
    metas: dict[tuple, Row] = {}
    samples: dict[tuple, list[Row]] = {}
    counts: dict[tuple, int] = {}
    for row in telemetry_rows:
        if row.get("ev") == "region":
            continue  # summary rows, rendered by the geo section
        key = (row.get("trace", ""), row.get("run", 0),
               row.get("shard"), row.get("region"))
        kind = row.get("ev")
        if kind == "run":
            metas[key] = row
        elif kind == "sample":
            samples.setdefault(key, []).append(row)
        else:
            counts[key] = counts.get(key, 0) + 1
    out = []
    for key in sorted(set(metas) | set(samples), key=str):
        meta = metas.get(key, {})
        series = samples.get(key, [])
        entry: Row = {
            "trace": key[0],
            "run": key[1],
            "scenario": meta.get("scenario", ""),
            "policy": meta.get("policy", ""),
            "events": counts.get(key, 0),
            "samples": [{
                "t": s.get("t"),
                "in_system": s.get("in_system"),
                "replicas": s.get("replicas"),
                "rate_rps": _round(s.get("rate_rps", 0.0), 1),
                "p95_s": s.get("p95_s"),
                "energy_j": s.get("energy_j"),
            } for s in series],
        }
        # only sharded / geo traces carry their column, so plain
        # reports (and their goldens) stay byte-identical
        if key[2] is not None:
            entry["shard"] = key[2]
        if key[3] is not None:
            entry["region"] = key[3]
        out.append(entry)
    return out


def build_report(bench_rows: Sequence[Row],
                 ledger_rows: Sequence[Row] = (),
                 grid_rows: Sequence[Row] = (),
                 telemetry_rows: Sequence[Row] = (),
                 window: int = DEFAULT_WINDOW) -> dict:
    """Assemble the report dict all surfaces render from.

    Inputs are pre-loaded rows (see the :mod:`repro.eval.blocks`
    loaders); the output contains nothing non-deterministic, so equal
    inputs always produce an equal report.
    """
    grid_rows = list(grid_rows)
    telemetry_rows = list(telemetry_rows)
    return {
        "schema": REPORT_SCHEMA,
        "window": window,
        "bench": {"cells": _bench_cells(list(bench_rows), window)},
        "variants": _variant_table(list(bench_rows)),
        "policies": _policy_table(grid_rows),
        "frontier": _frontier(grid_rows),
        "regions": _region_table(grid_rows, telemetry_rows),
        "runs": _ledger_summary(list(ledger_rows)),
        "timeline": _timeline_runs(telemetry_rows),
    }


# ---------------------------------------------------------------------------
# HTML rendering: inline CSS + SVG, zero scripts / external assets
# ---------------------------------------------------------------------------
_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --plane: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #006300; --critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--plane); color: var(--ink-1);
  margin: 0; padding: 24px; line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --plane: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --good: #0ca30c; --critical: #d03b3b;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 2px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--ink-2); font-size: 13px; margin: 0 0 18px; }
.viz-root .cards { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px;
}
.viz-root .card .t { font-size: 12px; color: var(--ink-2); margin: 0 0 4px; }
.viz-root table {
  border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
  font-size: 12.5px; margin: 6px 0;
}
.viz-root th, .viz-root td {
  padding: 5px 10px; text-align: right;
  font-variant-numeric: tabular-nums;
  border-bottom: 1px solid var(--grid);
}
.viz-root th {
  color: var(--ink-2); font-weight: 600; text-align: right;
  border-bottom: 1px solid var(--axis);
}
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
.viz-root tr:last-child td { border-bottom: none; }
.viz-root .up { color: var(--good); }
.viz-root .down { color: var(--critical); }
.viz-root svg text {
  font-family: inherit; font-size: 10px; fill: var(--muted);
  font-variant-numeric: tabular-nums;
}
.viz-root svg .lbl { fill: var(--ink-2); }
"""


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value != value:  # NaN
            return ""
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def _table(rows: Sequence[Row], columns: Sequence[str],
           classes: Optional[dict] = None) -> str:
    head = "".join(f"<th>{html.escape(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column)
            cls = (classes or {}).get(column, lambda v: "")(value) \
                if classes and column in classes else ""
            attr = f' class="{cls}"' if cls else ""
            cells.append(f"<td{attr}>{html.escape(_fmt(value))}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _scale(values: Sequence[float]) -> tuple[float, float]:
    low, high = min(values), max(values)
    if low == high:
        pad = abs(low) * 0.1 or 1.0
        return low - pad, high + pad
    pad = (high - low) * 0.08
    return low - pad, high + pad


def _line_chart(values: Sequence[float], *, width: int = 300,
                height: int = 90, reference: Optional[float] = None,
                unit: str = "", tooltip: str = "point {i}: {v}",
                color: str = "var(--series-1)") -> str:
    """One single-series line: 2px stroke, hairline grid, recessive
    min/max axis labels, dashed reference line, last point marked and
    direct-labelled, native ``<title>`` tooltips per point."""
    pad_l, pad_r, pad_t, pad_b = 44, 10, 8, 14
    inner_w = width - pad_l - pad_r
    inner_h = height - pad_t - pad_b
    domain = list(values) + ([reference] if reference is not None else [])
    lo, hi = _scale(domain)

    def x(i: int) -> float:
        return pad_l + (inner_w * i / max(1, len(values) - 1))

    def y(v: float) -> float:
        return pad_t + inner_h * (1.0 - (v - lo) / (hi - lo))

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    for frac, value in ((0.0, hi), (1.0, lo)):
        gy = pad_t + inner_h * frac
        parts.append(f'<line x1="{pad_l}" y1="{gy:.1f}" '
                     f'x2="{width - pad_r}" y2="{gy:.1f}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{pad_l - 4}" y="{gy + 3:.1f}" '
                     f'text-anchor="end">{_fmt(value)}</text>')
    if reference is not None:
        ry = y(reference)
        parts.append(f'<line x1="{pad_l}" y1="{ry:.1f}" '
                     f'x2="{width - pad_r}" y2="{ry:.1f}" '
                     f'stroke="var(--axis)" stroke-width="1" '
                     f'stroke-dasharray="3 3"/>')
    if len(values) > 1:
        points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linejoin="round"/>')
    for i, value in enumerate(values):
        last = i == len(values) - 1
        r = 3.5 if last else 2.5
        title = html.escape(tooltip.format(i=i, v=_fmt(value)))
        parts.append(
            f'<circle cx="{x(i):.1f}" cy="{y(value):.1f}" r="{r}" '
            f'fill="{color}" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{title}</title></circle>'
        )
    last_v = values[-1]
    anchor = "end" if len(values) > 1 else "start"
    lx = x(len(values) - 1) - (4 if anchor == "end" else -6)
    ly = max(10.0, y(last_v) - 7)
    parts.append(f'<text x="{lx:.1f}" y="{ly:.1f}" class="lbl" '
                 f'text-anchor="{anchor}">{_fmt(last_v)}{unit}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _scatter_chart(points: Sequence[Row], *, x_key: str, y_key: str,
                   label_key: str, width: int = 460,
                   height: int = 220, x_label: str = "",
                   y_label: str = "") -> str:
    """Direct-labelled scatter: identity rides the text label beside
    each marker, never color alone (single-hue markers)."""
    pad_l, pad_r, pad_t, pad_b = 52, 96, 10, 26
    inner_w = width - pad_l - pad_r
    inner_h = height - pad_t - pad_b
    xs = [p[x_key] for p in points]
    ys = [p[y_key] for p in points]
    x_lo, x_hi = _scale(xs)
    y_lo, y_hi = _scale(ys)

    def sx(v: float) -> float:
        return pad_l + inner_w * (v - x_lo) / (x_hi - x_lo)

    def sy(v: float) -> float:
        return pad_t + inner_h * (1.0 - (v - y_lo) / (y_hi - y_lo))

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    for frac in (0.0, 0.5, 1.0):
        gy = pad_t + inner_h * frac
        value = y_hi - (y_hi - y_lo) * frac
        parts.append(f'<line x1="{pad_l}" y1="{gy:.1f}" '
                     f'x2="{pad_l + inner_w}" y2="{gy:.1f}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{pad_l - 4}" y="{gy + 3:.1f}" '
                     f'text-anchor="end">{_fmt(value, 2)}</text>')
    for frac in (0.0, 1.0):
        gx = pad_l + inner_w * frac
        value = x_lo + (x_hi - x_lo) * frac
        parts.append(f'<text x="{gx:.1f}" y="{height - 8}" '
                     f'text-anchor="middle">{_fmt(value)}</text>')
    if x_label:
        parts.append(f'<text x="{pad_l + inner_w / 2:.1f}" '
                     f'y="{height - 8}" text-anchor="middle">'
                     f'{html.escape(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="{pad_l}" y="{pad_t - 2}" '
                     f'text-anchor="start">{html.escape(y_label)}'
                     f'</text>')
    for point in points:
        px, py = sx(point[x_key]), sy(point[y_key])
        label = html.escape(str(point[label_key]))
        title = (f"{label}: {_fmt(point[x_key])} / "
                 f"{_fmt(point[y_key], 3)}")
        parts.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{title}</title></circle>'
        )
        parts.append(f'<text x="{px + 7:.1f}" y="{py + 3:.1f}" '
                     f'class="lbl">{label}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _delta_class(value) -> str:
    if not isinstance(value, (int, float)) or value == 0:
        return ""
    return "up" if value > 0 else "down"


def _bench_section(report: dict) -> list[str]:
    cells = report["bench"]["cells"]
    if not cells:
        return ["<p class=\"sub\">no bench points</p>"]
    out = ["<div class=\"cards\">"]
    for cell in cells:
        chart = _line_chart(
            cell["trajectory"], reference=cell["median_rps"],
            tooltip="run {i}: {v} rps",
        )
        out.append(
            f"<div class=\"card\"><p class=\"t\">"
            f"{html.escape(cell['cell'])} &middot; rps, dashed = "
            f"median of last {report['window']}</p>{chart}</div>"
        )
    out.append("</div>")
    table = [dict(c, trajectory=None) for c in cells]
    out.append(_table(
        table,
        ["cell", "points", "latest_rps", "median_rps", "delta_pct",
         "noise_pct"],
        classes={"delta_pct": _delta_class},
    ))
    return out


def _timeline_section(report: dict) -> list[str]:
    out = []
    for run in report["timeline"]:
        samples = run["samples"]
        if not samples:
            continue
        title = " ".join(filter(None, [
            run["trace"], f"run {run['run']}",
            f"shard {run['shard']}" if "shard" in run else "",
            f"region {run['region']}" if "region" in run else "",
            run["scenario"], run["policy"],
        ]))
        out.append(f"<h2>timeline: {html.escape(title)}</h2>")
        out.append("<div class=\"cards\">")
        # one measure per chart: different scales never share an axis
        for key, label, unit in (
            ("in_system", "in-system requests", ""),
            ("rate_rps", "arrival rate (req/s)", ""),
            ("replicas", "replicas up", ""),
            ("p95_s", "windowed p95 (s)", ""),
            ("energy_j", "energy so far (J)", ""),
        ):
            values = [s[key] for s in samples
                      if isinstance(s.get(key), (int, float))]
            if not values or all(v == values[0] for v in values):
                continue
            chart = _line_chart(values, tooltip="tick {i}: {v}",
                                unit=unit)
            out.append(f"<div class=\"card\"><p class=\"t\">"
                       f"{html.escape(label)}</p>{chart}</div>")
        out.append("</div>")
    return out


def render_html(report: dict, title: str = "repro serving report") -> str:
    """The self-contained dashboard (inline CSS + SVG, no scripts)."""
    cells = report["bench"]["cells"]
    runs = report["runs"]
    parts = [
        "<!doctype html><html><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body class=\"viz-root\">",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class=\"sub\">{len(cells)} bench cell(s) &middot; "
        f"{runs['total']} ledger run(s) &middot; "
        f"{len(report['timeline'])} telemetry run(s)</p>",
        "<h2>Bench trajectory per cell</h2>",
        *_bench_section(report),
    ]
    if report["variants"]:
        columns: list[str] = ["scenario", "n_requests"]
        for row in report["variants"]:
            columns += [c for c in row if c not in columns]
        parts.append("<h2>Variant comparison (latest rps)</h2>")
        parts.append(_table(report["variants"], columns))
    if report["policies"]:
        columns = []
        for row in report["policies"]:
            columns += [c for c in row if c not in columns]
        parts.append("<h2>Policy comparison</h2>")
        parts.append(_table(report["policies"], columns))
    if report.get("regions"):
        columns = ["scenario", "policy", "region", "accelerator",
                   "replicas"]
        for row in report["regions"]:
            columns += [c for c in row if c not in columns]
        parts.append("<h2>Geo regions (per-region SLO and $/J)</h2>")
        parts.append(_table(report["regions"], columns))
    if report["frontier"]:
        parts.append("<h2>SLO / energy frontier</h2>")
        parts.append(
            "<div class=\"card\">"
            + _scatter_chart(report["frontier"], x_key="energy_uj",
                             y_key="slo_attain", label_key="label",
                             x_label="energy (uJ)",
                             y_label="SLO attainment")
            + "</div>"
        )
    if runs["experiments"]:
        parts.append("<h2>Run ledger</h2>")
        parts.append(_table(
            runs["experiments"],
            ["experiment", "runs", "cached", "errors",
             "median_elapsed_s", "rows_total"],
        ))
    parts.extend(_timeline_section(report))
    parts.append("</body></html>")
    return "".join(parts)


def summary_rows(report: dict) -> list[Row]:
    """The per-cell table the CLI prints when not emitting JSON."""
    return [{
        "cell": c["cell"],
        "points": c["points"],
        "latest_rps": c["latest_rps"],
        "median_rps": c["median_rps"],
        "delta_pct": c["delta_pct"],
        "noise_pct": c["noise_pct"],
    } for c in report["bench"]["cells"]]
