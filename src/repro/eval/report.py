"""Small reporting helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        ConfigError: on empty input or non-positive entries.
    """
    values = list(values)
    if not values:
        raise ConfigError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
