"""Small reporting helpers shared by experiments and benchmarks."""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        ConfigError: on empty input or non-positive entries.
    """
    values = list(values)
    if not values:
        raise ConfigError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Raises:
        ConfigError: on empty input or ``q`` outside [0, 100].
    """
    ordered = sorted(values)
    if not ordered:
        raise ConfigError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigError("percentile rank must be in [0, 100]")
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def fraction_within(values: Iterable[float], bound: float) -> float:
    """Fraction of ``values`` at or below ``bound`` (SLO attainment).

    Non-finite entries (e.g. shed requests carrying ``inf``) count as
    misses.

    Raises:
        ConfigError: on empty input.
    """
    values = list(values)
    if not values:
        raise ConfigError("attainment of empty sequence")
    within = sum(1 for v in values if math.isfinite(v) and v <= bound)
    return within / len(values)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def to_json(payload: object) -> str:
    """The one JSON serialisation path for machine-readable output."""
    return json.dumps(payload, indent=2, default=str)


def render_rows(rows: Sequence[Mapping[str, object]],
                as_json: bool = False) -> str:
    """Render dict rows as a fixed-width table or a JSON array.

    The single formatting path shared by the CLI, the runtime commands
    and the examples; empty input renders an explicit notice instead of
    crashing on ``rows[0]``.
    """
    rows = list(rows)
    if as_json:
        return to_json(rows)
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, body)
