"""Per-operand access-stream statistics (the paper's Fig 6 structure).

Instead of materialising full address traces the way SCALE-SIM does, we
derive, per operand and per layer, the three quantities the SPM timing
model consumes:

- ``words``: total words fetched/stored;
- ``jumps``: number of discontinuities in the address stream — each is
  a random-access event (in a SHIFT lane it forces a rotation, in a
  RANDOM array it is simply one pipelined access);
- ``avg_jump_words``: mean address delta at a jump, which sets the
  SHIFT rotation cost.

Jump structure per operand (weight-stationary, layout-optimised as
SuperNPU's compiler would):

- **weights**: sequential inside a filter column; one jump per column
  per fold, of roughly a kernel volume (to the next filter's slice).
- **inputs**: within one output row the per-lane stream advances
  ``stride`` words per pixel; at each output-row boundary every row
  lane simultaneously jumps back over the kernel-window overlap
  (delta ~ kernel_w * in_c words).  1x1 kernels and fc layers have no
  overlap and jump only at fold boundaries.
- **psums**: circular sequential per column lane; a jump per row-fold
  transition (delta ~ 0: the stripe restarts where it began).
- **outputs**: streamed out sequentially; one jump per column fold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.systolic.mapping import WeightStationaryMapping


@dataclass(frozen=True)
class StreamStats:
    """Aggregate statistics of one operand's access stream.

    Attributes:
        words: total words moved (reads + writes where noted).
        jumps: stream discontinuities, counted as *simultaneous events*
            across lanes (a SHIFT array pays one rotation per event).
        avg_jump_words: mean address delta at a jump (words).
        rand_fetches: fine-grained random re-fetches — the kernel-window
            overlap rows a data-alignment unit cannot stream
            sequentially.  A big SHIFT SPM avoids them by storing the
            im2col-expanded copy (capacity for energy); a heterogeneous
            SPM serves them from its RANDOM array.
        stride_words: per-word address advance inside a run (1 =
            perfectly sequential; a SHIFT lane pays this many cells per
            word).
        simultaneous: True when all lanes jump at the same instant (the
            stall is paid once, not per lane).
        is_write: True for store streams.
    """

    words: int
    jumps: int
    avg_jump_words: float
    rand_fetches: int = 0
    stride_words: int = 1
    simultaneous: bool = True
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.words < 0 or self.jumps < 0:
            raise MappingError("stream statistics cannot be negative")


@dataclass(frozen=True)
class LayerTrace:
    """All four operand streams of one layer execution.

    Attributes:
        weights, inputs, psums, outputs: per-operand stream statistics.
    """

    weights: StreamStats
    inputs: StreamStats
    psums: StreamStats
    outputs: StreamStats

    @property
    def total_words(self) -> int:
        """Words moved across all operands."""
        return (self.weights.words + self.inputs.words + self.psums.words
                + self.outputs.words)

    @property
    def total_jumps(self) -> int:
        """Random-access events across all operands."""
        return (self.weights.jumps + self.inputs.jumps + self.psums.jumps
                + self.outputs.jumps)

    def streams(self) -> dict[str, StreamStats]:
        """Streams keyed by the paper's operand letters."""
        return {
            "alpha": self.weights,
            "beta": self.inputs,
            "delta": self.psums,
            "gamma": self.outputs,
        }


def layer_trace(mapping: WeightStationaryMapping,
                batch: int = 1) -> LayerTrace:
    """Derive the four operand streams for one mapped layer."""
    if batch < 1:
        raise MappingError("batch must be >= 1")
    layer = mapping.layer
    folds = mapping.folds
    pixels = mapping.pixels * batch

    # Weights: loaded once per fold regardless of batch; the weight
    # buffer acts as a streaming FIFO (fresh tiles queue behind the
    # current one), so fold boundaries are sequential — one nominal
    # jump event per fold with unit delta.
    weight_words = folds * mapping.rows_used * mapping.cols_used
    weights = StreamStats(
        words=weight_words,
        jumps=folds,
        avg_jump_words=1.0,
        simultaneous=True,
    )

    # Inputs: streamed per fold; row-boundary jumps for spatial kernels;
    # the (kh-1)/kh overlap rows of each window are re-fetches that only
    # a random-access array can serve without rotation or im2col
    # duplication.  Adjacent pixels coalesce about half of them into
    # line-sized runs.
    input_words = folds * pixels * mapping.rows_used
    if layer.kind == "fc":
        jumps_per_fold = 1
        jump_delta = 1.0
        overlap = 0.0
    elif layer.kernel_h == 1 and layer.kernel_w == 1:
        jumps_per_fold = 1
        jump_delta = float(layer.in_c)
        overlap = 0.0
    else:
        jumps_per_fold = layer.out_h * batch
        jump_delta = float(layer.kernel_w * layer.in_c)
        overlap = (layer.kernel_h - 1) / layer.kernel_h
    coalesce = 0.5
    inputs = StreamStats(
        words=input_words,
        jumps=folds * jumps_per_fold,
        avg_jump_words=jump_delta,
        rand_fetches=int(folds * pixels * overlap * coalesce),
        stride_words=layer.stride,
        simultaneous=True,
    )

    # PSums: read + write per intermediate row-fold.
    extra_row_folds = mapping.row_folds - 1
    psum_words = (2 * extra_row_folds * mapping.col_folds * layer.groups
                  * pixels * mapping.cols_used)
    psums = StreamStats(
        words=psum_words,
        jumps=2 * extra_row_folds * mapping.col_folds * layer.groups,
        avg_jump_words=1.0,
        simultaneous=True,
        is_write=True,
    )

    # Outputs: written once.
    outputs = StreamStats(
        words=pixels * layer.out_c,
        jumps=mapping.col_folds * layer.groups,
        avg_jump_words=1.0,
        simultaneous=True,
        is_write=True,
    )
    return LayerTrace(weights=weights, inputs=inputs, psums=psums,
                      outputs=outputs)
