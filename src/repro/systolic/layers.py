"""CNN layer descriptors.

A :class:`ConvLayer` is the unit the systolic simulator consumes.  All
CNN kinds the paper's six models need reduce to it:

- ``conv``: standard convolution;
- ``dwconv``: depthwise convolution (MobileNet) — each input channel is
  its own single-filter group, which maps terribly onto a weight-
  stationary array and is exactly why MobileNet behaves differently in
  Figs 18-21;
- ``fc``: fully connected, a 1x1 convolution over a 1x1 "image";
- ``pool``: pooling, which costs no MACs on the matrix unit but does
  stream data.

Word size is one byte throughout (the accelerator computes on 8-bit
quantities, as SuperNPU assumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Bytes per CNN data word.
WORD_BYTES = 1

VALID_KINDS = ("conv", "dwconv", "fc", "pool")


@dataclass(frozen=True)
class ConvLayer:
    """One layer of a CNN.

    Attributes:
        name: layer name, unique within a network.
        in_h, in_w, in_c: input feature-map height / width / channels.
        out_c: output channels (for dwconv this must equal in_c).
        kernel_h, kernel_w: filter spatial size.
        stride: spatial stride (same both dims).
        padding: spatial zero padding (same both dims).
        kind: one of ``conv``, ``dwconv``, ``fc``, ``pool``.
    """

    name: str
    in_h: int
    in_w: int
    in_c: int
    out_c: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0
    kind: str = "conv"

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ConfigError(f"{self.name}: unknown layer kind {self.kind}")
        for attr in ("in_h", "in_w", "in_c", "out_c", "kernel_h",
                     "kernel_w", "stride"):
            if getattr(self, attr) < 1:
                raise ConfigError(f"{self.name}: {attr} must be >= 1")
        if self.padding < 0:
            raise ConfigError(f"{self.name}: padding must be >= 0")
        if self.kind == "dwconv" and self.out_c != self.in_c:
            raise ConfigError(
                f"{self.name}: depthwise layers need out_c == in_c"
            )
        if self.out_h < 1 or self.out_w < 1:
            raise ConfigError(f"{self.name}: output shrinks to nothing")

    def __hash__(self) -> int:
        # Same field tuple the generated dataclass hash would use, but
        # computed once per instance — layer values key the serving
        # memo cache's structural fallback.  Safe: the dataclass is
        # frozen.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.in_h, self.in_w, self.in_c,
                      self.out_c, self.kernel_h, self.kernel_w,
                      self.stride, self.padding, self.kind))
            object.__setattr__(self, "_hash", h)
        return h

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def out_h(self) -> int:
        """Output feature-map height."""
        return (self.in_h + 2 * self.padding - self.kernel_h) // self.stride + 1

    @property
    def out_w(self) -> int:
        """Output feature-map width."""
        return (self.in_w + 2 * self.padding - self.kernel_w) // self.stride + 1

    @property
    def out_pixels(self) -> int:
        """Output pixels per image (H' * W')."""
        return self.out_h * self.out_w

    @property
    def kernel_volume(self) -> int:
        """Weights contributing to one output element.

        For conv: R*S*C; for depthwise: R*S (single channel); for fc:
        the full input feature count; pooling has none.
        """
        if self.kind == "conv":
            return self.kernel_h * self.kernel_w * self.in_c
        if self.kind == "dwconv":
            return self.kernel_h * self.kernel_w
        if self.kind == "fc":
            return self.in_h * self.in_w * self.in_c
        return 0

    @property
    def groups(self) -> int:
        """Independent filter groups (in_c for depthwise, else 1)."""
        return self.in_c if self.kind == "dwconv" else 1

    # ------------------------------------------------------------------
    # Work and footprints (per image)
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations per image."""
        if self.kind == "pool":
            return 0
        if self.kind == "fc":
            return self.kernel_volume * self.out_c
        if self.kind == "dwconv":
            return self.out_pixels * self.kernel_volume * self.in_c
        return self.out_pixels * self.kernel_volume * self.out_c

    @property
    def weight_bytes(self) -> int:
        """Weight footprint (bytes)."""
        if self.kind == "pool":
            return 0
        if self.kind == "dwconv":
            return self.kernel_h * self.kernel_w * self.in_c * WORD_BYTES
        return self.kernel_volume * self.out_c * WORD_BYTES

    @property
    def input_bytes(self) -> int:
        """Input activation footprint per image (bytes)."""
        return self.in_h * self.in_w * self.in_c * WORD_BYTES

    @property
    def output_bytes(self) -> int:
        """Output activation footprint per image (bytes)."""
        if self.kind == "fc":
            return self.out_c * WORD_BYTES
        return self.out_pixels * self.out_c * WORD_BYTES


@dataclass(frozen=True)
class Network:
    """An ordered CNN model.

    Attributes:
        name: model name.
        layers: layers in execution order.
    """

    name: str
    layers: tuple[ConvLayer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigError(f"network {self.name} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ConfigError(f"network {self.name} has duplicate layer names")

    def __hash__(self) -> int:
        # One hash per instance (the layers tuple re-hashes every
        # ConvLayer otherwise); see ConvLayer.__hash__.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.layers))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def total_macs(self) -> int:
        """MACs per image across all layers."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total model weights (bytes)."""
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def max_activation_bytes(self) -> int:
        """Largest single-layer activation working set per image (bytes).

        Bounds how many images of intermediate state fit in an SPM; the
        batch-capacity analysis of Sec 6.2 hinges on this.
        """
        return max(layer.input_bytes + layer.output_bytes
                   for layer in self.layers)

    def compute_layers(self) -> tuple[ConvLayer, ...]:
        """Layers that occupy the matrix unit (excludes pooling)."""
        return tuple(l for l in self.layers if l.kind != "pool")
