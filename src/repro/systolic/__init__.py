"""Systolic CNN accelerator simulator (SCALE-SIM substitute).

The paper drives its evaluation with SCALE-SIM [Samajdar 2018]: a
weight-stationary systolic-array model that yields per-layer compute
cycles and memory traces.  This package implements the equivalent
analytically:

- :mod:`repro.systolic.layers` -- CNN layer descriptors (conv / depthwise
  / fully-connected / pooling).
- :mod:`repro.systolic.mapping` -- weight-stationary fold decomposition
  onto an ``rows x cols`` PE array.
- :mod:`repro.systolic.trace` -- per-operand access-stream statistics:
  sequential run lengths, jump counts and jump address deltas (the
  structure paper Fig 6 visualises).
- :mod:`repro.systolic.memsys` -- scratchpad/DRAM service-time models:
  SHIFT lanes, random-access arrays, heterogeneous SPM, prefetching.
- :mod:`repro.systolic.simulator` -- per-layer and whole-network latency.
- :mod:`repro.systolic.energy` -- energy accounting incl. 400x cooling.
"""

from repro.systolic.layers import ConvLayer, Network
from repro.systolic.mapping import WeightStationaryMapping
from repro.systolic.trace import LayerTrace, StreamStats
from repro.systolic.memsys import (
    DramModel,
    HeterogeneousSpm,
    MemorySystem,
    RandomSpm,
    ShiftSpm,
    IdealSpm,
)
from repro.systolic.simulator import AcceleratorModel, LayerResult, RunResult
from repro.systolic.energy import EnergyModel, EnergyResult

__all__ = [
    "ConvLayer",
    "Network",
    "WeightStationaryMapping",
    "LayerTrace",
    "StreamStats",
    "DramModel",
    "HeterogeneousSpm",
    "MemorySystem",
    "RandomSpm",
    "ShiftSpm",
    "IdealSpm",
    "AcceleratorModel",
    "LayerResult",
    "RunResult",
    "EnergyModel",
    "EnergyResult",
]
