"""Concrete address-stream generation (the paper's Fig 6 view).

The aggregate :mod:`repro.systolic.trace` statistics are what the timing
model consumes; this module produces the *actual* address sequences for
small layers — the structure Fig 6 visualises, with per-column weight
streams that are sequential within a filter and jump between filters,
and per-row input streams that advance word-by-word and jump at output
row boundaries.  Used for trace inspection, layout debugging, and for
cross-checking the aggregate statistics in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.systolic.mapping import WeightStationaryMapping


@dataclass(frozen=True)
class AddressStream:
    """One lane's address stream.

    Attributes:
        lane: lane index (PE row for inputs, PE column for weights).
        addresses: word addresses in issue order.
    """

    lane: int
    addresses: tuple[int, ...]

    def run_lengths(self) -> list[int]:
        """Lengths of the maximal unit-stride sequential runs."""
        if not self.addresses:
            return []
        runs = [1]
        for prev, cur in zip(self.addresses, self.addresses[1:]):
            if cur == prev + 1:
                runs[-1] += 1
            else:
                runs.append(1)
        return runs

    def jump_count(self) -> int:
        """Discontinuities in the stream."""
        return len(self.run_lengths()) - 1

    def jump_deltas(self) -> list[int]:
        """Address deltas at each discontinuity."""
        deltas = []
        for prev, cur in zip(self.addresses, self.addresses[1:]):
            if cur != prev + 1:
                deltas.append(cur - prev)
        return deltas


def weight_addresses(mapping: WeightStationaryMapping,
                     fold: int = 0, max_lanes: int = 4
                     ) -> list[AddressStream]:
    """Per-column weight address streams for one fold (Fig 6 left).

    Weights are laid out filter-major: filter k occupies
    ``[k * kernel_volume, (k + 1) * kernel_volume)``.  Column c of fold
    (r, q) streams the r-th kernel-volume slice of filter
    ``q * cols + c`` — sequential within the slice, a jump of about a
    kernel volume between columns.
    """
    layer = mapping.layer
    if layer.kind == "pool":
        raise MappingError("pooling has no weights")
    row_fold = fold % mapping.row_folds
    col_fold = fold // mapping.row_folds
    base_row = row_fold * mapping.rows
    streams = []
    for c in range(min(mapping.cols_used, max_lanes)):
        filt = col_fold * mapping.cols + c
        start = filt * layer.kernel_volume + base_row
        count = min(mapping.rows, layer.kernel_volume - base_row)
        streams.append(AddressStream(
            lane=c,
            addresses=tuple(range(start, start + max(0, count))),
        ))
    return streams


def input_addresses(mapping: WeightStationaryMapping, fold: int = 0,
                    lane: int = 0, max_pixels: int = 64) -> AddressStream:
    """One PE row's input address stream for one fold (Fig 6 right).

    The lane serves kernel offset ``base_row + lane`` = (r, s, c) of the
    flattened kernel; for output pixel (y, x) it reads input word
    ``((y * stride + r) * in_w + (x * stride + s)) * in_c + c``
    (padding reads map to the nearest valid word).  Within an output
    row the stream advances by ``stride * in_c``; at a row boundary it
    jumps backwards over the window overlap.
    """
    layer = mapping.layer
    if layer.kind in ("fc", "pool"):
        # fc streams its flattened input sequentially
        count = min(layer.kernel_volume, max_pixels)
        return AddressStream(lane=lane,
                             addresses=tuple(range(count)))
    row_fold = fold % mapping.row_folds
    offset = row_fold * mapping.rows + lane
    kernel_w = layer.kernel_w
    r = offset // (kernel_w * layer.in_c)
    rem = offset % (kernel_w * layer.in_c)
    s = rem // layer.in_c
    c = rem % layer.in_c
    addresses = []
    for pixel in range(min(layer.out_pixels, max_pixels)):
        y = pixel // layer.out_w
        x = pixel % layer.out_w
        in_y = min(max(y * layer.stride + r - layer.padding, 0),
                   layer.in_h - 1)
        in_x = min(max(x * layer.stride + s - layer.padding, 0),
                   layer.in_w - 1)
        addresses.append((in_y * layer.in_w + in_x) * layer.in_c + c)
    return AddressStream(lane=lane, addresses=tuple(addresses))


def output_addresses(mapping: WeightStationaryMapping,
                     fold: int = 0, lane: int = 0,
                     max_pixels: int = 64) -> AddressStream:
    """One PE column's output address stream (sequential by design)."""
    layer = mapping.layer
    col_fold = fold // mapping.row_folds
    channel = col_fold * mapping.cols + lane
    addresses = tuple(
        pixel * layer.out_c + channel
        for pixel in range(min(layer.out_pixels, max_pixels))
    )
    return AddressStream(lane=lane, addresses=addresses)
