"""Inference energy accounting, including the 400x cryo-cooling tax.

Energy per inference splits into (paper Figs 20/21):

- **matrix**: MAC energy in the PE array (ERSFQ for SFQ designs, CMOS
  for the TPU) plus clock distribution;
- **SPM dynamic**: SHIFT lane shifts (every DFF in a lane pulses per
  advance — the Fig 16 effect) and RANDOM array accesses;
- **SPM static**: leakage integrated over the run (ERSFQ SHIFT leaks
  nothing; the CMOS sub-banks of the RANDOM array do);
- **DRAM**: spill traffic only.

Everything dissipated at 4 K is multiplied by the cooling factor
(Sec 5: 400x, citing Holmes 2013); the TPU and DRAM run warm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfq.constants import CRYO_COOLING_FACTOR
from repro.systolic.simulator import RunResult


@dataclass(frozen=True)
class EnergyResult:
    """Energy decomposition of one run (J, cooling included).

    Attributes:
        matrix: matrix-unit energy.
        spm_dynamic: SPM dynamic energy.
        spm_static: SPM leakage energy.
        dram: DRAM access energy.
    """

    matrix: float
    spm_dynamic: float
    spm_static: float
    dram: float

    @property
    def total(self) -> float:
        """Total energy per run (J)."""
        return self.matrix + self.spm_dynamic + self.spm_static + self.dram

    def share(self, component: str) -> float:
        """Fraction of total energy in one component."""
        value = getattr(self, component)
        return value / self.total if self.total else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Per-accelerator energy coefficients.

    Attributes:
        mac_energy: energy per MAC (J).  ERSFQ dissipation is
            activity-proportional, so SuperNPU's 1.9 W at its 842 TMAC/s
            peak (Sec 5) prices a MAC at ~2.26 fJ chip-level (logic +
            clock distribution); zero for the TPU, whose draw is carried
            by ``idle_power``.
        idle_power: whole-chip power drawn for the full run duration
            (W); carries the TPU's ~40 W average draw.
        shift_step_energy: energy of one SHIFT lane advance (J): every
            DFF of the clocked lane segment pulses (0.1 fJ x ~50% ones).
        random_access_energy: energy per RANDOM array line access (J).
        spm_leakage: total SPM standby power (W).
        cooled: True when the accelerator sits in the 4 K cryostat.
        dram_energy_per_byte: spill energy (J/B).
    """

    mac_energy: float
    idle_power: float
    shift_step_energy: float
    random_access_energy: float
    spm_leakage: float
    cooled: bool
    dram_energy_per_byte: float = 15e-12

    def __post_init__(self) -> None:
        if self.mac_energy < 0 or self.idle_power < 0:
            raise ConfigError("powers must be non-negative")
        if self.mac_energy == 0 and self.idle_power == 0:
            raise ConfigError("the matrix unit must draw some power")

    @property
    def cooling(self) -> float:
        """Wall-energy multiplier for dissipation at 4 K."""
        return CRYO_COOLING_FACTOR if self.cooled else 1.0

    def evaluate(self, run: RunResult) -> EnergyResult:
        """Energy of one simulated run (J, wall energy)."""
        macs = run.network.total_macs * run.batch
        matrix = macs * self.mac_energy + self.idle_power * run.latency

        shift_dyn = sum(l.shift_steps for l in run.layers) * (
            self.shift_step_energy
        )
        random_dyn = sum(l.random_accesses for l in run.layers) * (
            self.random_access_energy
        )
        static = self.spm_leakage * run.latency
        dram = sum(l.spill_bytes for l in run.layers) * (
            self.dram_energy_per_byte
        )
        cool = self.cooling
        return EnergyResult(
            matrix=matrix * cool,
            spm_dynamic=(shift_dyn + random_dyn) * cool,
            spm_static=static * cool,
            dram=dram,  # DRAM sits outside the cryostat
        )
