"""Weight-stationary mapping of a layer onto the PE array.

The mapping follows SCALE-SIM's weight-stationary dataflow (the TPU's
and SuperNPU's): each PE holds one weight; a column accumulates one
output channel; a row corresponds to one element of the flattened
kernel.  A layer whose kernel volume exceeds the rows, or whose filter
count exceeds the columns, is processed in *folds*; partial sums (PSums)
carry across row-folds.

Depthwise layers map group-by-group: each group offers only R*S kernel
rows and a single output column, so array utilisation collapses — the
effect that separates MobileNet from the pack in the paper's Figs 18-21.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MappingError
from repro.systolic.layers import ConvLayer


@dataclass(frozen=True)
class WeightStationaryMapping:
    """Fold decomposition of one layer on an ``rows x cols`` array.

    Attributes:
        layer: the layer being mapped.
        rows: PE array rows (kernel dimension).
        cols: PE array columns (filter dimension).
    """

    layer: ConvLayer
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise MappingError("PE array must have positive dimensions")
        if self.layer.kind == "pool":
            raise MappingError(
                f"{self.layer.name}: pooling does not map to the matrix unit"
            )

    # ------------------------------------------------------------------
    # Fold structure
    # ------------------------------------------------------------------
    @property
    def row_folds(self) -> int:
        """Folds along the kernel (row) dimension."""
        return max(1, math.ceil(self.layer.kernel_volume / self.rows))

    @property
    def col_folds(self) -> int:
        """Folds along the filter (column) dimension, per group."""
        filters_per_group = self.layer.out_c // self.layer.groups
        return max(1, math.ceil(filters_per_group / self.cols))

    @property
    def folds(self) -> int:
        """Total fold iterations (row folds x col folds x groups)."""
        return self.row_folds * self.col_folds * self.layer.groups

    @property
    def rows_used(self) -> int:
        """Average active rows per fold."""
        return min(self.rows, self.layer.kernel_volume)

    @property
    def cols_used(self) -> int:
        """Average active columns per fold."""
        filters_per_group = self.layer.out_c // self.layer.groups
        return min(self.cols, filters_per_group)

    @property
    def pixels(self) -> int:
        """Output pixels streamed per fold per image."""
        return self.layer.out_pixels

    # ------------------------------------------------------------------
    # Cycle counts (pure compute, no memory stalls)
    # ------------------------------------------------------------------
    def stream_cycles(self, batch: int = 1) -> int:
        """Cycles to stream one fold's pixels for ``batch`` images.

        One new input vector enters per cycle; the wavefront needs
        rows + cols - 1 extra cycles to fill and drain.
        """
        if batch < 1:
            raise MappingError("batch must be >= 1")
        return self.pixels * batch + self.rows_used + self.cols_used - 1

    @property
    def weight_load_cycles(self) -> int:
        """Cycles to load one fold's weights into the array.

        Weights enter column-parallel, one row wave per cycle.
        """
        return self.rows_used

    def compute_cycles(self, batch: int = 1) -> int:
        """Total matrix-unit cycles for the layer (no memory stalls)."""
        per_fold = self.stream_cycles(batch) + self.weight_load_cycles
        return self.folds * per_fold

    def utilization(self, batch: int = 1) -> float:
        """MAC utilisation of the array over the compute cycles."""
        total_macs = self.layer.macs * batch
        cycles = self.compute_cycles(batch)
        peak = self.rows * self.cols
        if cycles == 0:
            return 0.0
        return total_macs / (cycles * peak)

    # ------------------------------------------------------------------
    # Working sets per fold (bytes, for the compiler/capacity checks)
    # ------------------------------------------------------------------
    @property
    def weight_tile_bytes(self) -> int:
        """Weight bytes resident per fold."""
        return self.rows_used * self.cols_used

    def input_stripe_bytes(self, batch: int = 1) -> int:
        """Input bytes streamed per fold."""
        return self.pixels * batch * self.rows_used

    def psum_stripe_bytes(self, batch: int = 1) -> int:
        """PSum bytes carried between row-folds (4-byte accumulators)."""
        if self.row_folds == 1:
            return 0
        return self.pixels * batch * self.cols_used * 4

    def output_stripe_bytes(self, batch: int = 1) -> int:
        """Output bytes produced per column-fold."""
        return self.pixels * batch * self.cols_used
