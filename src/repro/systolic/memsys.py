"""Scratchpad and DRAM service-time models.

The simulator charges each operand stream of a layer (see
:mod:`repro.systolic.trace`) against the SPM that holds it.  The model
captures the four regimes the paper contrasts:

1. **SHIFT lanes** stream sequentially at one word per cycle and pay a
   *rotation* of ``delta`` cells for every jump — the "sequentially
   searching the input and PSum data" cost that caps SuperNPU at 16% of
   peak (Sec 3).  With batch-interleaved layout most jump rotations
   amortise across the batch (a lane revisits the same discontinuity
   once per batch row rather than once per image), which is where
   SuperNPU's 2.5x batch gain comes from.
2. **Non-pipelined random arrays** (VTM / Josephson-CMOS SRAM / MRAM /
   SNM) serve one access per *access latency*: a random fetch stalls the
   pipeline for the full latency, and a sequential stream is
   line-amortised but still issue-limited — why hSRAM/hMRAM/hSNM lose
   to plain SHIFT in Fig 7.
3. **The pipelined CMOS-SFQ array** issues one line per ~0.103 ns
   initiation interval; without prefetching each random fetch still
   exposes the (short) pipeline latency; with the ILP compiler's
   prefetching, transfers overlap streaming and only the bandwidth
   bound remains (the ``max`` composition).
4. **DRAM** charges only capacity spills at 300 GB/s, matching the
   paper's methodology ("SPMs with such capacities are large enough for
   each layer ... without generating thrashing traffic to DRAM").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.systolic.trace import StreamStats
from repro.units import GB, NS

#: Fraction of SHIFT jump rotations that survive batch interleaving.
#: With a batch-interleaved layout a lane crosses each discontinuity
#: once per batch of rows instead of once per image; layout slack keeps
#: a residual per-image cost.  Calibrated so SuperNPU's batch gain lands
#: near the paper's 2.5x (16% -> 40% of peak).
JUMP_BATCH_RESIDUAL = 0.45


def amortised_jumps(jumps: float, batch: int) -> float:
    """Jump count surviving batch-interleaved layout amortisation.

    The single amortisation rule shared by the SHIFT timing model
    (:meth:`ShiftSpm.stream_stall`) and the energy-side rotation-step
    accounting, so the two can never disagree on how many rotations a
    batched stream pays.

    Raises:
        ConfigError: for batch < 1.
    """
    if batch < 1:
        raise ConfigError("batch must be >= 1")
    if batch == 1:
        return jumps
    return jumps * (1.0 + (batch - 1) * JUMP_BATCH_RESIDUAL) / batch


@dataclass(frozen=True)
class ShiftSpm:
    """A SHIFT SPM serving one operand class.

    Attributes:
        capacity_bytes: array capacity.
        banks: parallel lanes.
        cell_time: per-word shift time (s), 0.02 ns.
        word_bits: lane width in DFFs.
    """

    capacity_bytes: int
    banks: int
    cell_time: float = 0.02 * NS
    word_bits: int = 128
    rotation_granularity_bytes: int = 2

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.banks < 1:
            raise ConfigError("SHIFT SPM needs positive capacity and banks")

    @property
    def lane_words(self) -> int:
        """Circular depth of one lane in lane words (word_bits wide)."""
        lane_bytes = self.capacity_bytes / self.banks
        return max(1, int(lane_bytes * 8 / self.word_bits))

    def jump_steps(self, avg_jump_words: float) -> float:
        """Lane-advance steps of one jump, clamped to a full circle.

        ``avg_jump_words`` is a delta in *data* words (bytes).  The lane
        is ``word_bits`` wide, but the data-alignment unit re-aligns a
        skewed stream at ``rotation_granularity_bytes`` per shift step,
        so the rotation cost is the byte delta over that granularity.
        """
        positions = avg_jump_words / self.rotation_granularity_bytes
        return min(max(positions, 1.0), float(self.lane_words))

    def jump_cost(self, avg_jump_words: float) -> float:
        """Rotation time of one jump (s)."""
        return self.jump_steps(avg_jump_words) * self.cell_time

    def stream_stall(self, stats: StreamStats, batch: int = 1) -> float:
        """Stall beyond compute streaming for one stream (s).

        Sequential words ride along with the compute wavefront (the
        stored copy is im2col-expanded / repacked dense, so strides cost
        nothing); jumps stall all lanes simultaneously for the rotation.
        ``stats`` must already reflect the batch (words scale with it);
        the batch amortisation applies to the jump count only.
        """
        return (amortised_jumps(stats.jumps, batch)
                * self.jump_cost(stats.avg_jump_words))


@dataclass(frozen=True)
class RandomSpm:
    """A banked random-access SPM (VTM/SRAM/MRAM/SNM or pipelined array).

    Attributes:
        capacity_bytes: array capacity.
        banks: sub-banks.
        read_latency: full read access latency (s).
        write_latency: full write access latency (s).
        issue_interval: sustained initiation interval per line (s); for
            non-pipelined arrays this equals the access latency.
        line_bytes: bytes per access.
        pipelined: True for the CMOS-SFQ array (random fetches expose
            the pipeline latency, not the full serialised latency, and
            transfers can be overlapped by prefetching).
    """

    capacity_bytes: int
    banks: int
    read_latency: float
    write_latency: float
    issue_interval: float
    line_bytes: int = 64
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.banks < 1:
            raise ConfigError("RANDOM SPM needs positive capacity and banks")
        if min(self.read_latency, self.write_latency,
               self.issue_interval) <= 0:
            raise ConfigError("RANDOM SPM timings must be positive")
        if self.line_bytes < 1:
            raise ConfigError("line size must be >= 1 byte")

    def lines(self, nbytes: int) -> int:
        """Line accesses needed for ``nbytes`` sequential bytes.

        Byte-denominated, like :meth:`bulk_transfer_time` — callers
        holding word counts must convert via ``WORD_BYTES`` first.
        """
        return max(0, math.ceil(nbytes / self.line_bytes))

    def bulk_transfer_time(self, nbytes: float, write: bool = False) -> float:
        """Time to move ``nbytes`` sequentially through the array (s)."""
        if nbytes <= 0:
            return 0.0
        interval = self.issue_interval
        if not self.pipelined:
            interval = self.write_latency if write else self.read_latency
        return self.lines(math.ceil(nbytes)) * interval

    #: Average slots an unscheduled access waits when bank conflicts are
    #: not compiler-avoided (Sec 4.2.2: pipelining requires requests to
    #: hit different sub-banks; without the ILP schedule some collide).
    UNSCHEDULED_CONFLICT_SLOTS = 3.0

    def random_access_cost(self, write: bool = False) -> float:
        """Exposed cost of one unprefetched random access (s).

        A pipelined array keeps several requests in flight even without
        compiler scheduling; conflicts cost a few extra issue slots.  A
        non-pipelined array serialises at its access latency.
        """
        if self.pipelined:
            return self.issue_interval * self.UNSCHEDULED_CONFLICT_SLOTS
        return self.write_latency if write else self.read_latency

    @property
    def bank_parallelism(self) -> float:
        """Concurrent accesses a homogeneous array sustains.

        Without a SHIFT+DAU front end, the array's banks serve the PE
        array's lanes directly; roughly half stay busy given address
        skew.
        """
        return max(1.0, self.banks / 2.0)

    def stream_service(self, stats: StreamStats) -> float:
        """Standalone service time of a whole stream, as the sole SPM (s).

        Serving a systolic operand stream without a DAU means one access
        per *word* (the im2col pattern defeats line reuse), spread over
        the banks; non-pipelined arrays issue at their access latency.
        """
        interval = self.issue_interval
        if not self.pipelined:
            interval = (self.write_latency if stats.is_write
                        else self.read_latency)
        return stats.words * interval / self.bank_parallelism

    def with_line(self, line_bytes: int) -> "RandomSpm":
        """A copy of this array with a different access line size."""
        return RandomSpm(
            capacity_bytes=self.capacity_bytes,
            banks=self.banks,
            read_latency=self.read_latency,
            write_latency=self.write_latency,
            issue_interval=self.issue_interval,
            line_bytes=line_bytes,
            pipelined=self.pipelined,
        )


@dataclass(frozen=True)
class IdealSpm:
    """A stall-free SPM (the TPU's many-banked unified buffer, or the
    hypothetical 0.02 ns random array of Sec 3)."""

    capacity_bytes: int

    def stream_stall(self, stats: StreamStats, batch: int = 1) -> float:
        """No stalls ever."""
        return 0.0


@dataclass(frozen=True)
class DramModel:
    """Off-chip DRAM: a bandwidth pipe for capacity spills.

    Attributes:
        bandwidth: sustained bandwidth (B/s), 300 GB/s per Sec 5.
        energy_per_byte: access energy (J/B).
    """

    bandwidth: float = 300 * GB
    energy_per_byte: float = 15e-12

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` (s)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bandwidth


@dataclass(frozen=True)
class HeterogeneousSpm:
    """SMART's SPM organisation: per-operand SHIFT arrays + one shared
    RANDOM array (Sec 4.1).

    Attributes:
        input_shift, weight_shift, output_shift: the three small SHIFT
            arrays (32 KB, 256 banks each in Table 4).
        random: the shared RANDOM array (28 MB pipelined CMOS-SFQ).
        prefetch_depth: ILP prefetch lookahead ``a`` (1 = no prefetch).
        burst_line_bytes: effective line size of compiler-coalesced bulk
            moves once prefetching is on (bursts span banks).
    """

    input_shift: ShiftSpm
    weight_shift: ShiftSpm
    output_shift: ShiftSpm
    random: RandomSpm
    prefetch_depth: int = 1
    burst_line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.prefetch_depth < 1:
            raise ConfigError("prefetch depth must be >= 1")

    @property
    def prefetching(self) -> bool:
        """Whether transfers overlap compute (a >= 2)."""
        return self.prefetch_depth >= 2

    def hiding_fraction(self) -> float:
        """Fraction of transfer time hidden under compute.

        a = 1 has no software prefetch: a pipelined RANDOM array still
        double-buffers in hardware (half hidden), a conventional one
        hides nothing.  a = 2 hides two thirds of the lookahead window;
        a = 3 approaches full hiding; beyond that returns diminish — the
        Fig 24 shape.
        """
        if self.prefetch_depth <= 1:
            return 0.5 if self.random.pipelined else 0.0
        return 1.0 - 1.0 / (3 ** (self.prefetch_depth - 1))


@dataclass(frozen=True)
class MemorySystem:
    """Everything the layer-time model needs about one accelerator's
    memory: the SPM scheme, DRAM, and the word clock.

    Attributes:
        scheme: "shift" (SuperNPU), "homogeneous" (one RANDOM array for
            everything), "heterogeneous" (SHIFT + RANDOM), or "ideal"
            (TPU unified buffer).
        shift: the big SHIFT SPM (scheme "shift").
        random: the RANDOM array (schemes "homogeneous"/"heterogeneous").
        hetero: the heterogeneous organisation (scheme "heterogeneous").
        ideal: the ideal buffer (scheme "ideal").
        dram: off-chip model.
        total_capacity: aggregate on-chip SPM capacity (bytes), for
            batch-spill accounting.
    """

    scheme: str
    dram: DramModel
    total_capacity: int
    shift: ShiftSpm | None = None
    random: RandomSpm | None = None
    hetero: HeterogeneousSpm | None = None
    ideal: IdealSpm | None = None

    def __post_init__(self) -> None:
        needed = {
            "shift": self.shift,
            "homogeneous": self.random,
            "heterogeneous": self.hetero,
            "ideal": self.ideal,
        }
        if self.scheme not in needed:
            raise ConfigError(f"unknown SPM scheme '{self.scheme}'")
        if needed[self.scheme] is None:
            raise ConfigError(
                f"scheme '{self.scheme}' requires its SPM model to be set"
            )
