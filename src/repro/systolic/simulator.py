"""Per-layer and whole-network latency simulation.

``AcceleratorModel`` composes the mapping (compute cycles), the trace
(stream statistics) and the memory system (service times) into a layer
latency, per the scheme semantics described in
:mod:`repro.systolic.memsys`:

- **shift** (SuperNPU): latency = weight deploys + streaming + SHIFT
  rotation stalls (inputs, weights, psum spill-over).
- **homogeneous**: one RANDOM array serves every operand through one
  port; streaming rate is bounded by the summed port service time.
- **heterogeneous** (Heter / Pipe / SMART): sequential traffic streams
  from the small SHIFT arrays while the RANDOM array moves stripes and
  tiles in bulk; prefetching (the ILP compiler's lookahead) hides port
  and DRAM time under streaming.
- **ideal** (TPU): no SPM stalls, only mapping overheads.

Results carry per-component times so the energy model and the paper's
breakdown figures can be regenerated without re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.systolic.layers import ConvLayer, Network, WORD_BYTES
from repro.systolic.mapping import WeightStationaryMapping
from repro.systolic.memsys import MemorySystem
from repro.systolic.trace import LayerTrace, layer_trace


@dataclass(frozen=True)
class LayerResult:
    """Latency decomposition of one layer execution.

    Attributes:
        layer: the simulated layer.
        batch: images per run.
        trace: operand stream statistics (for the energy model).
        stream_time: pure systolic streaming time (s).
        deploy_time: weight deployment into the array (s).
        stall_time: exposed memory stall (s).
        dram_time: exposed DRAM spill time (s).
        port_time: total RANDOM-port occupancy (s), exposed or not.
        shift_steps: total SHIFT lane advance steps (for energy).
        random_accesses: RANDOM array line accesses (for energy).
        spill_bytes: DRAM traffic (B).
        total_time: layer latency (s).
    """

    layer: ConvLayer
    batch: int
    trace: LayerTrace | None
    stream_time: float
    deploy_time: float
    stall_time: float
    dram_time: float
    port_time: float
    shift_steps: float
    random_accesses: float
    spill_bytes: float
    total_time: float


@dataclass(frozen=True)
class RunResult:
    """Whole-network simulation outcome.

    Attributes:
        network: the simulated model.
        batch: images per run.
        layers: per-layer results.
    """

    network: Network
    batch: int
    layers: tuple[LayerResult, ...]

    @property
    def latency(self) -> float:
        """End-to-end latency of the batch (s)."""
        return sum(l.total_time for l in self.layers)

    @property
    def latency_per_image(self) -> float:
        """Latency per image (s)."""
        return self.latency / self.batch

    @property
    def throughput_macs(self) -> float:
        """Achieved MAC throughput (MAC/s)."""
        return self.network.total_macs * self.batch / self.latency

    def component_totals(self) -> dict[str, float]:
        """Summed time components across layers (s)."""
        return {
            "stream": sum(l.stream_time for l in self.layers),
            "deploy": sum(l.deploy_time for l in self.layers),
            "stall": sum(l.stall_time for l in self.layers),
            "dram": sum(l.dram_time for l in self.layers),
        }


@dataclass(frozen=True)
class AcceleratorModel:
    """A systolic accelerator with its memory system.

    Attributes:
        name: configuration name (TPU / SuperNPU / SMART / ...).
        rows, cols: PE array dimensions.
        frequency: matrix-unit clock (Hz).
        memsys: the memory system model.
    """

    name: str
    rows: int
    cols: int
    frequency: float
    memsys: MemorySystem

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("PE array dimensions must be positive")
        if self.frequency <= 0:
            raise ConfigError("frequency must be positive")

    def __hash__(self) -> int:
        # Structural hash over the same field tuple the generated
        # dataclass hash uses, computed once per instance: the serving
        # memo's structural fallback keys on accelerator values, and
        # re-walking the nested memory-system dataclasses on every
        # lookup dominated the serving hot path.  Safe because the
        # dataclass is frozen.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.rows, self.cols, self.frequency,
                      self.memsys))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def clock(self) -> float:
        """Clock period (s)."""
        return 1.0 / self.frequency

    @property
    def peak_macs(self) -> float:
        """Peak throughput (MAC/s)."""
        return self.rows * self.cols * self.frequency

    # ------------------------------------------------------------------
    # Layer simulation
    # ------------------------------------------------------------------
    #: SPM bytes reserved for in-flight weight tiles (a few folds of
    #: rows x cols bytes); weights stream tile-by-tile from DRAM so the
    #: whole-layer weight footprint never needs to be resident.
    WEIGHT_TILE_RESERVE = 256 * 1024

    def effective_batch(self, layer: ConvLayer, batch: int) -> int:
        """Images of this layer that fit on-chip simultaneously.

        The compiler processes a large layer in sub-batches when the
        requested batch's activations exceed the SPM, rather than
        thrashing DRAM ("SPMs ... are large enough for each layer ...
        without generating thrashing traffic", Sec 3).  Weights stream
        per tile, so only a small reserve is held for them.
        """
        per_image = layer.input_bytes + layer.output_bytes
        headroom = self.memsys.total_capacity - self.WEIGHT_TILE_RESERVE
        if headroom <= per_image:
            return 1
        return max(1, min(batch, headroom // per_image))

    def simulate_layer(self, layer: ConvLayer, batch: int = 1) -> LayerResult:
        """Simulate one layer for ``batch`` images.

        When the batch exceeds the layer's on-chip capacity it runs as
        ``ceil(batch / b_eff)`` sub-batches: ``batch // b_eff`` full
        passes plus, when ``batch % b_eff != 0``, one residual pass of
        the leftover images.  Each pass charges its whole deploy and
        stream time (the tile-iteration semantics trace-driven
        simulators use); the returned result is the whole-batch total.
        """
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        b_eff = self.effective_batch(layer, batch)
        if b_eff < batch:
            full_passes, residual = divmod(batch, b_eff)
            total = _scale_result(self._simulate_layer_whole(layer, b_eff),
                                  float(full_passes), batch)
            if residual:
                total = _add_results(
                    total, self._simulate_layer_whole(layer, residual), batch
                )
            return total
        return self._simulate_layer_whole(layer, batch)

    def _simulate_layer_whole(self, layer: ConvLayer,
                              batch: int) -> LayerResult:
        if layer.kind == "pool":
            return self._pool_result(layer, batch)
        mapping = WeightStationaryMapping(layer, self.rows, self.cols)
        trace = layer_trace(mapping, batch)
        stream_time = mapping.folds * mapping.stream_cycles(batch) * self.clock
        deploy_time = mapping.folds * mapping.weight_load_cycles * self.clock
        spill = self._spill_bytes(layer, batch)
        dram_raw = self.memsys.dram.transfer_time(spill)

        scheme = self.memsys.scheme
        if scheme == "ideal":
            return self._compose(layer, batch, trace, stream_time,
                                 deploy_time, stall=0.0, port=0.0,
                                 dram_raw=dram_raw, hidden=0.5,
                                 shift_steps=0.0, accesses=0.0, spill=spill)
        if scheme == "shift":
            return self._simulate_shift(layer, batch, mapping, trace,
                                        stream_time, deploy_time, dram_raw,
                                        spill)
        if scheme == "homogeneous":
            return self._simulate_homogeneous(layer, batch, mapping, trace,
                                              stream_time, deploy_time,
                                              dram_raw, spill)
        return self._simulate_heterogeneous(layer, batch, mapping, trace,
                                            stream_time, deploy_time,
                                            dram_raw, spill)

    def simulate(self, network: Network, batch: int = 1) -> RunResult:
        """Simulate a whole network."""
        layers = tuple(self.simulate_layer(layer, batch)
                       for layer in network.layers)
        return RunResult(network=network, batch=batch, layers=layers)

    # ------------------------------------------------------------------
    # Scheme-specific composition
    # ------------------------------------------------------------------
    def _pool_result(self, layer: ConvLayer, batch: int) -> LayerResult:
        """Pooling: pure data movement, one output word per cycle."""
        time = layer.out_pixels * layer.out_c / self.cols * batch * self.clock
        return LayerResult(
            layer=layer, batch=batch, trace=None, stream_time=time,
            deploy_time=0.0, stall_time=0.0, dram_time=0.0, port_time=0.0,
            shift_steps=0.0, random_accesses=0.0, spill_bytes=0.0,
            total_time=time,
        )

    def _spill_bytes(self, layer: ConvLayer, batch: int) -> float:
        """DRAM traffic when the activation working set exceeds the SPM.

        Weights are excluded: they stream tile-by-tile and their DRAM
        traffic hides behind the previous tile's compute (the same
        steady-state-serving assumption the paper's setup makes).
        """
        working = (layer.input_bytes + layer.output_bytes) * batch
        return max(0.0, working - self.memsys.total_capacity)

    def _compose(self, layer, batch, trace, stream_time, deploy_time, *,
                 stall: float, port: float, dram_raw: float, hidden: float,
                 shift_steps: float, accesses: float,
                 spill: float) -> LayerResult:
        """Assemble a LayerResult with ``hidden`` overlap of port+DRAM."""
        exposed_port = max(0.0, port - hidden * stream_time)
        exposed_dram = (1.0 - hidden) * dram_raw
        total = (stream_time + deploy_time + stall + exposed_port
                 + exposed_dram)
        return LayerResult(
            layer=layer, batch=batch, trace=trace,
            stream_time=stream_time, deploy_time=deploy_time,
            stall_time=stall + exposed_port, dram_time=exposed_dram,
            port_time=port, shift_steps=shift_steps,
            random_accesses=accesses, spill_bytes=spill, total_time=total,
        )

    def _simulate_shift(self, layer, batch, mapping, trace, stream_time,
                        deploy_time, dram_raw, spill) -> LayerResult:
        """SuperNPU: SHIFT rotations stall the pipeline directly.

        The big SHIFT SPM stores the im2col-expanded copy of the inputs
        (the DAU fills it), so fine-grained overlap re-fetches never
        happen; the cost that remains is the row-boundary rotation of
        every lane, plus stride gaps.  PSums accumulate in the dedicated
        accumulators and cost no SPM time.
        """
        shift = self.memsys.shift
        stall = (
            shift.stream_stall(trace.inputs, batch)
            + shift.stream_stall(trace.weights, batch=1)
            + shift.stream_stall(trace.outputs, batch)
        )
        # psums live in the dedicated accumulators (consistent with the
        # timing model), so they do not pulse SHIFT lanes
        steps = float(trace.inputs.words + trace.weights.words
                      + trace.outputs.words)
        steps += self._rotation_steps(shift, trace, batch)
        return self._compose(layer, batch, trace, stream_time, deploy_time,
                             stall=stall, port=0.0, dram_raw=dram_raw,
                             hidden=0.0, shift_steps=steps, accesses=0.0,
                             spill=spill)

    def _rotation_steps(self, shift, trace, batch) -> float:
        """Lane-advance steps spent rotating (for energy accounting).

        Mirrors the timing side of :meth:`_simulate_shift` exactly —
        the same :func:`~repro.systolic.memsys.amortised_jumps` rule,
        per stream with the same batch arguments (inputs and outputs
        amortise across the batch; weights are deployed once per fold
        regardless of batch), so SHIFT dynamic energy and SHIFT stall
        time always count the same rotations.
        """
        from repro.systolic.memsys import amortised_jumps
        total = 0.0
        for stats, b in ((trace.inputs, batch), (trace.weights, 1),
                         (trace.outputs, batch)):
            total += (amortised_jumps(stats.jumps, b)
                      * shift.jump_steps(stats.avg_jump_words))
        return total

    def _simulate_homogeneous(self, layer, batch, mapping, trace,
                              stream_time, deploy_time, dram_raw,
                              spill) -> LayerResult:
        """One RANDOM array serves all operands through one port.

        There is no SHIFT+DAU front end, so the array must deliver the
        full im2col stream (line-amortised) plus the fine-grained
        re-fetches; outputs pay the write latency.  Everything
        serialises on the one request network.
        """
        random = self.memsys.random
        in_service = random.stream_service(trace.inputs) + (
            trace.inputs.rand_fetches
            * (random.issue_interval if random.pipelined
               else random.read_latency)
        )
        w_service = random.stream_service(trace.weights)
        out_service = random.stream_service(trace.outputs)
        port = in_service + w_service + out_service
        accesses = (
            random.lines(trace.inputs.words * WORD_BYTES)
            + trace.inputs.rand_fetches
            + random.lines(trace.weights.words * WORD_BYTES)
            + random.lines(trace.outputs.words * WORD_BYTES)
        )
        # the port is the data source, so it inherently overlaps the
        # compute streaming; time beyond streaming is exposed (max form)
        return self._compose(layer, batch, trace, stream_time, deploy_time,
                             stall=0.0, port=port, dram_raw=dram_raw,
                             hidden=1.0, shift_steps=0.0,
                             accesses=float(accesses), spill=spill)

    def _simulate_heterogeneous(self, layer, batch, mapping, trace,
                                stream_time, deploy_time, dram_raw,
                                spill) -> LayerResult:
        """SHIFT arrays stream; the RANDOM array holds the raw data.

        Fresh input rows move RANDOM -> input SHIFT in bulk (raw bytes,
        not im2col — the DAU re-expands); weight tiles move RANDOM ->
        weight SHIFT; outputs write back to RANDOM (they are the next
        layer's inputs).  The kernel-window overlap re-fetches hit the
        RANDOM array: without prefetching each exposes the array's read
        latency; with the ILP prefetcher they pipeline at the issue
        interval and hide under streaming.
        """
        hetero = self.memsys.hetero
        random = hetero.random
        if hetero.prefetching:
            # the compiler coalesces bulk moves into wide bursts spread
            # across banks
            random = random.with_line(max(random.line_bytes,
                                          hetero.burst_line_bytes))

        # The input SHIFT must double-buffer a kernel window of raw rows
        # per image; when it cannot (Fig 22's 16 KB point), stripes are
        # re-transferred and the port traffic swells.
        if layer.kind == "fc":
            window = layer.kernel_volume
        else:
            window = layer.kernel_h * layer.in_w * layer.in_c
        swap_factor = max(
            1.0, 2.0 * window / hetero.input_shift.capacity_bytes
        )
        raw_input_bytes = float(layer.input_bytes * batch) * swap_factor
        # bulk_transfer_time / lines are byte-denominated; the output
        # stream is counted in data words, so convert before charging it
        out_bytes = float(trace.outputs.words * WORD_BYTES)
        in_transfer = random.bulk_transfer_time(raw_input_bytes)
        out_transfer = random.bulk_transfer_time(out_bytes, write=True)
        rand = trace.inputs.rand_fetches
        if hetero.prefetching:
            rand_time = rand * random.issue_interval
            stall = 0.0
            port = in_transfer + out_transfer + rand_time
        else:
            stall = rand * random.random_access_cost()
            port = in_transfer + out_transfer
        accesses = (
            random.lines(int(raw_input_bytes))
            + random.lines(int(out_bytes))
            + rand
        )

        hidden = hetero.hiding_fraction()
        steps = float(trace.inputs.words + trace.weights.words
                      + trace.outputs.words)
        return self._compose(layer, batch, trace, stream_time, deploy_time,
                             stall=stall, port=port,
                             dram_raw=dram_raw, hidden=hidden,
                             shift_steps=steps, accesses=float(accesses),
                             spill=spill)


def _scale_result(sub: LayerResult, passes: float, batch: int) -> LayerResult:
    """Scale a sub-batch LayerResult over ``passes`` identical passes.

    ``trace`` stays the per-pass trace (the energy model reads the
    scaled counters, not the trace).
    """
    return LayerResult(
        layer=sub.layer, batch=batch, trace=sub.trace,
        stream_time=sub.stream_time * passes,
        deploy_time=sub.deploy_time * passes,
        stall_time=sub.stall_time * passes,
        dram_time=sub.dram_time * passes,
        port_time=sub.port_time * passes,
        shift_steps=sub.shift_steps * passes,
        random_accesses=sub.random_accesses * passes,
        spill_bytes=sub.spill_bytes * passes,
        total_time=sub.total_time * passes,
    )


def _add_results(a: LayerResult, b: LayerResult, batch: int) -> LayerResult:
    """Sum two sub-batch results (full passes + the residual pass)."""
    return LayerResult(
        layer=a.layer, batch=batch, trace=a.trace,
        stream_time=a.stream_time + b.stream_time,
        deploy_time=a.deploy_time + b.deploy_time,
        stall_time=a.stall_time + b.stall_time,
        dram_time=a.dram_time + b.dram_time,
        port_time=a.port_time + b.port_time,
        shift_steps=a.shift_steps + b.shift_steps,
        random_accesses=a.random_accesses + b.random_accesses,
        spill_bytes=a.spill_bytes + b.spill_bytes,
        total_time=a.total_time + b.total_time,
    )
