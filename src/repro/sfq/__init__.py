"""SFQ device and interconnect substrate.

This subpackage models the superconductor single-flux-quantum (SFQ)
building blocks the paper's architecture rests on (Sec 2.1, Sec 4.2.2,
Table 2 of the paper):

- :mod:`repro.sfq.constants` -- the Hypres ERSFQ 1.0 um process parameters
  and the Table 2 component latency/power numbers.
- :mod:`repro.sfq.jj` -- Josephson-junction device physics (RCSJ model)
  shared with the transient circuit simulator.
- :mod:`repro.sfq.cells` -- behavioural models of the standard cells used
  by SMART: DFF, splitter, PTL driver/receiver, nTron, DC/SFQ converter.
- :mod:`repro.sfq.ptl` -- micro-strip passive transmission line model
  (paper Eq. 1-4) with repeater insertion.
- :mod:`repro.sfq.jtl` -- Josephson transmission line model.
- :mod:`repro.sfq.cmos_wire` -- repeated CMOS RC wire, the comparison
  baseline of paper Fig 2.
- :mod:`repro.sfq.htree` -- pipelined SFQ H-tree built from PTL segments
  and splitter units (paper Fig 10/11).
"""

from repro.sfq.constants import ERSFQ_1UM, SfqProcess, TABLE2_COMPONENTS
from repro.sfq.cells import (
    ComponentTiming,
    DCSFQConverter,
    Dff,
    NTron,
    PtlDriver,
    PtlReceiver,
    Splitter,
)
from repro.sfq.jj import JosephsonJunction
from repro.sfq.ptl import MicrostripPtl, PtlLink, insert_repeaters
from repro.sfq.jtl import JtlLine
from repro.sfq.cmos_wire import CmosWire
from repro.sfq.htree import SfqHTree, SplitterUnit

__all__ = [
    "ERSFQ_1UM",
    "SfqProcess",
    "TABLE2_COMPONENTS",
    "ComponentTiming",
    "DCSFQConverter",
    "Dff",
    "NTron",
    "PtlDriver",
    "PtlReceiver",
    "Splitter",
    "JosephsonJunction",
    "MicrostripPtl",
    "PtlLink",
    "insert_repeaters",
    "JtlLine",
    "CmosWire",
    "SfqHTree",
    "SplitterUnit",
]
