"""Repeated CMOS RC wire model — the comparison baseline of paper Fig 2.

At cryogenic-relevant geometries (thin copper, sub-28 nm pitch) a CMOS
wire is a distributed RC line: unrepeated delay grows quadratically with
length, and optimal repeater insertion makes it linear but adds gate
delay and switching energy.  Energy is dominated by C V^2 charging, which
is ~6 orders of magnitude above the ~I_c Phi_0 a PTL dissipates per pulse
(paper Fig 2b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import FF, UM


@dataclass(frozen=True)
class CmosWire:
    """A CMOS interconnect wire with optional optimal repeatering.

    Defaults model a 28 nm intermediate-level copper wire; resistance per
    length reflects the strong sub-10 nm resistivity increase the paper
    cites [5] for scaled nodes.

    Attributes:
        length: wire length (m).
        resistance_per_length: R (ohm/m).
        capacitance_per_length: C (F/m).
        supply_voltage: V_dd (V).
        driver_delay: fixed delay of the gate driving the wire (s).
        repeater_delay: intrinsic delay of one repeater (s).
        repeater_energy: switching energy of one repeater (J).
        max_segment: longest unrepeated segment the methodology allows (m).
        activity: switching activity factor for energy.
    """

    length: float
    resistance_per_length: float = 100.0 / UM  # sub-10nm-regime copper
    capacitance_per_length: float = 0.20 * FF / UM  # 0.2 fF/um
    supply_voltage: float = 0.9
    driver_delay: float = 10e-12
    repeater_delay: float = 5e-12
    repeater_energy: float = 2e-16
    max_segment: float = 200 * UM
    activity: float = 1.0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ConfigError("wire length must be non-negative")
        if self.max_segment <= 0:
            raise ConfigError("max unrepeated segment must be positive")

    @property
    def segments(self) -> int:
        """Number of repeated segments (>= 1)."""
        return max(1, math.ceil(self.length / self.max_segment))

    def _segment_delay(self, seg_length: float) -> float:
        """Elmore delay of one RC segment: 0.5 R C l^2."""
        return (
            0.5
            * self.resistance_per_length
            * self.capacitance_per_length
            * seg_length**2
        )

    @property
    def latency(self) -> float:
        """End-to-end wire delay: driver + RC segments + repeaters (s)."""
        if self.length == 0:
            return 0.0
        seg = self.length / self.segments
        wire = self.segments * self._segment_delay(seg)
        repeaters = max(0, self.segments - 1) * self.repeater_delay
        return self.driver_delay + wire + repeaters

    @property
    def energy_per_bit(self) -> float:
        """Energy to signal one bit transition down the wire (J)."""
        charge = (
            self.capacitance_per_length
            * self.length
            * self.supply_voltage**2
            * self.activity
        )
        repeaters = max(0, self.segments - 1) * self.repeater_energy
        return charge + repeaters

    @property
    def total_capacitance(self) -> float:
        """Total wire capacitance (F)."""
        return self.capacitance_per_length * self.length

    @property
    def total_resistance(self) -> float:
        """Total wire resistance (ohm)."""
        return self.resistance_per_length * self.length
