"""Behavioural models of the SFQ standard cells SMART is built from.

Each cell exposes the same small surface — ``latency``, ``leakage_power``,
``dynamic_energy_per_pulse``, ``jj_count``, ``area`` — so the H-tree and
array models can compose them uniformly.  Latency/power numbers follow
paper Table 2 and Sec 2; junction counts follow the schematics in paper
Fig 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sfq.constants import (
    DCSFQ_LATENCY,
    ERSFQ_1UM,
    SHIFT_CELL_ACCESS,
    SHIFT_CELL_AREA_F2,
    SHIFT_CELL_ENERGY,
    TABLE2_COMPONENTS,
    SfqProcess,
)
from repro.units import UW


#: Area charged per junction once bias inductors and wiring are included,
#: in F^2 of the JJ diameter.  Derived from the SHIFT DFF: 2 active JJs
#: in a 39 F^2 cell (Table 1) -> ~20 F^2 per junction.
AREA_PER_JJ_F2 = 20.0


@dataclass(frozen=True)
class ComponentTiming:
    """Common interface value-object for one SFQ cell instance.

    Attributes:
        name: cell name (for reports).
        latency: input-to-output pulse latency (s).
        leakage_power: static bias power (W).
        dynamic_energy_per_pulse: energy per processed pulse (J).
        jj_count: number of Josephson junctions.
        area_f2: layout area in F^2 (F = JJ diameter).
    """

    name: str
    latency: float
    leakage_power: float
    dynamic_energy_per_pulse: float
    jj_count: int
    area_f2: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")
        if self.leakage_power < 0:
            raise ConfigError(f"{self.name}: leakage must be non-negative")


def _table2_cell(key: str, name: str, process: SfqProcess) -> ComponentTiming:
    """Build a ComponentTiming from a Table 2 row."""
    spec = TABLE2_COMPONENTS[key]
    return ComponentTiming(
        name=name,
        latency=spec.latency,
        leakage_power=spec.leakage_power,
        dynamic_energy_per_pulse=spec.jj_count * process.switch_energy,
        jj_count=spec.jj_count,
        area_f2=spec.jj_count * AREA_PER_JJ_F2,
    )


def Splitter(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """An SFQ splitter: one input pulse becomes two output pulses.

    Three junctions, 7 ps latency, no static power (Table 2).  Splitters
    are the only way to exceed the fan-out-of-one limit of SFQ gates
    (Sec 2.1), which is why SFQ decoders are so expensive.
    """
    return _table2_cell("splitter", "splitter", process)


def PtlDriver(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """A PTL driver: 2-stage JTL plus matching resistor (Fig 11f)."""
    return _table2_cell("driver", "ptl_driver", process)


def PtlReceiver(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """A PTL receiver: 3-stage JTL pulse reconstructor (Fig 11e)."""
    return _table2_cell("receiver", "ptl_receiver", process)


def NTron(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """A nanocryotron SFQ-to-CMOS converter (Fig 3c).

    The nTron's 103.02 ps conversion is the un-pipelineable bottleneck of
    the CMOS-SFQ array (Sec 4.2.4), capping the pipeline at ~9.6 GHz.
    Dynamic energy uses the Table 2 dynamic power at one conversion per
    latency window.
    """
    spec = TABLE2_COMPONENTS["ntron"]
    return ComponentTiming(
        name="ntron",
        latency=spec.latency,
        leakage_power=spec.leakage_power,
        dynamic_energy_per_pulse=spec.dynamic_power * spec.latency,
        jj_count=0,
        area_f2=2 * AREA_PER_JJ_F2,  # nanowire device, ~2 JJ footprints
    )


def DCSFQConverter(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """A level-driven DC/SFQ converter: CMOS sense-amp level -> SFQ pulse.

    Completes a conversion in ~0.1 ns (Sec 4.2.2, citing Tanaka 2016);
    shares the nTron's role as a pipeline-stage-limiting element.
    """
    return ComponentTiming(
        name="dcsfq",
        latency=DCSFQ_LATENCY,
        leakage_power=0.5 * UW,
        dynamic_energy_per_pulse=4 * process.switch_energy,
        jj_count=4,
        area_f2=4 * AREA_PER_JJ_F2,
    )


def Dff(process: SfqProcess = ERSFQ_1UM) -> ComponentTiming:
    """An SFQ delay flip-flop, the SHIFT memory cell (Fig 1b, Table 1).

    One superconductor ring (2 junctions), 0.02 ns access, 0.1 fJ per
    shifted bit, 39 F^2.
    """
    return ComponentTiming(
        name="dff",
        latency=SHIFT_CELL_ACCESS,
        leakage_power=0.0,
        dynamic_energy_per_pulse=SHIFT_CELL_ENERGY,
        jj_count=2,
        area_f2=SHIFT_CELL_AREA_F2,
    )


@dataclass(frozen=True)
class SplitterTree:
    """A binary tree of splitters providing fan-out ``fanout``.

    SFQ gates drive exactly one node, so distributing a signal to N sinks
    requires a tree of N-1 splitters (Sec 2.1).  This is the dominant cost
    of SFQ decoders: an N-to-2^N decoder needs O(2^N) splitters just to
    distribute its clock.
    """

    fanout: int
    process: SfqProcess = field(default=ERSFQ_1UM)

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigError("fan-out must be at least 1")

    @property
    def splitter_count(self) -> int:
        """Number of splitters in the tree (N - 1)."""
        return self.fanout - 1

    @property
    def depth(self) -> int:
        """Tree depth in splitter stages."""
        depth = 0
        while (1 << depth) < self.fanout:
            depth += 1
        return depth

    @property
    def latency(self) -> float:
        """Root-to-leaf latency (s)."""
        return self.depth * TABLE2_COMPONENTS["splitter"].latency

    @property
    def energy_per_broadcast(self) -> float:
        """Energy to deliver one pulse to all leaves (J)."""
        cell = Splitter(self.process)
        return self.splitter_count * cell.dynamic_energy_per_pulse

    @property
    def jj_count(self) -> int:
        """Total junction count."""
        return self.splitter_count * TABLE2_COMPONENTS["splitter"].jj_count

    @property
    def area_f2(self) -> float:
        """Total area in F^2."""
        return self.splitter_count * Splitter(self.process).area_f2
