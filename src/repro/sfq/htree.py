"""Pipelined SFQ H-tree built from PTL links and splitter units.

An array's request network carries address/data pulses from the array
edge to every sub-bank; the reply network carries read data back (Sec
4.2.1).  SMART replaces the CMOS H-tree wires with micro-strip PTLs and
places a splitter unit (receiver + splitter + two drivers, paper Fig 11b)
at every branch point.  Because splitter units are gate-level pipelined,
multiple requests ride the tree simultaneously; repeater insertion breaks
long segments so every stage fits the target initiation interval
(Sec 4.2.2/4.2.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigError
from repro.sfq.cells import (
    ComponentTiming,
    PtlDriver,
    PtlReceiver,
    Splitter,
)
from repro.sfq.constants import ERSFQ_1UM, SfqProcess
from repro.sfq.ptl import MicrostripPtl, PtlLink, insert_repeaters


@dataclass(frozen=True)
class SplitterUnit:
    """Receiver + splitter + two drivers at one H-tree branch (Fig 11b).

    A pulse arriving on the input PTL is reconstructed by the receiver,
    duplicated by the splitter, and re-launched down both output PTLs by
    the drivers.
    """

    process: SfqProcess = field(default=ERSFQ_1UM)

    @cached_property
    def _cells(self) -> tuple[ComponentTiming, ComponentTiming, ComponentTiming]:
        return (
            PtlReceiver(self.process),
            Splitter(self.process),
            PtlDriver(self.process),
        )

    @property
    def latency(self) -> float:
        """Input-receiver to output-driver latency on one branch (s)."""
        receiver, splitter, driver = self._cells
        return receiver.latency + splitter.latency + driver.latency

    @property
    def leakage_power(self) -> float:
        """Static power: two driver bias networks (W)."""
        receiver, splitter, driver = self._cells
        return receiver.leakage_power + splitter.leakage_power + 2 * driver.leakage_power

    @property
    def dynamic_energy_per_pulse(self) -> float:
        """Energy to duplicate one pulse down both branches (J)."""
        receiver, splitter, driver = self._cells
        return (
            receiver.dynamic_energy_per_pulse
            + splitter.dynamic_energy_per_pulse
            + 2 * driver.dynamic_energy_per_pulse
        )

    @property
    def jj_count(self) -> int:
        """Junction count (receiver 3 + splitter 3 + 2 drivers x 2)."""
        receiver, splitter, driver = self._cells
        return receiver.jj_count + splitter.jj_count + 2 * driver.jj_count

    @property
    def area_f2(self) -> float:
        """Layout area in F^2."""
        receiver, splitter, driver = self._cells
        return receiver.area_f2 + splitter.area_f2 + 2 * driver.area_f2


@dataclass(frozen=True)
class SfqHTree:
    """A pipelined SFQ H-tree fanning out to ``banks`` leaves.

    The tree is laid over a square region of side ``array_side``; level k
    of the recursion spans half the remaining side, alternating horizontal
    and vertical runs, which is the classic H-tree geometry CACTI uses for
    CMOS arrays.  ``bus_width`` parallel bit-lanes (address + data + R/W)
    each get their own PTL tree.

    Attributes:
        banks: number of leaf sub-banks (rounded up to a power of two).
        array_side: physical side length of the region the tree spans (m).
        bus_width: parallel PTL lanes (address + data + control bits).
        target_frequency: pipeline initiation rate every stage must meet
            (Hz); repeaters are inserted per segment until met.
        line: micro-strip geometry shared by all segments.
        process: fabrication process.
    """

    banks: int
    array_side: float
    bus_width: int = 32
    target_frequency: float = 9.7e9
    line: MicrostripPtl = field(default_factory=MicrostripPtl)
    process: SfqProcess = field(default=ERSFQ_1UM)

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ConfigError("H-tree needs at least one bank")
        if self.array_side <= 0:
            raise ConfigError("array side must be positive")
        if self.bus_width < 1:
            raise ConfigError("bus width must be at least 1")

    @property
    def levels(self) -> int:
        """Branching levels: ceil(log2(banks))."""
        return max(0, math.ceil(math.log2(self.banks))) if self.banks > 1 else 0

    @cached_property
    def segment_lengths(self) -> list[float]:
        """Root-to-leaf segment lengths per level (m).

        Level k runs span ``side / 2^(1 + k//2)``: the first horizontal
        and vertical runs each cover half the side, then lengths halve
        every two levels.
        """
        lengths = []
        for level in range(self.levels):
            lengths.append(self.array_side / (2 ** (1 + level // 2)))
        if not lengths:  # single bank: one straight run to the bank
            lengths = [self.array_side / 2]
        return lengths

    @cached_property
    def segment_links(self) -> list[list[PtlLink]]:
        """Per-level repeated PTL links meeting the target frequency."""
        return [
            insert_repeaters(
                length, self.target_frequency, self.line, self.process
            )
            for length in self.segment_lengths
        ]

    @cached_property
    def _unit(self) -> SplitterUnit:
        return SplitterUnit(self.process)

    @property
    def splitter_unit_count(self) -> int:
        """Splitter units per bit-lane: one per internal branch node."""
        return max(0, 2 ** self.levels - 1) if self.levels else 0

    @property
    def repeater_count(self) -> int:
        """Extra driver+receiver repeater pairs inserted per bit-lane.

        Level k of the tree has 2^k parallel segments, each split into
        ``len(links)`` repeated pieces, i.e. ``len(links) - 1`` repeaters.
        """
        total = 0
        for level, links in enumerate(self.segment_links):
            total += (len(links) - 1) * 2**level
        return total

    @property
    def path_latency(self) -> float:
        """Root-to-leaf latency of one pulse (s)."""
        latency = 0.0
        for links in self.segment_links:
            for link in links:
                latency += link.latency
        latency += self.levels * self._unit.latency
        return latency

    @property
    def pipeline_stages(self) -> int:
        """Number of pipeline stages along the root-to-leaf path."""
        stage_time = 1.0 / self.target_frequency
        return max(1, math.ceil(self.path_latency / stage_time))

    @property
    def initiation_interval(self) -> float:
        """Sustained per-request interval of the pipelined tree (s).

        Every segment meets the target frequency by construction, so the
        tree accepts one request per 1/target_frequency.
        """
        return 1.0 / self.target_frequency

    def energy_per_access(self, broadcast: bool = True) -> float:
        """Dynamic energy of delivering one request (J).

        A request network physically broadcasts every pulse to all leaves
        (splitters duplicate unconditionally), so ``broadcast=True``
        charges every splitter unit and link in the tree; a reply network
        (``broadcast=False``) only drives the single root-to-leaf path.
        Scaled by ``bus_width`` parallel bit lanes, at 50% bit activity.
        """
        activity = 0.5 * self.bus_width
        unit_energy = self._unit.dynamic_energy_per_pulse
        if broadcast:
            links = 0.0
            for level, link_list in enumerate(self.segment_links):
                per_segment = sum(l.dynamic_energy_per_pulse for l in link_list)
                links += per_segment * 2**level
            units = self.splitter_unit_count * unit_energy
        else:
            links = sum(
                l.dynamic_energy_per_pulse
                for link_list in self.segment_links
                for l in link_list
            )
            units = self.levels * unit_energy
        return activity * (links + units)

    @property
    def leakage_power(self) -> float:
        """Static power of all drivers in the tree (W), all bit lanes."""
        unit_leak = self.splitter_unit_count * self._unit.leakage_power
        repeater_leak = self.repeater_count * (
            PtlDriver(self.process).leakage_power
            + PtlReceiver(self.process).leakage_power
        )
        # one root driver per lane
        root = PtlDriver(self.process).leakage_power
        return self.bus_width * (unit_leak + repeater_leak + root)

    @property
    def jj_count(self) -> int:
        """Total junction count across all bit lanes."""
        per_lane = (
            self.splitter_unit_count * self._unit.jj_count
            + self.repeater_count
            * (PtlDriver(self.process).jj_count + PtlReceiver(self.process).jj_count)
            + PtlDriver(self.process).jj_count
        )
        return self.bus_width * per_lane

    @property
    def area(self) -> float:
        """Physical area (m^2): junction area plus PTL routing tracks."""
        jj_area = (
            self.jj_count
            * 20.0  # AREA_PER_JJ_F2; kept numeric to avoid import cycle
            * self.process.jj_diameter**2
        )
        wire_area = 0.0
        for level, length in enumerate(self.segment_lengths):
            wire_area += length * self.line.width * 2**level
        return jj_area + wire_area * self.bus_width
