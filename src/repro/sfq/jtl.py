"""Josephson transmission line (JTL) model.

A JTL is an active SFQ interconnect: a chain of biased junctions that
regenerate the pulse at every stage.  It is convenient for short hops but
both slower and far more power-hungry than a PTL over long distances
(paper Fig 2: a long JTL costs ~100x the energy of a PTL), because every
stage adds junction delay, a switching event, and a static bias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfq.constants import ERSFQ_1UM, SfqProcess


@dataclass(frozen=True)
class JtlLine:
    """A JTL spanning a physical ``length``.

    Attributes:
        length: physical span (m).
        process: fabrication process providing stage delay/pitch and the
            per-switch energy.
        jjs_per_stage: junctions per JTL stage (2 for the standard cell).
    """

    length: float
    process: SfqProcess = ERSFQ_1UM
    jjs_per_stage: int = 2

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ConfigError("JTL length must be non-negative")
        if self.jjs_per_stage < 1:
            raise ConfigError("a JTL stage needs at least one junction")

    @property
    def stages(self) -> int:
        """Number of JTL stages needed to span the length (>= 1)."""
        return max(1, math.ceil(self.length / self.process.jtl_stage_pitch))

    @property
    def latency(self) -> float:
        """End-to-end pulse latency (s)."""
        return self.stages * self.process.jtl_stage_delay

    @property
    def dynamic_energy_per_pulse(self) -> float:
        """Energy per transported pulse (J): every stage's JJs switch."""
        return self.stages * self.jjs_per_stage * self.process.switch_energy

    @property
    def static_energy_per_pulse(self) -> float:
        """Resistive bias dissipation attributed to one pulse transit (J).

        Plain (non-ERSFQ) JTL interconnect is resistively biased: every
        junction burns I_b * V_bias continuously.  Attributing that power
        per transported pulse at the process clock rate makes long JTLs
        ~100x costlier than PTLs (whose active element count is one
        driver + one receiver regardless of length) — paper Fig 2b.
        """
        bias_current = (
            self.process.bias_current_fraction * self.process.critical_current
        )
        static_power_per_jj = bias_current * self.process.bias_voltage
        per_pulse_per_jj = static_power_per_jj / self.process.clock_frequency
        return self.stages * self.jjs_per_stage * per_pulse_per_jj

    @property
    def energy_per_pulse(self) -> float:
        """Total energy per transported pulse (J)."""
        return self.dynamic_energy_per_pulse + self.static_energy_per_pulse

    @property
    def jj_count(self) -> int:
        """Total junction count of the line."""
        return self.stages * self.jjs_per_stage
