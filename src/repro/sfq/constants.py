"""Process constants for the SFQ substrate.

The paper fabricates (notionally) in the Hypres ERSFQ 1.0 um process
[Yohannes 2015] and assumes JJs scale to 28 nm for area comparisons
against CMOS (Sec 3, Sec 4.4).  This module centralises:

- the junction / inductor / transmission-line parameters used by both the
  analytical models and the transient circuit simulator, and
- the Table 2 component latencies and powers, which anchor the pipelined
  CMOS-SFQ array's stage time (the nTron, at 103.02 ps, is the pipeline
  bottleneck -> 9.6-9.7 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GHZ, NS, NW, PS, UA, UM, UW


@dataclass(frozen=True)
class SfqProcess:
    """A superconductor fabrication process operating point.

    Attributes:
        name: human-readable process name.
        jj_diameter: JJ diameter F (m); superconductor cell sizes in the
            paper are quoted in F^2 of this diameter.
        critical_current: nominal junction critical current I_c (A).
        junction_capacitance: junction capacitance C_j (F).
        shunt_resistance: external shunt resistance R_s (ohm) giving
            critically damped switching (beta_c ~= 1).
        bias_current_fraction: DC bias as a fraction of I_c (ERSFQ biases
            at ~0.7 I_c).
        switch_energy: energy dissipated per JJ switching event,
            ~ I_c * Phi_0 (J).
        clock_frequency: the accelerator clock the process sustains for
            gate-level-pipelined logic (SuperNPU runs at 52.6 GHz).
        ptl_speed: SFQ pulse propagation speed on a micro-strip PTL (m/s).
        jtl_stage_delay: delay of one JTL stage (s).
        jtl_stage_pitch: physical length spanned by one JTL stage (m).
        bias_voltage: resistive bias-network voltage for conventional RSFQ
            biasing (V); sets the static power of plain JTL interconnect.
    """

    name: str
    jj_diameter: float
    critical_current: float
    junction_capacitance: float
    shunt_resistance: float
    bias_current_fraction: float
    switch_energy: float
    clock_frequency: float
    ptl_speed: float
    jtl_stage_delay: float
    jtl_stage_pitch: float
    bias_voltage: float

    @property
    def clock_period(self) -> float:
        """Clock period of gate-level-pipelined SFQ logic (s)."""
        return 1.0 / self.clock_frequency

    @property
    def characteristic_voltage(self) -> float:
        """I_c * R_s, sets the junction switching time scale (V)."""
        return self.critical_current * self.shunt_resistance


#: Hypres ERSFQ 1.0 um planarized process [Yohannes 2015], the process the
#: paper assumes for SuperNPU and SMART (Sec 5).  The switch energy
#: ~2e-19 J matches the paper's "~1e-19 J per switching" (Sec 1).
ERSFQ_1UM = SfqProcess(
    name="Hypres ERSFQ 1.0um",
    jj_diameter=1.0 * UM,
    critical_current=100 * UA,
    junction_capacitance=0.07e-12,  # 70 fF for a 1 um^2 junction
    shunt_resistance=2.0,  # ohm, beta_c ~= 1
    bias_current_fraction=0.7,
    switch_energy=2.07e-19,  # I_c * Phi_0
    clock_frequency=52.6 * GHZ,
    ptl_speed=1.0e8,  # ~c/3, typical Nb micro-strip
    jtl_stage_delay=3.5 * PS,
    jtl_stage_pitch=10 * UM,
    bias_voltage=2.6e-3,
)


#: The paper's area-comparison assumption (Sec 3, Sec 4.4): JJs scale to
#: the same 28 nm feature as the CMOS transistors.  Electrical parameters
#: are kept at the 1.0 um operating point — the paper scales only area.
SCALED_28NM = SfqProcess(
    name="JJ scaled to 28nm (area accounting)",
    jj_diameter=28e-9,
    critical_current=ERSFQ_1UM.critical_current,
    junction_capacitance=ERSFQ_1UM.junction_capacitance,
    shunt_resistance=ERSFQ_1UM.shunt_resistance,
    bias_current_fraction=ERSFQ_1UM.bias_current_fraction,
    switch_energy=ERSFQ_1UM.switch_energy,
    clock_frequency=ERSFQ_1UM.clock_frequency,
    ptl_speed=ERSFQ_1UM.ptl_speed,
    jtl_stage_delay=ERSFQ_1UM.jtl_stage_delay,
    jtl_stage_pitch=ERSFQ_1UM.jtl_stage_pitch,
    bias_voltage=ERSFQ_1UM.bias_voltage,
)


@dataclass(frozen=True)
class ComponentSpec:
    """Latency and power of one SFQ H-tree component (paper Table 2).

    Attributes:
        latency: propagation latency of the component (s).
        leakage_power: static (bias network) power (W).
        dynamic_power: dynamic power at the reference activity (W); the
            paper quotes dynamic power at one pulse per clock.
        jj_count: junction count, used for area accounting.
    """

    latency: float
    leakage_power: float
    dynamic_power: float
    jj_count: int


#: Paper Table 2 verbatim: latency (ps), leakage power (uW), dynamic power
#: (nW) of each SFQ H-tree component, plus junction counts from Fig 11.
TABLE2_COMPONENTS: dict[str, ComponentSpec] = {
    "splitter": ComponentSpec(
        latency=7.0 * PS, leakage_power=0.0, dynamic_power=0.15 * NW, jj_count=3
    ),
    "driver": ComponentSpec(
        latency=3.5 * PS,
        leakage_power=0.874 * UW,
        dynamic_power=0.181 * NW,
        jj_count=2,
    ),
    "receiver": ComponentSpec(
        latency=5.25 * PS,
        leakage_power=0.0,
        dynamic_power=0.275 * NW,
        jj_count=3,
    ),
    "ntron": ComponentSpec(
        latency=103.02 * PS,
        leakage_power=8.8 * UW,
        dynamic_power=13 * NW,
        jj_count=0,
    ),
}

#: Latency of a level-driven DC/SFQ converter (Sec 4.2.2: "both a nTron and
#: a level-driven DC/SFQ converter can complete a conversion around 0.1ns").
DCSFQ_LATENCY = 0.1 * NS

#: SHIFT cell access time and per-cell shift energy (paper Table 1).
SHIFT_CELL_ACCESS = 0.02 * NS
SHIFT_CELL_ENERGY = 0.1e-15  # 0.1 fJ
SHIFT_CELL_AREA_F2 = 39.0  # F^2, F = JJ diameter

#: SFQ 4-to-16 decoder footprint fabricated in the NEC Nb process
#: (Sec 2.1: 885 um x 350 um = 77 kF^2) vs a synthesized 28 nm CMOS
#: decoder (18.7 um^2 = 23 kF^2).
SFQ_DECODER_4TO16_AREA_F2 = 77_000.0
CMOS_DECODER_4TO16_AREA_F2 = 23_000.0

#: Cooling overhead at 4 K: watts of wall power per watt dissipated in the
#: cryostat (Sec 5, citing Holmes 2013).
CRYO_COOLING_FACTOR = 400.0
