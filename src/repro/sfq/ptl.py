"""Micro-strip passive transmission line (PTL) model — paper Eq. 1-4.

A superconducting micro-strip PTL is modelled as a lossless distributed
LC network.  Its per-unit-length inductance includes both the magnetic
inductance and the kinetic inductance of the paired electrons (Eq. 1);
capacitance follows the parallel-plate formula (Eq. 2); impedance and
delay follow Eq. 3-4.  A PTL link is a PTL plus a driver at the source
and a receiver at the destination; its resonance-limited operating
frequency is f = 1 / (2T + t0) (Sec 4.2.3) and the usable frequency is at
most 90% of f, so long links are broken into repeated segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfq.constants import ERSFQ_1UM, TABLE2_COMPONENTS, SfqProcess
from repro.units import EPSILON0, MU0, NM, UM


#: Fraction of the resonance frequency a PTL may be clocked at (Sec 4.2.3,
#: citing [32]): beyond this, reflections cause timing jitter.
RESONANCE_MARGIN = 0.9


@dataclass(frozen=True)
class MicrostripPtl:
    """Geometry and material parameters of one micro-strip PTL.

    Defaults reflect a Nb/SiO2 micro-strip in the Hypres 1.0 um process:
    a 6 um-wide, 200 nm-thick strip over a 100 nm dielectric with
    lambda ~ 90 nm penetration depth.  This geometry yields a ~5 ohm
    characteristic impedance, matched to the shunt resistance of the
    junctions that drive and receive the line — which is why RSFQ PTLs
    are low-impedance lines (Schindler 2020).

    Attributes:
        width: line width w (m).
        line_thickness: strip thickness t1 (m).
        ground_thickness: ground plane thickness t2 (m).
        dielectric_thickness: dielectric height h (m).
        penetration_depth_line: London penetration depth of the strip (m).
        penetration_depth_ground: penetration depth of the ground (m).
        dielectric_constant: relative permittivity of the insulator.
        fringing_factor: fringing-field factor K in Eq. 1 (>= 1).
        sections_per_mm: LC sections per millimetre used when the line is
            discretised (N in Eq. 4 and in the transient simulator).
    """

    width: float = 6.0 * UM
    line_thickness: float = 200 * NM
    ground_thickness: float = 200 * NM
    dielectric_thickness: float = 100 * NM
    penetration_depth_line: float = 90 * NM
    penetration_depth_ground: float = 90 * NM
    dielectric_constant: float = 3.9  # SiO2
    fringing_factor: float = 1.2
    sections_per_mm: float = 100.0

    def __post_init__(self) -> None:
        for name in (
            "width",
            "line_thickness",
            "ground_thickness",
            "dielectric_thickness",
            "penetration_depth_line",
            "penetration_depth_ground",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"PTL {name} must be positive")
        if self.fringing_factor < 1.0:
            raise ConfigError("fringing factor K must be >= 1")

    @property
    def inductance_per_length(self) -> float:
        """Eq. 1: L per unit length (H/m), magnetic + kinetic terms."""
        h = self.dielectric_thickness
        lam1 = self.penetration_depth_line
        lam2 = self.penetration_depth_ground
        kinetic = (
            lam1 / h / math.tanh(self.line_thickness / lam1)
            + lam2 / h / math.tanh(self.ground_thickness / lam2)
        )
        return MU0 * h / (self.fringing_factor * self.width) * (1.0 + kinetic)

    @property
    def capacitance_per_length(self) -> float:
        """Eq. 2: C per unit length (F/m)."""
        return (
            self.dielectric_constant
            * EPSILON0
            * self.width
            / self.dielectric_thickness
        )

    @property
    def impedance(self) -> float:
        """Eq. 3: characteristic impedance Z = sqrt(L/C) (ohm)."""
        return math.sqrt(self.inductance_per_length / self.capacitance_per_length)

    @property
    def velocity(self) -> float:
        """Pulse propagation velocity 1/sqrt(LC) (m/s)."""
        return 1.0 / math.sqrt(
            self.inductance_per_length * self.capacitance_per_length
        )

    def delay(self, length: float) -> float:
        """Eq. 4: propagation delay T = N sqrt(L_sec C_sec) = length/v (s)."""
        if length < 0:
            raise ConfigError("PTL length must be non-negative")
        return length / self.velocity

    def sections(self, length: float) -> int:
        """Number of LC ladder sections used to discretise ``length``."""
        return max(1, round(self.sections_per_mm * length / 1e-3))


@dataclass(frozen=True)
class PtlLink:
    """A driver + PTL + receiver link, the unit of SFQ H-tree wiring.

    Attributes:
        length: physical line length (m).
        line: micro-strip geometry.
        process: fabrication process (for pulse energy accounting).
    """

    length: float
    line: MicrostripPtl = MicrostripPtl()
    process: SfqProcess = ERSFQ_1UM

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ConfigError("PTL link length must be non-negative")

    @property
    def line_delay(self) -> float:
        """Propagation delay of the bare line (s)."""
        return self.line.delay(self.length)

    @property
    def latency(self) -> float:
        """End-to-end pulse latency: driver + line + receiver (s)."""
        driver = TABLE2_COMPONENTS["driver"].latency
        receiver = TABLE2_COMPONENTS["receiver"].latency
        return driver + self.line_delay + receiver

    @property
    def endpoint_delay(self) -> float:
        """t0 in the resonance formula: driver + receiver delay (s)."""
        return (
            TABLE2_COMPONENTS["driver"].latency
            + TABLE2_COMPONENTS["receiver"].latency
        )

    @property
    def resonance_frequency(self) -> float:
        """f = 1 / (2T + t0) (Hz) — Sec 4.2.3."""
        return 1.0 / (2 * self.line_delay + self.endpoint_delay)

    @property
    def max_frequency(self) -> float:
        """Usable pulse rate: 90% of the resonance frequency (Hz)."""
        return RESONANCE_MARGIN * self.resonance_frequency

    @property
    def dynamic_energy_per_pulse(self) -> float:
        """Energy dissipated moving one SFQ pulse across the link (J).

        The line itself is lossless; dissipation happens in the driver and
        receiver junctions (2 + 3 junction switches respectively).
        """
        driver_jj = TABLE2_COMPONENTS["driver"].jj_count
        receiver_jj = TABLE2_COMPONENTS["receiver"].jj_count
        return (driver_jj + receiver_jj) * self.process.switch_energy

    @property
    def leakage_power(self) -> float:
        """Static power of the link's bias networks (W)."""
        return (
            TABLE2_COMPONENTS["driver"].leakage_power
            + TABLE2_COMPONENTS["receiver"].leakage_power
        )

    @property
    def jj_count(self) -> int:
        """Junction count of the link (driver + receiver)."""
        return (
            TABLE2_COMPONENTS["driver"].jj_count
            + TABLE2_COMPONENTS["receiver"].jj_count
        )


def insert_repeaters(length: float, target_frequency: float,
                     line: MicrostripPtl | None = None,
                     process: SfqProcess = ERSFQ_1UM) -> list[PtlLink]:
    """Split a PTL of ``length`` into repeated segments meeting a pulse rate.

    Repeater insertion (Sec 4.2.3): a long PTL is partitioned into shorter
    driver+receiver segments until every segment's usable frequency (90%
    of resonance) is at least ``target_frequency``.  Returns the list of
    equal-length links; more repeaters raise both the achievable frequency
    and the static/dynamic power.

    Raises:
        ConfigError: if the target frequency is unreachable even with an
            arbitrarily short segment (endpoint delay dominates).
    """
    if length < 0:
        raise ConfigError("length must be non-negative")
    if target_frequency <= 0:
        raise ConfigError("target frequency must be positive")
    line = line or MicrostripPtl()
    zero_length = PtlLink(0.0, line, process)
    if zero_length.max_frequency < target_frequency:
        raise ConfigError(
            f"target {target_frequency:.3g} Hz unreachable: even a zero-"
            f"length link tops out at {zero_length.max_frequency:.3g} Hz"
        )
    if length == 0:
        return [zero_length]
    segments = 1
    while True:
        link = PtlLink(length / segments, line, process)
        if link.max_frequency >= target_frequency:
            return [link] * segments
        segments += 1
