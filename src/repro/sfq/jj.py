"""Josephson-junction device physics (RCSJ model).

The resistively-and-capacitively-shunted-junction (RCSJ) model treats a
junction as the parallel combination of an ideal Josephson element
(I = I_c sin(phi)), a shunt resistance R and a capacitance C.  The phase
phi relates to the voltage across the junction by the second Josephson
relation  V = (Phi_0 / 2 pi) dphi/dt.

These derived quantities drive both the analytical timing models (plasma
period sets the switching delay scale) and the transient circuit
simulator in :mod:`repro.spice`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import PHI0


@dataclass(frozen=True)
class JosephsonJunction:
    """An RCSJ Josephson junction.

    Attributes:
        critical_current: I_c (A).
        capacitance: junction capacitance C (F).
        resistance: effective shunt resistance R (ohm).
    """

    critical_current: float
    capacitance: float
    resistance: float

    def __post_init__(self) -> None:
        if self.critical_current <= 0:
            raise ConfigError("junction critical current must be positive")
        if self.capacitance <= 0:
            raise ConfigError("junction capacitance must be positive")
        if self.resistance <= 0:
            raise ConfigError("junction shunt resistance must be positive")

    @property
    def josephson_inductance(self) -> float:
        """Small-signal Josephson inductance L_J = Phi_0 / (2 pi I_c) (H)."""
        return PHI0 / (2 * math.pi * self.critical_current)

    @property
    def plasma_frequency(self) -> float:
        """Plasma frequency omega_p = 1/sqrt(L_J C) (rad/s)."""
        return 1.0 / math.sqrt(self.josephson_inductance * self.capacitance)

    @property
    def plasma_period(self) -> float:
        """One plasma oscillation period (s); sets the integrator step."""
        return 2 * math.pi / self.plasma_frequency

    @property
    def stewart_mccumber(self) -> float:
        """Damping parameter beta_c = 2 pi I_c R^2 C / Phi_0.

        beta_c ~ 1 means critical damping, the regime SFQ logic needs so a
        switching junction emits exactly one flux quantum.
        """
        return (
            2
            * math.pi
            * self.critical_current
            * self.resistance**2
            * self.capacitance
            / PHI0
        )

    @property
    def characteristic_voltage(self) -> float:
        """V_c = I_c R (V), the scale of the emitted SFQ pulse height."""
        return self.critical_current * self.resistance

    @property
    def pulse_width(self) -> float:
        """Approximate SFQ pulse full width Phi_0 / V_c (s).

        The time integral of an SFQ pulse is exactly Phi_0, and its height
        is ~2 V_c, so the width is ~Phi_0 / (2 V_c); we keep the commonly
        quoted Phi_0 / V_c as a conservative full-width estimate.
        """
        return PHI0 / self.characteristic_voltage

    @property
    def switch_energy(self) -> float:
        """Energy dissipated per switching event, ~ I_c Phi_0 (J)."""
        return self.critical_current * PHI0

    def supercurrent(self, phase: float) -> float:
        """Josephson supercurrent at the given phase (A)."""
        return self.critical_current * math.sin(phase)

    def scaled(self, ic_ratio: float) -> "JosephsonJunction":
        """Return a junction with I_c scaled by ``ic_ratio``.

        Capacitance scales with junction area (same ratio); the shunt is
        rescaled to keep beta_c constant (R ~ 1/sqrt(I_c C) -> R/ratio).
        """
        if ic_ratio <= 0:
            raise ConfigError("ic_ratio must be positive")
        return JosephsonJunction(
            critical_current=self.critical_current * ic_ratio,
            capacitance=self.capacitance * ic_ratio,
            resistance=self.resistance / ic_ratio,
        )


def junction_from_process(process) -> JosephsonJunction:
    """Build the nominal junction for an :class:`~repro.sfq.SfqProcess`."""
    return JosephsonJunction(
        critical_current=process.critical_current,
        capacitance=process.junction_capacitance,
        resistance=process.shunt_resistance,
    )
