"""Physical unit constants and helpers used throughout the library.

All internal quantities use SI base units (seconds, joules, meters, watts,
henries, farads, ohms, amperes) unless a function name or argument says
otherwise (e.g. ``latency_ns``).  The constants below make call sites
read like the paper: ``0.02 * NS``, ``39 * f_squared(jj_diameter)``.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

# ---------------------------------------------------------------------------
# Frequency
# ---------------------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9
THZ = 1e12

# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------
J = 1.0
MJ = 1e-3
UJ = 1e-6
NJ = 1e-9
PJ = 1e-12
FJ = 1e-15
AJ = 1e-18

# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------
W = 1.0
MW = 1e-3
UW = 1e-6
NW = 1e-9

# ---------------------------------------------------------------------------
# Length / area
# ---------------------------------------------------------------------------
M = 1.0
CM = 1e-2
MM = 1e-3
UM = 1e-6
NM = 1e-9

M2 = 1.0
CM2 = 1e-4
MM2 = 1e-6
UM2 = 1e-12
NM2 = 1e-18

# ---------------------------------------------------------------------------
# Electrical
# ---------------------------------------------------------------------------
V = 1.0
MV = 1e-3
UV = 1e-6
A = 1.0
MA = 1e-3
UA = 1e-6
OHM = 1.0
H = 1.0
PH = 1e-12  # picohenry, the natural scale for SFQ inductors
FH = 1e-15
F = 1.0
PF = 1e-12
FF = 1e-15
AF = 1e-18

# ---------------------------------------------------------------------------
# Data sizes (bytes)
# ---------------------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------
PHI0 = 2.067833848e-15  # magnetic flux quantum, Wb
EPSILON0 = 8.8541878128e-12  # vacuum permittivity, F/m
MU0 = 4e-7 * math.pi  # vacuum permeability, H/m
BOLTZMANN = 1.380649e-23  # J/K
ELECTRON_CHARGE = 1.602176634e-19  # C


def f_squared(feature_m: float) -> float:
    """Return the area of one F^2 for a technology feature size ``feature_m``.

    The paper measures superconductor cell sizes in units of F^2 where F is
    the Josephson-junction diameter, and CMOS cell sizes in F^2 where F is
    the CMOS node size (Sec 2.1).
    """
    if feature_m <= 0:
        raise ValueError(f"feature size must be positive, got {feature_m}")
    return feature_m * feature_m


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NS


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds / PS


def to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / GHZ


def to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PJ


def to_fj(joules: float) -> float:
    """Convert joules to femtojoules."""
    return joules / FJ


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MW


def to_mm2(square_meters: float) -> float:
    """Convert square meters to square millimeters."""
    return square_meters / MM2


def to_um2(square_meters: float) -> float:
    """Convert square meters to square micrometers."""
    return square_meters / UM2


def to_mb(num_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return num_bytes / MB
