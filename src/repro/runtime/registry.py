"""The experiment registry: named callables the runtime can execute.

Experiments register themselves (``repro.eval.experiments`` does so on
import) and are thereafter addressable by name from job specs, the CLI
and worker processes — the runtime never pickles callables, only names,
so lambdas and process pools cannot collide.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ConfigError


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes:
        name: registry key (CLI name).
        func: callable returning a list of dict rows.
        description: one-line summary shown by ``repro list``.
        figure: part of the paper-figure suite run by ``repro all``.
    """

    name: str
    func: Callable[..., list[dict]]
    description: str
    figure: bool = True


_REGISTRY: dict[str, Experiment] = {}


def register_experiment(name: str, func: Callable[..., list[dict]],
                        description: str,
                        figure: bool = True) -> Experiment:
    """Register ``func`` under ``name``; replaces any previous entry."""
    experiment = Experiment(name, func, description, figure)
    _REGISTRY[name] = experiment
    return experiment


def unregister_experiment(name: str) -> None:
    """Drop ``name`` from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def ensure_default_experiments() -> None:
    """Load the stock experiments into the registry."""
    import repro.eval.experiments  # noqa: F401  (registers on import)
    import repro.serving.experiments  # noqa: F401  (ditto)


def get(name: str) -> Experiment:
    """Look up one experiment.

    Raises:
        ConfigError: if the name is not registered.
    """
    ensure_default_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; try 'python -m repro list'"
        ) from None


def names() -> list[str]:
    """All registered names, in registration order."""
    ensure_default_experiments()
    return list(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """All registered experiments, in registration order."""
    ensure_default_experiments()
    return list(_REGISTRY.values())


def validate_params(experiment: Experiment,
                    params: Mapping[str, Any]) -> None:
    """Check ``params`` binds to the experiment's signature.

    Raises:
        ConfigError: on unknown parameter names.
    """
    try:
        inspect.signature(experiment.func).bind_partial(**params)
    except TypeError as exc:
        raise ConfigError(
            f"bad parameters for {experiment.name!r}: {exc}"
        ) from exc
