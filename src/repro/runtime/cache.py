"""Content-addressed result cache for experiment rows.

A cache key is the SHA-256 of (experiment name, canonical parameter
JSON, code version); the code version fingerprints every ``.py`` file
of the installed ``repro`` package, so editing any model invalidates
the whole cache rather than serving stale rows.  Entries live as one
JSON file per key under a configurable directory, fronted by a small
in-process LRU so repeated lookups within a session never touch disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.runtime.spec import canonical_params

#: Environment variable overriding the default on-disk location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the package source (memoised per process)."""
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """On-disk JSON store of experiment rows with an in-process LRU."""

    def __init__(self, cache_dir: str | Path | None = None,
                 memory_slots: int = 128) -> None:
        self.cache_dir = Path(
            cache_dir or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        )
        self.memory_slots = memory_slots
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.stats = CacheStats()

    # -- keys ------------------------------------------------------------
    def key(self, experiment: str, params: Mapping[str, Any],
            version: str | None = None) -> str:
        """Content address of one (experiment, params, code) triple."""
        payload = json.dumps({
            "experiment": experiment,
            "params": canonical_params(params),
            "code": version or code_version(),
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # -- lookup / store --------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Return the cached entry for ``key``, or ``None`` on a miss."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return entry
        path = self._path(key)
        if path.exists():
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        self._remember(key, entry)
        self.stats.hits += 1
        return entry

    def put(self, key: str, experiment: str, params: Mapping[str, Any],
            rows: list, elapsed_s: float = 0.0) -> dict:
        """Store rows under ``key`` (atomic write) and return the entry.

        The temporary file carries a per-writer (pid + random) suffix:
        two pool workers storing the same key concurrently each write
        their own temp file and race only on the atomic ``os.replace``,
        never on the bytes — a shared ``<key>.tmp`` could interleave
        writes and publish a torn entry.
        """
        entry = {
            "experiment": experiment,
            "params": dict(params),
            "rows": rows,
            "elapsed_s": elapsed_s,
            "created": time.time(),
        }
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = self.cache_dir / (
            f"{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            tmp.write_text(json.dumps(entry))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self._remember(key, entry)
        self.stats.stores += 1
        return entry

    def _remember(self, key: str, entry: dict) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    # -- maintenance -----------------------------------------------------
    def entries(self) -> list[dict]:
        """Metadata for every on-disk entry (rows elided)."""
        out = []
        if not self.cache_dir.is_dir():
            return out
        for path in sorted(self.cache_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            out.append({
                "key": path.stem,
                "experiment": entry.get("experiment", "?"),
                "params": entry.get("params", {}),
                "rows": len(entry.get("rows") or []),
                "elapsed_s": entry.get("elapsed_s", 0.0),
                "created": entry.get("created", 0.0),
                "bytes": path.stat().st_size,
            })
        return out

    def clear(self) -> int:
        """Delete every on-disk entry; returns how many were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._memory.clear()
        return removed
