"""Experiment orchestration runtime.

All evaluation traffic flows through here: declarative
:class:`~repro.runtime.spec.Job` / :class:`~repro.runtime.spec.Sweep`
specs name registered experiments, the
:class:`~repro.runtime.engine.Runtime` serves results from a
content-addressed cache or fans misses out to a process/thread pool,
and every outcome lands in a persistent JSONL run ledger.

Quick start::

    from repro.runtime import Runtime, Sweep

    runtime = Runtime()
    results = runtime.run_sweep(Sweep(
        "design_space", grid={"frequency": [0.5, 1.0, 2.0, 4.0]}))
    for result in results:
        print(result.job.label, result.elapsed_s, result.cached)
"""

from repro.runtime.cache import CacheStats, ResultCache, code_version
from repro.runtime.engine import RunSummary, Runtime
from repro.runtime.executor import (
    JobResult,
    execute,
    parallel_map,
    resolve_mode,
)
from repro.runtime.registry import (
    Experiment,
    all_experiments,
    ensure_default_experiments,
    register_experiment,
    unregister_experiment,
    validate_params,
)
from repro.runtime.spec import Job, Sweep, canonical_params
from repro.runtime.store import RunRecord, RunStore

__all__ = [
    "CacheStats",
    "Experiment",
    "Job",
    "JobResult",
    "ResultCache",
    "RunRecord",
    "RunStore",
    "RunSummary",
    "Runtime",
    "Sweep",
    "all_experiments",
    "canonical_params",
    "code_version",
    "ensure_default_experiments",
    "execute",
    "parallel_map",
    "register_experiment",
    "resolve_mode",
    "unregister_experiment",
    "validate_params",
]
