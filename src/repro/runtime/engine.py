"""The orchestration engine tying specs, cache, executor and store.

:class:`Runtime` is the one entry point evaluation traffic flows
through: it validates job specs against the registry, serves cache
hits, fans the misses out to the executor, stores fresh results, and
appends every outcome to the persistent run ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.runtime import registry
from repro.runtime.cache import ResultCache
from repro.runtime.executor import JobResult, execute
from repro.runtime.spec import Job, Sweep
from repro.runtime.store import RunRecord, RunStore, new_run_id


@dataclass
class RunSummary:
    """Aggregate accounting for one :meth:`Runtime.run_jobs` call."""

    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: int = 0
    wall_s: float = 0.0


class Runtime:
    """Experiment orchestrator with caching, parallelism and a ledger.

    Args:
        cache: result cache to consult/populate; built from the
            environment when omitted.  Pass ``use_cache=False`` to
            bypass caching entirely.
        store: run ledger; built from the environment when omitted.
            Pass ``record_runs=False`` to skip ledger writes.
        mode: execution mode (``auto``/``process``/``thread``/``inline``).
        max_workers: pool width; defaults to the CPU count.
        job_timeout: per-job wall-clock bound (s); a job exceeding it
            becomes a per-job ``TimeoutError`` result instead of
            blocking the batch.  ``None`` waits indefinitely.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 store: Optional[RunStore] = None, mode: str = "auto",
                 max_workers: Optional[int] = None, use_cache: bool = True,
                 record_runs: bool = True,
                 job_timeout: Optional[float] = None) -> None:
        self.cache = (cache or ResultCache()) if use_cache else None
        self.store = (store or RunStore()) if record_runs else None
        self.mode = mode
        self.max_workers = max_workers
        self.job_timeout = job_timeout
        self.last_summary = RunSummary()

    # -- public API ------------------------------------------------------
    def run_jobs(self, jobs: Iterable[Job]) -> list[JobResult]:
        """Run jobs (cache-first, then parallel) in submission order."""
        jobs = list(jobs)
        for job in jobs:
            experiment = registry.get(job.experiment)
            registry.validate_params(experiment, job.params)

        started = time.perf_counter()
        results: list[Optional[JobResult]] = [None] * len(jobs)
        keys: list[Optional[str]] = [None] * len(jobs)
        pending: list[int] = []
        for i, job in enumerate(jobs):
            if self.cache is not None:
                keys[i] = self.cache.key(job.experiment, job.params)
                entry = self.cache.get(keys[i])
                if entry is not None:
                    results[i] = JobResult(
                        job, rows=entry["rows"],
                        elapsed_s=entry.get("elapsed_s", 0.0),
                        cached=True, worker="cache")
                    continue
            pending.append(i)

        executed = execute([jobs[i] for i in pending], mode=self.mode,
                           max_workers=self.max_workers,
                           timeout_s=self.job_timeout)
        for i, result in zip(pending, executed):
            results[i] = result
            if (self.cache is not None and result.ok
                    and keys[i] is not None):
                self.cache.put(keys[i], result.job.experiment,
                               result.job.params, result.rows,
                               result.elapsed_s)

        final = [r for r in results if r is not None]
        self._record(final)
        self.last_summary = RunSummary(
            jobs=len(final),
            cache_hits=sum(r.cached for r in final),
            executed=len(pending),
            errors=sum(not r.ok for r in final),
            wall_s=time.perf_counter() - started,
        )
        return final

    def run_sweep(self, sweep: Sweep) -> list[JobResult]:
        """Expand a sweep's grid and run every job."""
        return self.run_jobs(sweep.jobs())

    def run_experiment(self, name: str, **params) -> JobResult:
        """Convenience wrapper: run a single job and return its result."""
        return self.run_jobs([Job(name, params)])[0]

    # -- internals -------------------------------------------------------
    def _record(self, results: list[JobResult]) -> None:
        if self.store is None:
            return
        now = time.time()
        for result in results:
            # A cache hit costs ~nothing; its JobResult carries the
            # ORIGINAL run's elapsed time, which must not be re-logged
            # as if the work happened again.
            elapsed = 0.0 if result.cached else result.elapsed_s
            self.store.append(RunRecord(
                run_id=new_run_id(),
                experiment=result.job.experiment,
                params=dict(result.job.params),
                started=now - elapsed,
                elapsed_s=elapsed,
                cached=result.cached,
                error=result.error,
                row_count=len(result.rows or []),
            ))
