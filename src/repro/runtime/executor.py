"""Parallel job execution on top of :mod:`concurrent.futures`.

Workers receive only (experiment name, params) pairs and resolve the
callable through the registry inside the worker, so process pools never
pickle closures.  Results always come back in submission order; a job
that raises is captured as a per-job error string instead of aborting
the batch.  If the platform refuses process pools (restricted sandboxes
without semaphores), execution transparently falls back to threads.

Pools are **reused** across calls: a module-level registry keys each
executor by pool class, width and (when one is shipped) the initializer
payload's fingerprint, so a sharded run, a geo run and a sweep phase in
the same process stop paying pool spin-up and worker re-import per
call.  An initializer payload — scenario, fleet plan, memo snapshot —
is pickled **once per worker** at pool creation (workers read it back
via :func:`worker_payload`) instead of once per submitted job.  Broken
or timed-out pools are evicted from the registry and transparently
replaced on the next call; every surviving pool is shut down by a
single ``atexit`` hook (:func:`shutdown_pools`).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as PoolTimeout
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.runtime.spec import Job

#: Recognised execution modes.
MODES = ("auto", "process", "thread", "inline")


@dataclass
class JobResult:
    """Outcome of one job: rows or an error, plus wall-time metadata.

    Attributes:
        job: the spec that produced this result.
        rows: experiment rows on success, ``None`` on failure.
        error: ``"ExcType: message"`` on failure, ``None`` on success.
        elapsed_s: wall time of the experiment callable itself.
        cached: rows were served from the result cache.
        worker: where the job ran (process/thread/inline/cache).
    """

    job: Job
    rows: Optional[list] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    cached: bool = False
    worker: str = "inline"

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_experiment(name: str, params: dict) -> tuple[list, float]:
    """Worker entry point: resolve by name and time the call."""
    from repro.runtime import registry

    start = time.perf_counter()
    rows = registry.get(name).func(**params)
    return rows, time.perf_counter() - start


def resolve_mode(jobs: Sequence[Job], mode: str = "auto") -> str:
    """Pick a concrete execution mode for this batch of jobs.

    Experiments are pure-Python CPU-bound code, so the GIL makes
    threads useless for speedup; auto mode therefore picks a process
    pool for any multi-job batch (with a thread fallback only for
    platforms that refuse process pools) and runs single jobs inline.
    """
    if mode not in MODES:
        raise ConfigError(f"unknown execution mode {mode!r}; use "
                          f"one of {', '.join(MODES)}")
    if mode != "auto":
        return mode
    return "inline" if len(jobs) <= 1 else "process"


def default_workers(n_jobs: int) -> int:
    return max(1, min(n_jobs, os.cpu_count() or 2))


# ---------------------------------------------------------------------------
# The persistent pool registry
# ---------------------------------------------------------------------------
#: Live executors keyed by ``(pool class name, width, payload token)``.
_POOLS: dict[tuple[str, int, str], object] = {}

#: The payload this worker received at pool initialisation (set in
#: worker processes by :func:`_init_worker`; in thread/inline modes the
#: "worker" shares the caller's module globals, same semantics).
_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    """Pool initializer: pin the broadcast payload in this worker."""
    global _PAYLOAD
    _PAYLOAD = payload


def worker_payload() -> Any:
    """The payload shipped to this worker via the pool initializer
    (``None`` when the pool was built without one)."""
    return _PAYLOAD


def _payload_token(payload: Any) -> str:
    if payload is None:
        return ""
    return hashlib.sha256(pickle.dumps(payload)).hexdigest()[:16]


def _registry_token() -> str:
    """Identity of the experiment registry's current contents.

    Forked process workers snapshot the registry at pool creation;
    keying :func:`execute`'s pools on this token means registering,
    replacing or removing an experiment retires stale pools instead
    of resolving names against a worker's old snapshot.
    """
    from repro.runtime import registry

    state = tuple(sorted((name, id(exp.func))
                         for name, exp in registry._REGISTRY.items()))
    return f"registry:{hash(state):x}"


def _get_pool(pool_cls, workers: int, payload: Any = None,
              token: Optional[str] = None) -> tuple[tuple, object, bool]:
    """A (possibly reused) executor for this shape and payload.

    Returns ``(registry key, pool, reused)``.  At most one pool lives
    per (class, width) shape: asking for the same shape with a
    *different* payload (or explicit ``token``) evicts and replaces
    the old pool — its workers hold a stale broadcast or module
    snapshot — which keeps the resident process count bounded by the
    number of distinct shapes in flight.
    """
    key = (pool_cls.__name__, workers,
           _payload_token(payload) if token is None else token)
    pool = _POOLS.get(key)
    if pool is not None:
        return key, pool, True
    for other in [k for k in _POOLS
                  if k[0] == key[0] and k[1] == key[1]]:
        _POOLS.pop(other).shutdown(wait=False, cancel_futures=True)
    # always run the initializer — a payload-less pool must *clear*
    # ``_PAYLOAD`` in its workers, since forked children inherit
    # whatever broadcast an earlier inline/thread call pinned in the
    # parent's module globals
    pool = pool_cls(max_workers=workers, initializer=_init_worker,
                    initargs=(payload,))
    _POOLS[key] = pool
    return key, pool, False


def _discard_pool(key: tuple, wait: bool = False) -> None:
    """Drop one pool from the registry and shut it down."""
    pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut every registered pool down (the ``atexit`` hook).

    Also the escape hatch for callers that need a *fresh* fork — e.g.
    after monkeypatching module state a forked worker must observe —
    since pooled process workers snapshot the parent at pool creation.
    """
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _execute_inline(jobs: Sequence[Job]) -> list[JobResult]:
    results = []
    for job in jobs:
        try:
            rows, elapsed = _call_experiment(job.experiment,
                                             dict(job.params))
            results.append(JobResult(job, rows=rows, elapsed_s=elapsed))
        except Exception as exc:
            results.append(JobResult(
                job, error=f"{type(exc).__name__}: {exc}"))
    return results


def _execute_pool(jobs: Sequence[Job], pool_cls, label: str,
                  max_workers: Optional[int],
                  timeout_s: Optional[float] = None) -> list[JobResult]:
    results: list[Optional[JobResult]] = [None] * len(jobs)
    workers = max_workers or default_workers(len(jobs))
    timed_out = False
    broken = False
    key, pool, _ = _get_pool(pool_cls, workers,
                             token=_registry_token())
    try:
        futures = [
            pool.submit(_call_experiment, job.experiment, dict(job.params))
            for job in jobs
        ]
        for i, (job, future) in enumerate(zip(jobs, futures)):
            try:
                rows, elapsed = future.result(timeout_s)
                results[i] = JobResult(job, rows=rows, elapsed_s=elapsed,
                                       worker=label)
            except PoolTimeout:
                # a hung job becomes a per-job error instead of wedging
                # the whole batch indefinitely
                timed_out = True
                future.cancel()
                results[i] = JobResult(
                    job, error=f"TimeoutError: job exceeded "
                               f"{timeout_s:g}s", worker=label)
            except BrokenExecutor:
                broken = True
                raise
            except Exception as exc:
                results[i] = JobResult(
                    job, error=f"{type(exc).__name__}: {exc}",
                    worker=label)
    except (BrokenExecutor, OSError):
        broken = True
        raise
    finally:
        if timed_out:
            # the hung worker would block a normal shutdown forever;
            # kill process workers outright (threads cannot be killed —
            # a timed-out thread job leaks its thread, best-effort)
            if pool_cls is ProcessPoolExecutor:
                procs = getattr(pool, "_processes", None) or {}
                for proc in list(procs.values()):
                    proc.terminate()
            _discard_pool(key)
        elif broken:
            _discard_pool(key)
        # a healthy pool stays registered for the next call
    return results  # type: ignore[return-value]


def execute(jobs: Iterable[Job], mode: str = "auto",
            max_workers: Optional[int] = None,
            timeout_s: Optional[float] = None) -> list[JobResult]:
    """Run jobs and return their results in submission order.

    Errors raised by individual experiments are aggregated into the
    corresponding :class:`JobResult`; they never abort the batch.
    ``timeout_s`` bounds each job's result wait — a job that exceeds it
    is reported as a per-job ``TimeoutError`` result (and its process
    worker is terminated) rather than blocking the batch.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigError("timeout_s must be positive")
    mode = resolve_mode(jobs, mode)
    if mode == "inline":
        return _execute_inline(jobs)
    if mode == "process":
        try:
            return _execute_pool(jobs, ProcessPoolExecutor, "process",
                                 max_workers, timeout_s)
        except (BrokenExecutor, OSError):
            mode = "thread"  # sandboxes without fork/semaphores
    return _execute_pool(jobs, ThreadPoolExecutor, "thread", max_workers,
                         timeout_s)


def parallel_map(func: Callable[..., Any],
                 argtuples: Iterable[tuple],
                 mode: str = "process",
                 max_workers: Optional[int] = None,
                 stats: Optional[dict] = None,
                 payload: Any = None) -> list[Any]:
    """Order-preserving parallel map over argument tuples.

    Unlike :func:`execute`, exceptions propagate to the caller (the
    first failing item in submission order wins).  ``func`` must be a
    module-level callable when ``mode="process"``.

    ``payload``, if given, is broadcast to every worker once via the
    pool initializer — workers read it back with
    :func:`worker_payload` — instead of being pickled into each job.
    Pools are reused across calls with the same mode/width/payload
    (see :func:`_get_pool`).

    When a process pool breaks mid-run, completed items are kept and
    only the incomplete ones are re-run under the thread fallback.
    ``stats``, if given, is updated in place: ``stats["retried"]``
    counts the items that needed re-running, and
    ``stats["pool_reused"]`` the calls served by an already-warm pool.
    """
    items = list(argtuples)
    if stats is not None:
        stats.setdefault("retried", 0)
    if mode == "inline" or len(items) <= 1:
        # inline "workers" are the caller's process: pin (or clear)
        # the broadcast global so worker_payload() sees this call's
        # payload, never a stale one from an earlier map
        _init_worker(payload)
        return [func(*args) for args in items]
    pool_cls = {"process": ProcessPoolExecutor,
                "thread": ThreadPoolExecutor}.get(mode)
    if pool_cls is None:
        raise ConfigError(f"unknown execution mode {mode!r}")
    if pool_cls is ThreadPoolExecutor:
        # thread workers share this module's globals with the caller;
        # the pool initializer only re-sets the same global, so pin it
        # here too — which also *clears* it for payload-less calls
        _init_worker(payload)
    workers = max_workers or default_workers(len(items))
    # Only pool-infrastructure failures may trigger the thread
    # fallback; an OSError raised by ``func`` itself must propagate,
    # not silently re-run the whole map.
    key = None
    try:
        key, pool, reused = _get_pool(pool_cls, workers, payload)
        if reused and stats is not None:
            stats["pool_reused"] = stats.get("pool_reused", 0) + 1
        futures = [pool.submit(func, *args) for args in items]
    except (BrokenExecutor, OSError):
        if key is not None:
            _discard_pool(key)
        if mode != "process":
            raise
        if stats is not None:
            stats["retried"] += len(items)
        return parallel_map(func, items, "thread", max_workers,
                            stats=None, payload=payload)
    results: list[Any] = [None] * len(items)
    pending: list[int] = []
    for i, future in enumerate(futures):
        try:
            results[i] = future.result()
        except BrokenExecutor:
            if mode != "process":
                _discard_pool(key)
                raise
            # this item never completed; items that did are kept —
            # the fallback re-runs only what the broken pool dropped
            pending.append(i)
    if not pending:
        return results
    _discard_pool(key)
    if stats is not None:
        stats["retried"] += len(pending)
    rerun = parallel_map(func, [items[i] for i in pending], "thread",
                         max_workers, payload=payload)
    for i, value in zip(pending, rerun):
        results[i] = value
    return results
