"""Parallel job execution on top of :mod:`concurrent.futures`.

Workers receive only (experiment name, params) pairs and resolve the
callable through the registry inside the worker, so process pools never
pickle closures.  Results always come back in submission order; a job
that raises is captured as a per-job error string instead of aborting
the batch.  If the platform refuses process pools (restricted sandboxes
without semaphores), execution transparently falls back to threads.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as PoolTimeout
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.runtime.spec import Job

#: Recognised execution modes.
MODES = ("auto", "process", "thread", "inline")


@dataclass
class JobResult:
    """Outcome of one job: rows or an error, plus wall-time metadata.

    Attributes:
        job: the spec that produced this result.
        rows: experiment rows on success, ``None`` on failure.
        error: ``"ExcType: message"`` on failure, ``None`` on success.
        elapsed_s: wall time of the experiment callable itself.
        cached: rows were served from the result cache.
        worker: where the job ran (process/thread/inline/cache).
    """

    job: Job
    rows: Optional[list] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    cached: bool = False
    worker: str = "inline"

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_experiment(name: str, params: dict) -> tuple[list, float]:
    """Worker entry point: resolve by name and time the call."""
    from repro.runtime import registry

    start = time.perf_counter()
    rows = registry.get(name).func(**params)
    return rows, time.perf_counter() - start


def resolve_mode(jobs: Sequence[Job], mode: str = "auto") -> str:
    """Pick a concrete execution mode for this batch of jobs.

    Experiments are pure-Python CPU-bound code, so the GIL makes
    threads useless for speedup; auto mode therefore picks a process
    pool for any multi-job batch (with a thread fallback only for
    platforms that refuse process pools) and runs single jobs inline.
    """
    if mode not in MODES:
        raise ConfigError(f"unknown execution mode {mode!r}; use "
                          f"one of {', '.join(MODES)}")
    if mode != "auto":
        return mode
    return "inline" if len(jobs) <= 1 else "process"


def default_workers(n_jobs: int) -> int:
    return max(1, min(n_jobs, os.cpu_count() or 2))


def _execute_inline(jobs: Sequence[Job]) -> list[JobResult]:
    results = []
    for job in jobs:
        try:
            rows, elapsed = _call_experiment(job.experiment,
                                             dict(job.params))
            results.append(JobResult(job, rows=rows, elapsed_s=elapsed))
        except Exception as exc:
            results.append(JobResult(
                job, error=f"{type(exc).__name__}: {exc}"))
    return results


def _execute_pool(jobs: Sequence[Job], pool_cls, label: str,
                  max_workers: Optional[int],
                  timeout_s: Optional[float] = None) -> list[JobResult]:
    results: list[Optional[JobResult]] = [None] * len(jobs)
    workers = max_workers or default_workers(len(jobs))
    timed_out = False
    pool = pool_cls(max_workers=workers)
    try:
        futures = [
            pool.submit(_call_experiment, job.experiment, dict(job.params))
            for job in jobs
        ]
        for i, (job, future) in enumerate(zip(jobs, futures)):
            try:
                rows, elapsed = future.result(timeout_s)
                results[i] = JobResult(job, rows=rows, elapsed_s=elapsed,
                                       worker=label)
            except PoolTimeout:
                # a hung job becomes a per-job error instead of wedging
                # the whole batch indefinitely
                timed_out = True
                future.cancel()
                results[i] = JobResult(
                    job, error=f"TimeoutError: job exceeded "
                               f"{timeout_s:g}s", worker=label)
            except BrokenExecutor:
                raise
            except Exception as exc:
                results[i] = JobResult(
                    job, error=f"{type(exc).__name__}: {exc}",
                    worker=label)
    finally:
        if timed_out:
            # the hung worker would block a normal shutdown forever;
            # kill process workers outright (threads cannot be killed —
            # a timed-out thread job leaks its thread, best-effort)
            if pool_cls is ProcessPoolExecutor:
                procs = getattr(pool, "_processes", None) or {}
                for proc in list(procs.values()):
                    proc.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
    return results  # type: ignore[return-value]


def execute(jobs: Iterable[Job], mode: str = "auto",
            max_workers: Optional[int] = None,
            timeout_s: Optional[float] = None) -> list[JobResult]:
    """Run jobs and return their results in submission order.

    Errors raised by individual experiments are aggregated into the
    corresponding :class:`JobResult`; they never abort the batch.
    ``timeout_s`` bounds each job's result wait — a job that exceeds it
    is reported as a per-job ``TimeoutError`` result (and its process
    worker is terminated) rather than blocking the batch.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigError("timeout_s must be positive")
    mode = resolve_mode(jobs, mode)
    if mode == "inline":
        return _execute_inline(jobs)
    if mode == "process":
        try:
            return _execute_pool(jobs, ProcessPoolExecutor, "process",
                                 max_workers, timeout_s)
        except (BrokenExecutor, OSError):
            mode = "thread"  # sandboxes without fork/semaphores
    return _execute_pool(jobs, ThreadPoolExecutor, "thread", max_workers,
                         timeout_s)


def parallel_map(func: Callable[..., Any],
                 argtuples: Iterable[tuple],
                 mode: str = "process",
                 max_workers: Optional[int] = None,
                 stats: Optional[dict] = None) -> list[Any]:
    """Order-preserving parallel map over argument tuples.

    Unlike :func:`execute`, exceptions propagate to the caller (the
    first failing item in submission order wins).  ``func`` must be a
    module-level callable when ``mode="process"``.

    When a process pool breaks mid-run, completed items are kept and
    only the incomplete ones are re-run under the thread fallback.
    ``stats``, if given, is updated in place: ``stats["retried"]``
    counts the items that needed re-running.
    """
    items = list(argtuples)
    if stats is not None:
        stats.setdefault("retried", 0)
    if mode == "inline" or len(items) <= 1:
        return [func(*args) for args in items]
    pool_cls = {"process": ProcessPoolExecutor,
                "thread": ThreadPoolExecutor}.get(mode)
    if pool_cls is None:
        raise ConfigError(f"unknown execution mode {mode!r}")
    workers = max_workers or default_workers(len(items))
    # Only pool-infrastructure failures may trigger the thread
    # fallback; an OSError raised by ``func`` itself must propagate,
    # not silently re-run the whole map.
    try:
        pool = pool_cls(max_workers=workers)
        with pool:
            futures = [pool.submit(func, *args) for args in items]
    except (BrokenExecutor, OSError):
        if mode != "process":
            raise
        if stats is not None:
            stats["retried"] += len(items)
        return parallel_map(func, items, "thread", max_workers)
    results: list[Any] = [None] * len(items)
    pending: list[int] = []
    for i, future in enumerate(futures):
        try:
            results[i] = future.result()
        except BrokenExecutor:
            if mode != "process":
                raise
            # this item never completed; items that did are kept —
            # the fallback re-runs only what the broken pool dropped
            pending.append(i)
    if not pending:
        return results
    if stats is not None:
        stats["retried"] += len(pending)
    rerun = parallel_map(func, [items[i] for i in pending], "thread",
                         max_workers)
    for i, value in zip(pending, rerun):
        results[i] = value
    return results
