"""Declarative job specifications for the experiment runtime.

A :class:`Job` names one registered experiment plus the keyword
parameters it should run with; a :class:`Sweep` is a parameter grid
over one experiment that expands into the cartesian product of jobs.
Both are plain frozen dataclasses so they can be constructed in specs,
logged, hashed and shipped to worker processes.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a parameter mapping.

    Keys are sorted so that two mappings with the same items produce the
    same string; the result is the unit the cache hashes.

    Raises:
        ConfigError: if a value is not JSON-serialisable.
    """
    try:
        return json.dumps(dict(params), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"experiment parameters must be JSON-serialisable: {exc}"
        ) from exc


@dataclass(frozen=True)
class Job:
    """One experiment invocation: a registered name plus parameters.

    Attributes:
        experiment: registry name of the experiment callable.
        params: keyword arguments passed to the callable.
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise ConfigError("a Job needs a non-empty experiment name")
        object.__setattr__(self, "params", dict(self.params))
        canonical_params(self.params)  # fail fast on bad values

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``design_space[frequency=2]``."""
        if not self.params:
            return self.experiment
        inner = ",".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.experiment}[{inner}]"


@dataclass(frozen=True)
class Sweep:
    """A parameter grid over one experiment.

    Attributes:
        experiment: registry name of the experiment callable.
        grid: parameter name -> sequence of values to sweep.
        base: parameters shared by every job (overridden by the grid).
    """

    experiment: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise ConfigError("a Sweep needs a non-empty experiment name")
        grid = {}
        for name, values in dict(self.grid).items():
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, Sequence):
                raise ConfigError(
                    f"sweep axis {name!r} must be a sequence of values"
                )
            if not values:
                raise ConfigError(f"sweep axis {name!r} is empty")
            grid[name] = list(values)
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "base", dict(self.base))
        canonical_params(self.base)

    @property
    def size(self) -> int:
        """Number of jobs the grid expands into."""
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def jobs(self) -> list[Job]:
        """Expand the grid into jobs, in deterministic axis order."""
        if not self.grid:
            return [Job(self.experiment, dict(self.base))]
        axes = list(self.grid)
        jobs = []
        for combo in itertools.product(*(self.grid[a] for a in axes)):
            params = dict(self.base)
            params.update(zip(axes, combo))
            jobs.append(Job(self.experiment, params))
        return jobs
