"""Persistent run store: a JSONL ledger of past experiment runs.

Every job the runtime executes (or serves from cache) appends one line
with its parameters, timing and outcome, so ``python -m repro runs``
can answer "what ran, when, and how long did it take" across sessions.
Malformed lines are skipped on read — a truncated tail (crash mid-
write) never poisons the ledger.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

#: Environment variable overriding the default ledger path.
RUN_STORE_ENV = "REPRO_RUN_STORE"

#: Default ledger path, relative to the working directory.
DEFAULT_RUN_STORE = ".repro-cache/runs.jsonl"


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class RunRecord:
    """One ledger line.

    Attributes:
        run_id: unique id for this execution.
        experiment: registry name that ran.
        params: parameters the job ran with.
        started: POSIX timestamp the job started.
        elapsed_s: wall time of the experiment callable.
        cached: rows came from the result cache.
        error: failure string, or ``None`` on success.
        row_count: number of rows produced.
    """

    run_id: str
    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    started: float = 0.0
    elapsed_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    row_count: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})


class RunStore:
    """Append-only JSONL ledger of :class:`RunRecord` lines."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(
            path or os.environ.get(RUN_STORE_ENV) or DEFAULT_RUN_STORE
        )

    def append(self, record: RunRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(record.to_json() + "\n")

    def records(self) -> list[RunRecord]:
        """Every parseable record, oldest first."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(RunRecord.from_json(line))
            except (json.JSONDecodeError, TypeError):
                continue
        return out

    def recent(self, limit: int = 20) -> list[RunRecord]:
        """The last ``limit`` records, newest first."""
        return list(reversed(self.records()[-limit:]))

    def for_experiment(self, name: str) -> list[RunRecord]:
        """All records of one experiment, oldest first."""
        return [r for r in self.records() if r.experiment == name]

    def clear(self) -> int:
        """Delete the ledger; returns how many records were dropped."""
        count = len(self.records())
        if self.path.exists():
            self.path.unlink()
        return count

    def __len__(self) -> int:
        return len(self.records())
