"""Persistent run store: a JSONL ledger of past experiment runs.

Every job the runtime executes (or serves from cache) appends one line
with its parameters, timing and outcome, so ``python -m repro runs``
can answer "what ran, when, and how long did it take" across sessions.
Malformed lines are skipped on read — a truncated tail (crash mid-
write) never poisons the ledger.

Reads are cheap: a parsed snapshot is memoised against the file's
``(mtime_ns, size)`` stamp, so repeated :meth:`RunStore.records` calls
within one process parse the ledger once (appends through the same
store extend the snapshot in place), and :meth:`RunStore.recent` on a
cold store reads the file backwards in blocks, parsing only the tail
it needs instead of the whole ledger.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

#: Environment variable overriding the default ledger path.
RUN_STORE_ENV = "REPRO_RUN_STORE"

#: Default ledger path, relative to the working directory.
DEFAULT_RUN_STORE = ".repro-cache/runs.jsonl"


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class RunRecord:
    """One ledger line.

    Attributes:
        run_id: unique id for this execution.
        experiment: registry name that ran.
        params: parameters the job ran with.
        started: POSIX timestamp the job started.
        elapsed_s: wall time of the experiment callable.
        cached: rows came from the result cache.
        error: failure string, or ``None`` on success.
        row_count: number of rows produced.
    """

    run_id: str
    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    started: float = 0.0
    elapsed_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    row_count: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})


class RunStore:
    """Append-only JSONL ledger of :class:`RunRecord` lines."""

    #: Block size for backward tail reads (overridable per instance
    #: in tests to exercise chunk boundaries).
    _CHUNK = 64 * 1024

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(
            path or os.environ.get(RUN_STORE_ENV) or DEFAULT_RUN_STORE
        )
        self._cache: Optional[list[RunRecord]] = None
        self._stamp: Optional[tuple[int, int]] = None

    def _stat(self) -> Optional[tuple[int, int]]:
        """The ledger's freshness stamp, or None when absent."""
        try:
            stat = self.path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    @staticmethod
    def _parse(line: bytes) -> Optional[RunRecord]:
        line = line.strip()
        if not line:
            return None
        try:
            return RunRecord.from_json(line.decode("utf-8"))
        except (json.JSONDecodeError, TypeError, UnicodeDecodeError):
            return None

    def append(self, record: RunRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        before = self._stat()
        with self.path.open("a") as handle:
            handle.write(record.to_json() + "\n")
        if self._cache is not None and before == self._stamp:
            # nobody else wrote since the snapshot: extend in place
            self._cache.append(record)
            self._stamp = self._stat()
        else:
            self._cache = self._stamp = None

    def records(self) -> list[RunRecord]:
        """Every parseable record, oldest first (memoised until the
        ledger file's stamp changes)."""
        stamp = self._stat()
        if stamp is None:
            self._cache = self._stamp = None
            return []
        if self._cache is None or stamp != self._stamp:
            self._cache = [
                record for line in self.path.read_bytes().split(b"\n")
                if (record := self._parse(line)) is not None
            ]
            self._stamp = stamp
        return list(self._cache)

    def _tail_records(self, limit: int) -> list[RunRecord]:
        """The last ``limit`` parseable records, newest first, reading
        the file backwards block-by-block."""
        out: list[RunRecord] = []
        with self.path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            pos = handle.tell()
            buffer = b""
            while pos > 0 and len(out) < limit:
                step = min(self._CHUNK, pos)
                pos -= step
                handle.seek(pos)
                buffer = handle.read(step) + buffer
                lines = buffer.split(b"\n")
                # lines[0] may straddle the next (earlier) block; hold
                # it back until that block is read (or file start)
                buffer = lines[0]
                for line in reversed(lines[1:]):
                    record = self._parse(line)
                    if record is not None:
                        out.append(record)
                        if len(out) >= limit:
                            break
            if pos == 0 and len(out) < limit:
                record = self._parse(buffer)
                if record is not None:
                    out.append(record)
        return out

    def recent(self, limit: int = 20) -> list[RunRecord]:
        """The last ``limit`` records, newest first.

        Served from the memoised snapshot when fresh; otherwise reads
        just the ledger's tail instead of parsing the whole file.
        """
        if limit < 1:
            return []
        stamp = self._stat()
        if stamp is None:
            return []
        if self._cache is not None and stamp == self._stamp:
            return list(reversed(self._cache[-limit:]))
        return self._tail_records(limit)

    def for_experiment(self, name: str) -> list[RunRecord]:
        """All records of one experiment, oldest first."""
        return [r for r in self.records() if r.experiment == name]

    def clear(self) -> int:
        """Delete the ledger; returns how many records were dropped."""
        count = len(self.records())
        if self.path.exists():
            self.path.unlink()
        self._cache = self._stamp = None
        return count

    def __len__(self) -> int:
        return len(self.records())
