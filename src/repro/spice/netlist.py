"""Netlist container and validation for the transient simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.sfq.jj import JosephsonJunction
from repro.spice.elements import (
    BiasSource,
    Capacitor,
    Inductor,
    JJElement,
    PulseSource,
    Resistor,
    TransmissionLine,
)

GROUND_NAMES = ("gnd", "0")

#: Parasitic capacitance to ground added to any node that would otherwise
#: have none, so the nodal ODE system stays well-posed (F).
DEFAULT_NODE_CAPACITANCE = 1.0e-15


@dataclass
class Netlist:
    """A mutable collection of circuit elements keyed by unique names.

    Build circuits with the ``add_*`` methods; node names are created
    implicitly on first use.  ``validate()`` checks connectivity and is
    called by the engine before compilation.
    """

    title: str = "untitled"
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    inductors: list[Inductor] = field(default_factory=list)
    junctions: list[JJElement] = field(default_factory=list)
    bias_sources: list[BiasSource] = field(default_factory=list)
    pulse_sources: list[PulseSource] = field(default_factory=list)
    tlines: list[TransmissionLine] = field(default_factory=list)

    def _check_name(self, name: str) -> None:
        if name in self._names():
            raise NetlistError(f"duplicate element name: {name}")

    def _names(self) -> set[str]:
        names = set()
        for group in (
            self.resistors,
            self.capacitors,
            self.inductors,
            self.junctions,
            self.bias_sources,
            self.pulse_sources,
            self.tlines,
        ):
            names.update(e.name for e in group)
        return names

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add_resistor(self, name: str, pos: str, neg: str, ohms: float) -> Resistor:
        """Add a resistor and return it."""
        self._check_name(name)
        element = Resistor(name, pos, neg, ohms)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, pos: str, neg: str, farads: float) -> Capacitor:
        """Add a capacitor and return it."""
        self._check_name(name)
        element = Capacitor(name, pos, neg, farads)
        self.capacitors.append(element)
        return element

    def add_inductor(self, name: str, pos: str, neg: str, henries: float) -> Inductor:
        """Add an inductor and return it."""
        self._check_name(name)
        element = Inductor(name, pos, neg, henries)
        self.inductors.append(element)
        return element

    def add_junction(
        self, name: str, pos: str, neg: str, junction: JosephsonJunction
    ) -> JJElement:
        """Add a Josephson junction and return it."""
        self._check_name(name)
        element = JJElement(name, pos, neg, junction)
        self.junctions.append(element)
        return element

    def add_bias(self, name: str, node: str, current: float,
                 neg: str = "gnd") -> BiasSource:
        """Add a DC current bias into ``node`` and return it."""
        self._check_name(name)
        element = BiasSource(name, node, neg, current)
        self.bias_sources.append(element)
        return element

    def add_pulse(self, name: str, node: str, times: tuple[float, ...],
                  neg: str = "gnd", sigma: float = 1.0e-12,
                  area: float = 2.0e-16) -> PulseSource:
        """Add a pulsed current source into ``node`` and return it."""
        self._check_name(name)
        element = PulseSource(name, node, neg, times, sigma, area)
        self.pulse_sources.append(element)
        return element

    def add_tline(self, name: str, port1: str, port2: str, z0: float,
                  delay: float) -> TransmissionLine:
        """Add an ideal lossless transmission line between two ports."""
        self._check_name(name)
        element = TransmissionLine(name, port1, port2, z0, delay)
        self.tlines.append(element)
        return element

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """All non-ground node names, in deterministic insertion order."""
        seen: dict[str, None] = {}
        for group in (
            self.resistors,
            self.capacitors,
            self.inductors,
            self.junctions,
            self.bias_sources,
            self.pulse_sources,
            self.tlines,
        ):
            for element in group:
                for node in (element.node_pos, element.node_neg):
                    if node not in GROUND_NAMES:
                        seen.setdefault(node, None)
        return list(seen)

    def element_count(self) -> int:
        """Total number of elements."""
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.inductors)
            + len(self.junctions)
            + len(self.bias_sources)
            + len(self.pulse_sources)
            + len(self.tlines)
        )

    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems.

        Checks: at least one element, at least one ground connection, and
        no node connected only to current sources (which would have no
        defined dynamics).
        """
        if self.element_count() == 0:
            raise NetlistError(f"netlist '{self.title}' is empty")
        grounded = False
        for group in (
            self.resistors,
            self.capacitors,
            self.inductors,
            self.junctions,
            self.tlines,
        ):
            for element in group:
                if (
                    element.node_pos in GROUND_NAMES
                    or element.node_neg in GROUND_NAMES
                ):
                    grounded = True
        if not grounded:
            raise NetlistError(
                f"netlist '{self.title}' has no passive path to ground"
            )
        passive_nodes: set[str] = set()
        for group in (self.resistors, self.capacitors, self.inductors,
                      self.junctions, self.tlines):
            for element in group:
                passive_nodes.add(element.node_pos)
                passive_nodes.add(element.node_neg)
        for group in (self.bias_sources, self.pulse_sources):
            for element in group:
                for node in (element.node_pos, element.node_neg):
                    if node not in GROUND_NAMES and node not in passive_nodes:
                        raise NetlistError(
                            f"source '{element.name}' drives node "
                            f"'{node}' that no passive element touches"
                        )
