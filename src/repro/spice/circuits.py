"""Prebuilt SFQ circuits matching paper Fig 11.

The cell library below implements, at the device level, the components
whose behavioural models live in :mod:`repro.sfq.cells`:

- JTL stage: bias + junction to ground + series inductor,
- PTL driver (Fig 11f): 2-stage JTL cascaded with a matching resistor,
- PTL receiver (Fig 11e): shunt-matched input + 3-stage JTL,
- splitter (Fig 11g): enlarged input junction feeding two output
  junctions through inductors,
- micro-strip PTL: lossless LC ladder discretised from the Eq. 1-4
  per-length parameters.

``build_splitter_unit`` assembles the exact Fig 13 validation testbench:
pulse source -> input JTL -> driver -> PTL -> (receiver + splitter + two
drivers) -> PTL -> receivers -> JTL loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.sfq.jj import JosephsonJunction
from repro.sfq.ptl import MicrostripPtl
from repro.spice.netlist import Netlist


@dataclass(frozen=True)
class SfqCellLibrary:
    """Device-level parameters for the SFQ standard cells.

    Tuned for the Hypres-class 1.0 um niobium process so that pulses
    propagate reliably and stage delays land near the Table 2 values.

    Attributes:
        jj: nominal junction (JTL-sized).
        jtl_inductance: series inductance between JTL stages (H).
        bias_fraction: DC bias as fraction of each junction's I_c.
        driver_output_scale: I_c scale of the driver's output junction.
        coupling_inductance: inductor coupling a driver/receiver junction
            to the (impedance-matched) PTL (H).
        splitter_input_scale: I_c scale of the splitter's input junction.
        splitter_output_scale: I_c scale of the two output junctions.
        splitter_inductance: splitter branch inductance (H).
        line: micro-strip PTL geometry (shared with the analytical model).
    """

    jj: JosephsonJunction = field(
        default_factory=lambda: JosephsonJunction(
            critical_current=100e-6, capacitance=70e-15, resistance=6.0
        )
    )
    jtl_inductance: float = 4.0e-12
    bias_fraction: float = 0.70
    driver_output_scale: float = 1.5
    coupling_inductance: float = 1.0e-12
    splitter_input_scale: float = 1.4
    splitter_output_scale: float = 0.9
    splitter_inductance: float = 3.0e-12
    line: MicrostripPtl = field(default_factory=MicrostripPtl)

    @property
    def bias_current(self) -> float:
        """DC bias current for a nominal junction (A)."""
        return self.bias_fraction * self.jj.critical_current


def build_jtl_stage(netlist: Netlist, prefix: str, node_in: str,
                    lib: SfqCellLibrary) -> tuple[str, str]:
    """Append one JTL stage after ``node_in``.

    Returns ``(output_node, junction_name)``.  The stage is: junction +
    bias at ``node_in``'s downstream node, series inductor onward.
    """
    node_jj = f"{prefix}_n"
    node_out = f"{prefix}_out"
    netlist.add_inductor(f"{prefix}_lin", node_in, node_jj,
                         lib.jtl_inductance / 2)
    jj_name = f"{prefix}_jj"
    netlist.add_junction(jj_name, node_jj, "gnd", lib.jj)
    netlist.add_bias(f"{prefix}_ib", node_jj, lib.bias_current)
    netlist.add_inductor(f"{prefix}_lout", node_jj, node_out,
                         lib.jtl_inductance / 2)
    return node_out, jj_name


def build_jtl_chain(netlist: Netlist, prefix: str, node_in: str,
                    stages: int, lib: SfqCellLibrary) -> tuple[str, list[str]]:
    """Append ``stages`` JTL stages; returns (output node, junction names)."""
    if stages < 1:
        raise NetlistError("a JTL chain needs at least one stage")
    node = node_in
    junctions = []
    for k in range(stages):
        node, jj = build_jtl_stage(netlist, f"{prefix}{k}", node, lib)
        junctions.append(jj)
    return node, junctions


def build_ptl(netlist: Netlist, prefix: str, node_in: str, node_out: str,
              length: float, lib: SfqCellLibrary,
              ladder: bool = False) -> int:
    """Append a lossless PTL between two nodes.

    By default the line is an ideal Branin transmission line with the
    micro-strip model's impedance (Eq. 3) and delay (Eq. 4) — the same
    element JoSIM uses for PTLs.  With ``ladder=True`` the line is
    discretised into LC sections instead (useful for checking that the
    distributed model converges to the ideal one).

    Returns the number of sections (1 for the ideal line).
    """
    if length <= 0:
        raise NetlistError("PTL length must be positive")
    if not ladder:
        netlist.add_tline(f"{prefix}_t", node_in, node_out,
                          lib.line.impedance, lib.line.delay(length))
        return 1
    sections = lib.line.sections(length)
    l_sec = lib.line.inductance_per_length * length / sections
    c_sec = lib.line.capacitance_per_length * length / sections
    prev = node_in
    for k in range(sections):
        node = node_out if k == sections - 1 else f"{prefix}_s{k}"
        netlist.add_inductor(f"{prefix}_l{k}", prev, node, l_sec)
        netlist.add_capacitor(f"{prefix}_c{k}", node, "gnd", c_sec)
        prev = node
    return sections


def build_driver(netlist: Netlist, prefix: str, node_in: str,
                 lib: SfqCellLibrary) -> tuple[str, list[str]]:
    """Append a PTL driver (Fig 11f): 2-stage JTL into the line.

    The second (output) stage junction is enlarged by
    ``driver_output_scale`` so it launches a stiff pulse; the line's
    ~5 ohm impedance is matched to the junction shunt resistance, so
    coupling is through a small inductor rather than a lossy series
    resistor (Schindler 2020 receiver-matching study).

    Returns ``(ptl_input_node, junction_names)``.
    """
    node, junctions = build_jtl_chain(netlist, f"{prefix}_jtl", node_in, 1, lib)
    big = lib.jj.scaled(lib.driver_output_scale)
    node_jj = f"{prefix}_on"
    netlist.add_inductor(f"{prefix}_ol", node, node_jj,
                         lib.jtl_inductance / 2)
    out_jj = f"{prefix}_ojj"
    netlist.add_junction(out_jj, node_jj, "gnd", big)
    netlist.add_bias(f"{prefix}_oib", node_jj,
                     lib.bias_fraction * big.critical_current)
    ptl_in = f"{prefix}_ptl"
    netlist.add_inductor(f"{prefix}_lm", node_jj, ptl_in,
                         lib.coupling_inductance)
    return ptl_in, junctions + [out_jj]


def build_receiver(netlist: Netlist, prefix: str, ptl_end: str,
                   lib: SfqCellLibrary) -> tuple[str, list[str]]:
    """Append a PTL receiver (Fig 11e): 3-stage JTL from the line.

    The first junction's shunt resistance terminates the (matched)
    low-impedance line; no separate termination resistor is needed.

    Returns ``(output_node, junction_names)``.
    """
    node_jj = f"{prefix}_in"
    netlist.add_inductor(f"{prefix}_lm", ptl_end, node_jj,
                         lib.coupling_inductance)
    in_jj = f"{prefix}_ijj"
    netlist.add_junction(in_jj, node_jj, "gnd", lib.jj)
    netlist.add_bias(f"{prefix}_iib", node_jj,
                     lib.bias_fraction * lib.jj.critical_current)
    node = f"{prefix}_i_out"
    netlist.add_inductor(f"{prefix}_il", node_jj, node,
                         lib.jtl_inductance / 2)
    out, junctions = build_jtl_chain(netlist, f"{prefix}_jtl", node, 2, lib)
    return out, [in_jj] + junctions


def build_splitter(netlist: Netlist, prefix: str, node_in: str,
                   lib: SfqCellLibrary) -> tuple[str, str, list[str]]:
    """Append a splitter (Fig 11g): returns (out1, out2, junction names).

    The enlarged input junction stores the incoming SFQ; its 2-pi phase
    slip drives both branch inductors, switching each (smaller) output
    junction once, so one input pulse becomes two output pulses.
    """
    jj_in = lib.jj.scaled(lib.splitter_input_scale)
    jj_out = lib.jj.scaled(lib.splitter_output_scale)
    node_a = f"{prefix}_a"
    netlist.add_inductor(f"{prefix}_lin", node_in, node_a,
                         lib.splitter_inductance)
    netlist.add_junction(f"{prefix}_jin", node_a, "gnd", jj_in)
    netlist.add_bias(f"{prefix}_ibin", node_a,
                     lib.bias_fraction * jj_in.critical_current)
    outputs = []
    for branch in ("b", "c"):
        node_b = f"{prefix}_{branch}"
        netlist.add_inductor(f"{prefix}_l{branch}", node_a, node_b,
                             lib.splitter_inductance)
        netlist.add_junction(f"{prefix}_j{branch}", node_b, "gnd", jj_out)
        netlist.add_bias(f"{prefix}_ib{branch}", node_b,
                         lib.bias_fraction * jj_out.critical_current)
        outputs.append(node_b)
    junctions = [f"{prefix}_jin", f"{prefix}_jb", f"{prefix}_jc"]
    return outputs[0], outputs[1], junctions


def _add_source_chain(netlist: Netlist, lib: SfqCellLibrary,
                      pulse_times: tuple[float, ...]) -> tuple[str, list[str]]:
    """Pulse source feeding a 2-stage input JTL; returns (node, jjs).

    The drive peaks at 2x the junction critical current over a 2 ps sigma,
    which reliably slips the source junction exactly once per pulse; the
    input JTL then reshapes the event into a clean SFQ pulse before it
    reaches the device under test.
    """
    sigma = 2.0e-12
    area = 2.0 * lib.jj.critical_current * sigma * math.sqrt(2 * math.pi)
    netlist.add_pulse("src", "in0", pulse_times, sigma=sigma, area=area)
    netlist.add_junction("src_esd", "in0", "gnd", lib.jj)
    netlist.add_bias("src_ib", "in0", lib.bias_current)
    return build_jtl_chain(netlist, "in", "in0", 2, lib)


def build_ptl_link(length: float, pulse_times: tuple[float, ...] = (20e-12,),
                   lib: SfqCellLibrary | None = None) -> tuple[Netlist, dict]:
    """Testbench: source -> JTL -> driver -> PTL -> receiver -> JTL load.

    Returns ``(netlist, probes)`` where probes maps measurement points to
    junction names: ``launch`` (driver input junction), ``arrive``
    (receiver output junction).
    """
    lib = lib or SfqCellLibrary()
    netlist = Netlist(title=f"ptl_link_{length:.4g}m")
    node, _ = _add_source_chain(netlist, lib, pulse_times)
    ptl_in, drv_jjs = build_driver(netlist, "drv", node, lib)
    build_ptl(netlist, "ptl", ptl_in, "ptl_end", length, lib)
    node_rx, rx_jjs = build_receiver(netlist, "rx", "ptl_end", lib)
    _, load_jjs = build_jtl_chain(netlist, "load", node_rx, 1, lib)
    probes = {"launch": drv_jjs[0], "arrive": rx_jjs[-1], "load": load_jjs[-1]}
    return netlist, probes


def build_splitter_unit(length: float,
                        pulse_times: tuple[float, ...] = (20e-12,),
                        lib: SfqCellLibrary | None = None
                        ) -> tuple[Netlist, dict]:
    """The Fig 13 validation testbench around one splitter unit.

    Top driver -> PTL(length) -> receiver -> splitter -> two drivers ->
    PTL(length) each -> two receivers.  Probes: ``launch`` = top driver
    input junction, ``arrive`` = bottom-right receiver output junction
    (the measurement the paper quotes), plus ``arrive_left`` for the
    symmetry check.
    """
    lib = lib or SfqCellLibrary()
    netlist = Netlist(title=f"splitter_unit_{length:.4g}m")
    node, _ = _add_source_chain(netlist, lib, pulse_times)
    ptl_in, drv_jjs = build_driver(netlist, "top", node, lib)
    build_ptl(netlist, "ptl_top", ptl_in, "unit_in", length, lib)
    node_rx, _ = build_receiver(netlist, "urx", "unit_in", lib)
    out1, out2, _ = build_splitter(netlist, "spl", node_rx, lib)
    arrive = {}
    for tag, out in (("left", out1), ("right", out2)):
        ptl_b, _ = build_driver(netlist, f"d{tag}", out, lib)
        build_ptl(netlist, f"ptl_{tag}", ptl_b, f"end_{tag}", length, lib)
        node_b, rx_jjs = build_receiver(netlist, f"rx{tag}", f"end_{tag}", lib)
        build_jtl_chain(netlist, f"ld{tag}", node_b, 1, lib)
        arrive[tag] = rx_jjs[-1]
    probes = {
        "launch": drv_jjs[0],
        "arrive": arrive["right"],
        "arrive_left": arrive["left"],
    }
    return netlist, probes
