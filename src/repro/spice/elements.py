"""Circuit elements for the transient simulator.

Elements are plain dataclasses; the engine compiles them into vectorised
index/value arrays.  Nodes are referred to by string names; ``"gnd"``
(or ``"0"``) is the ground reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import NetlistError
from repro.sfq.jj import JosephsonJunction


@dataclass(frozen=True)
class Resistor:
    """A linear resistor between ``node_pos`` and ``node_neg``."""

    name: str
    node_pos: str
    node_neg: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise NetlistError(f"{self.name}: resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    """A linear capacitor between ``node_pos`` and ``node_neg``."""

    name: str
    node_pos: str
    node_neg: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise NetlistError(f"{self.name}: capacitance must be positive")


@dataclass(frozen=True)
class Inductor:
    """A linear inductor; its branch current is a state variable."""

    name: str
    node_pos: str
    node_neg: str
    inductance: float

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise NetlistError(f"{self.name}: inductance must be positive")


@dataclass(frozen=True)
class JJElement:
    """An RCSJ Josephson junction; its phase is a state variable.

    The junction contributes I_c sin(phi) supercurrent, V/R shunt current
    and C dV/dt displacement current between its nodes.
    """

    name: str
    node_pos: str
    node_neg: str
    junction: JosephsonJunction


@dataclass(frozen=True)
class BiasSource:
    """A DC current source injecting ``current`` into ``node_pos``.

    Models the ERSFQ-style current bias feeding each SFQ cell.  Positive
    current flows from ``node_neg`` (usually ground) into ``node_pos``.
    """

    name: str
    node_pos: str
    node_neg: str
    current: float


@dataclass(frozen=True)
class TransmissionLine:
    """An ideal lossless transmission line (Branin / method of
    characteristics), the same element JoSIM uses for PTLs.

    Each port presents impedance ``z0`` in series with a source equal to
    the wave launched from the far port ``delay`` seconds earlier.  The
    line is dispersion-free and exactly matched when terminated in z0.
    """

    name: str
    node_pos: str
    node_neg: str  # port 2 positive node; both ports reference ground
    z0: float
    delay: float

    def __post_init__(self) -> None:
        if self.z0 <= 0:
            raise NetlistError(f"{self.name}: z0 must be positive")
        if self.delay <= 0:
            raise NetlistError(f"{self.name}: delay must be positive")


@dataclass(frozen=True)
class PulseSource:
    """A time-dependent current source delivering Gaussian pulses.

    Each pulse carries charge ``area`` (A*s); with ``area`` around
    I_c * pulse-width it reliably triggers the input junction of an SFQ
    cell.  Pulses are centred at ``times`` with RMS width ``sigma``.
    """

    name: str
    node_pos: str
    node_neg: str
    times: tuple[float, ...]
    sigma: float = 1.0e-12
    area: float = 2.0e-16  # ~ Phi_0 / (2 ohm) : one SFQ worth into 2 ohm

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise NetlistError(f"{self.name}: pulse sigma must be positive")
        if not self.times:
            raise NetlistError(f"{self.name}: needs at least one pulse time")

    def current(self, t: float) -> float:
        """Instantaneous source current at time ``t`` (A)."""
        peak = self.area / (self.sigma * math.sqrt(2 * math.pi))
        total = 0.0
        for t0 in self.times:
            arg = (t - t0) / self.sigma
            if abs(arg) < 8.0:
                total += peak * math.exp(-0.5 * arg * arg)
        return total

    def waveform(self) -> Callable[[float], float]:
        """Return the waveform as a plain callable."""
        return self.current
