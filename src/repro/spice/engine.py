"""Time-domain nodal integrator for superconductor circuits.

State variables are node voltages V, inductor branch currents I_L and
junction phases phi.  The scheme is mixed implicit/explicit, the same
split real SPICE engines use:

- all **linear conductances** (resistors, junction shunts, transmission-
  line port impedances) are folded into a constant system matrix
  ``M = C/dt + G`` and treated by backward Euler — unconditionally
  stable, so tiny parasitic node capacitances cannot destabilise the
  run;
- **nonlinear and storage elements** (junction supercurrents, inductor
  currents, sources, delayed transmission-line waves) are injected
  explicitly, then I_L and phi advance from the *new* voltages
  (semi-implicit, which preserves LC oscillation energy).

``M`` is factorised once; each step costs two dense mat-vecs.  The step
size is chosen from the junction plasma period and the stiffest LC pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.spice.netlist import DEFAULT_NODE_CAPACITANCE, GROUND_NAMES, Netlist
from repro.units import PHI0


@dataclass
class TransientResult:
    """Waveforms produced by a transient run.

    Attributes:
        times: sample times (s), shape (T,).
        node_names: node order of the voltage array.
        voltages: node voltages (V), shape (T, N).
        junction_names: order of the phase array.
        phases: junction phases (rad), shape (T, J).
        dissipated_energy: cumulative resistive dissipation (J), shape (T,).
        bias_energy: cumulative energy delivered by DC bias sources (J),
            shape (T,).
    """

    times: np.ndarray
    node_names: list[str]
    voltages: np.ndarray
    junction_names: list[str]
    phases: np.ndarray
    dissipated_energy: np.ndarray
    bias_energy: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of one node's voltage."""
        if node in GROUND_NAMES:
            return np.zeros_like(self.times)
        try:
            idx = self.node_names.index(node)
        except ValueError as exc:
            raise SimulationError(f"unknown node '{node}'") from exc
        return self.voltages[:, idx]

    def phase(self, junction: str) -> np.ndarray:
        """Waveform of one junction's phase."""
        try:
            idx = self.junction_names.index(junction)
        except ValueError as exc:
            raise SimulationError(f"unknown junction '{junction}'") from exc
        return self.phases[:, idx]

    @property
    def total_dissipated(self) -> float:
        """Total resistive dissipation over the run (J)."""
        return float(self.dissipated_energy[-1])


class TransientSimulator:
    """Compiles a :class:`Netlist` and integrates it in time."""

    def __init__(self, netlist: Netlist, dt: float | None = None,
                 sample_every: int = 10) -> None:
        netlist.validate()
        self.netlist = netlist
        self.sample_every = max(1, int(sample_every))
        self._compile()
        self.dt = dt if dt is not None else self._auto_dt()
        if self.dt <= 0:
            raise SimulationError("time step must be positive")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _node_index(self, name: str) -> int:
        return -1 if name in GROUND_NAMES else self._node_map[name]

    def _compile(self) -> None:
        nl = self.netlist
        self.node_names = nl.nodes()
        self._node_map = {n: i for i, n in enumerate(self.node_names)}
        n = len(self.node_names)
        if n == 0:
            raise SimulationError("netlist has no non-ground nodes")

        # Capacitance matrix: parasitic diagonal + explicit caps + JJ caps.
        cmat = np.zeros((n, n))
        for i in range(n):
            cmat[i, i] = DEFAULT_NODE_CAPACITANCE
        for cap in list(nl.capacitors):
            self._stamp_capacitor(cmat, cap.node_pos, cap.node_neg,
                                  cap.capacitance)
        for jj in nl.junctions:
            self._stamp_capacitor(cmat, jj.node_pos, jj.node_neg,
                                  jj.junction.capacitance)
        self._cmat = cmat

        # Conductance matrix: resistors + junction shunts + t-line ports.
        gmat = np.zeros((n, n))
        for r in nl.resistors:
            self._stamp_conductance(gmat, r.node_pos, r.node_neg,
                                    1.0 / r.resistance)
        for jj in nl.junctions:
            self._stamp_conductance(gmat, jj.node_pos, jj.node_neg,
                                    1.0 / jj.junction.resistance)
        for t in nl.tlines:
            for port in (t.node_pos, t.node_neg):
                i = self._node_index(port)
                if i >= 0:
                    gmat[i, i] += 1.0 / t.z0
        self._gmat = gmat

        # Resistors: conductance stamps as index arrays.
        self._res_pos = np.array(
            [self._node_index(r.node_pos) for r in nl.resistors], dtype=int
        )
        self._res_neg = np.array(
            [self._node_index(r.node_neg) for r in nl.resistors], dtype=int
        )
        self._res_g = np.array([1.0 / r.resistance for r in nl.resistors])

        # Inductors.
        self._ind_pos = np.array(
            [self._node_index(l.node_pos) for l in nl.inductors], dtype=int
        )
        self._ind_neg = np.array(
            [self._node_index(l.node_neg) for l in nl.inductors], dtype=int
        )
        self._ind_linv = np.array([1.0 / l.inductance for l in nl.inductors])

        # Junctions.
        self.junction_names = [j.name for j in nl.junctions]
        self._jj_pos = np.array(
            [self._node_index(j.node_pos) for j in nl.junctions], dtype=int
        )
        self._jj_neg = np.array(
            [self._node_index(j.node_neg) for j in nl.junctions], dtype=int
        )
        self._jj_ic = np.array([j.junction.critical_current for j in nl.junctions])
        self._jj_g = np.array([1.0 / j.junction.resistance for j in nl.junctions])

        # DC bias: constant injection vector.
        self._bias_vec = np.zeros(n)
        self._bias_power_nodes: list[tuple[int, float]] = []
        for b in nl.bias_sources:
            pos = self._node_index(b.node_pos)
            neg = self._node_index(b.node_neg)
            if pos >= 0:
                self._bias_vec[pos] += b.current
                self._bias_power_nodes.append((pos, b.current))
            if neg >= 0:
                self._bias_vec[neg] -= b.current
                self._bias_power_nodes.append((neg, -b.current))

        # Pulse sources kept as callables.
        self._pulses = [
            (self._node_index(p.node_pos), self._node_index(p.node_neg), p)
            for p in nl.pulse_sources
        ]

        # Transmission lines (Branin): per-line (port indices, z0, delay).
        self._tlines = [
            (self._node_index(t.node_pos), self._node_index(t.node_neg),
             t.z0, t.delay)
            for t in nl.tlines
        ]

    def _stamp_capacitor(self, cmat: np.ndarray, pos: str, neg: str,
                         value: float) -> None:
        i = self._node_index(pos)
        j = self._node_index(neg)
        if i >= 0:
            cmat[i, i] += value
        if j >= 0:
            cmat[j, j] += value
        if i >= 0 and j >= 0:
            cmat[i, j] -= value
            cmat[j, i] -= value

    def _stamp_conductance(self, gmat: np.ndarray, pos: str, neg: str,
                           value: float) -> None:
        i = self._node_index(pos)
        j = self._node_index(neg)
        if i >= 0:
            gmat[i, i] += value
        if j >= 0:
            gmat[j, j] += value
        if i >= 0 and j >= 0:
            gmat[i, j] -= value
            gmat[j, i] -= value

    def _auto_dt(self) -> float:
        """Pick a stable step from the stiffest LC pairing.

        The explicit scheme is stable for dt < 2/omega_max.  The worst
        mode couples the smallest inductance against the smallest node
        capacitance on either side (omega^2 <= (1/L_min)(2/C_min)); the
        junction plasma frequency is also considered.  A 4x margin under
        the hard limit keeps the nonlinear junction terms accurate.
        """
        omegas = []
        if len(self._jj_ic):
            for jj in self.netlist.junctions:
                lj = PHI0 / (2 * math.pi * jj.junction.critical_current)
                omegas.append(1.0 / math.sqrt(lj * jj.junction.capacitance))
        if len(self._ind_linv):
            lmin = 1.0 / self._ind_linv.max()
            cmin = float(np.diag(self._cmat).min())
            omegas.append(math.sqrt((1.0 / lmin) * (2.0 / cmin)))
        if not omegas:
            return 1e-13
        return 2.0 / max(omegas) / 4.0

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def run(self, stop_time: float, start_time: float = 0.0) -> TransientResult:
        """Integrate from ``start_time`` to ``stop_time``.

        Returns sampled waveforms (every ``sample_every`` raw steps).

        Raises:
            SimulationError: if the state diverges (non-finite values).
        """
        if stop_time <= start_time:
            raise SimulationError("stop_time must exceed start_time")
        n_nodes = len(self.node_names)
        steps = int(math.ceil((stop_time - start_time) / self.dt))
        n_samples = steps // self.sample_every + 1

        volts = np.zeros(n_nodes)
        currents = np.zeros(len(self._ind_linv))
        phases = np.zeros(len(self._jj_ic))

        # Branin wave history ring buffers: per line, waves travelling
        # towards port 1 and towards port 2.
        tline_state = []
        for pos, neg, z0, delay in self._tlines:
            depth = max(1, int(round(delay / self.dt)))
            tline_state.append({
                "pos": pos, "neg": neg, "z0": z0, "depth": depth,
                "to1": np.zeros(depth), "to2": np.zeros(depth), "head": 0,
                "a1": 0.0, "a2": 0.0,
            })

        t_out = np.empty(n_samples)
        v_out = np.empty((n_samples, n_nodes))
        p_out = np.empty((n_samples, len(self._jj_ic)))
        e_out = np.empty(n_samples)
        eb_out = np.empty(n_samples)

        dissipated = 0.0
        bias_energy = 0.0
        dt = self.dt
        phi_factor = 2 * math.pi / PHI0
        sample = 0
        time = start_time

        # Backward-Euler system matrix for the linear part.
        m_inv = np.linalg.inv(self._cmat / dt + self._gmat)
        c_over_dt = self._cmat / dt

        def branch_voltage(pos_idx, neg_idx):
            vp = np.where(pos_idx >= 0, volts[pos_idx], 0.0)
            vn = np.where(neg_idx >= 0, volts[neg_idx], 0.0)
            return vp - vn

        for step in range(steps + 1):
            if step % self.sample_every == 0 and sample < n_samples:
                t_out[sample] = time
                v_out[sample] = volts
                p_out[sample] = phases
                e_out[sample] = dissipated
                eb_out[sample] = bias_energy
                sample += 1
            if step == steps:
                break

            inj = self._bias_vec.copy()

            # Junction supercurrents (explicit; shunts live in G).
            if len(self._jj_ic):
                i_j = self._jj_ic * np.sin(phases)
                np.add.at(inj, self._jj_pos[self._jj_pos >= 0],
                          -i_j[self._jj_pos >= 0])
                np.add.at(inj, self._jj_neg[self._jj_neg >= 0],
                          i_j[self._jj_neg >= 0])

            # Inductor currents (explicit).
            if len(self._ind_linv):
                np.add.at(inj, self._ind_pos[self._ind_pos >= 0],
                          -currents[self._ind_pos >= 0])
                np.add.at(inj, self._ind_neg[self._ind_neg >= 0],
                          currents[self._ind_neg >= 0])

            # Pulse sources.
            for pos, neg, pulse in self._pulses:
                amp = pulse.current(time)
                if pos >= 0:
                    inj[pos] += amp
                if neg >= 0:
                    inj[neg] -= amp

            # Transmission lines (Branin): the delayed far-end wave is a
            # Norton source a/z0; the port conductance 1/z0 is in G.
            for st in tline_state:
                head = st["head"]
                st["a1"] = st["to1"][head]
                st["a2"] = st["to2"][head]
                if st["pos"] >= 0:
                    inj[st["pos"]] += st["a1"] / st["z0"]
                if st["neg"] >= 0:
                    inj[st["neg"]] += st["a2"] / st["z0"]

            # Bias energy delivered (P = V * I at injection node).
            for idx, amp in self._bias_power_nodes:
                bias_energy += volts[idx] * amp * dt

            volts = m_inv @ (c_over_dt @ volts + inj)
            if not np.all(np.isfinite(volts)) or volts.max(initial=0) > 1.0:
                raise SimulationError(
                    f"simulation diverged at t={time:.3e}s "
                    f"(step {step}); reduce dt"
                )

            # Update transmission-line outgoing waves from new voltages.
            for st in tline_state:
                head = st["head"]
                v1 = volts[st["pos"]] if st["pos"] >= 0 else 0.0
                v2 = volts[st["neg"]] if st["neg"] >= 0 else 0.0
                st["to2"][head] = 2.0 * v1 - st["a1"]
                st["to1"][head] = 2.0 * v2 - st["a2"]
                st["head"] = (head + 1) % st["depth"]

            # Dissipation in linear conductances (at new voltages).
            if len(self._res_g):
                v_r = branch_voltage(self._res_pos, self._res_neg)
                dissipated += float(np.sum(v_r * v_r * self._res_g)) * dt
            if len(self._jj_ic):
                v_j = branch_voltage(self._jj_pos, self._jj_neg)
                dissipated += float(np.sum(v_j * v_j * self._jj_g)) * dt
                phases = phases + dt * phi_factor * v_j
            if len(self._ind_linv):
                v_l = branch_voltage(self._ind_pos, self._ind_neg)
                currents = currents + dt * v_l * self._ind_linv

            time += dt

        return TransientResult(
            times=t_out[:sample],
            node_names=list(self.node_names),
            voltages=v_out[:sample],
            junction_names=list(self.junction_names),
            phases=p_out[:sample],
            dissipated_energy=e_out[:sample],
            bias_energy=eb_out[:sample],
        )
