"""Transient superconductor circuit simulator (JoSIM substitute).

The paper validates its analytical SFQ H-tree model against JoSIM, a
superconductor SPICE (Sec 4.2.3, Fig 13).  JoSIM is an external C++
tool, so this package provides an independent numerical solution of the
same circuits: a time-domain nodal simulator supporting

- RCSJ Josephson junctions (phase state, sin(phi) supercurrent, shunt
  resistance and junction capacitance),
- inductors, capacitors, resistors, DC bias rails and pulse current
  sources, and
- lossless LC-ladder transmission lines (the discretised micro-strip PTL
  of paper Eq. 1-4).

:mod:`repro.spice.circuits` builds the exact structures of paper Fig 11:
JTL chains, PTL drivers (2-stage JTL + matching resistor), receivers
(3-stage JTL), splitters (3 JJs / 3 inductors) and the splitter-unit
testbench used for the Fig 13 validation.  :mod:`repro.spice.measure`
detects SFQ pulses as 2-pi phase slips and integrates dissipated energy.
"""

from repro.spice.elements import (
    BiasSource,
    Capacitor,
    Inductor,
    JJElement,
    PulseSource,
    Resistor,
)
from repro.spice.netlist import Netlist
from repro.spice.engine import TransientResult, TransientSimulator
from repro.spice.circuits import (
    SfqCellLibrary,
    build_jtl_chain,
    build_ptl_link,
    build_splitter_unit,
)
from repro.spice.measure import (
    detect_pulses,
    pulse_delay,
    total_dissipated_energy,
)

__all__ = [
    "BiasSource",
    "Capacitor",
    "Inductor",
    "JJElement",
    "PulseSource",
    "Resistor",
    "Netlist",
    "TransientResult",
    "TransientSimulator",
    "SfqCellLibrary",
    "build_jtl_chain",
    "build_ptl_link",
    "build_splitter_unit",
    "detect_pulses",
    "pulse_delay",
    "total_dissipated_energy",
]
