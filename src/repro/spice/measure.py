"""Pulse detection and energy measurement on transient waveforms.

An SFQ pulse through a junction is a 2-pi phase slip; we timestamp each
slip at its midpoint crossing (phase passing odd multiples of pi), which
is where the voltage pulse peaks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError
from repro.spice.engine import TransientResult


def detect_pulses(result: TransientResult, junction: str) -> list[float]:
    """Return the times of each SFQ pulse through ``junction`` (s).

    A pulse is counted whenever the junction phase crosses
    ``(2k + 1) * pi`` upward; crossing times are linearly interpolated
    between samples.

    Raises:
        SimulationError: if the junction ran away (>10^4 slips), which
            indicates a latched voltage state rather than SFQ operation.
    """
    phase = result.phase(junction)
    times = result.times
    if len(phase) == 0:
        return []
    total_slips = math.floor((float(np.max(phase)) + math.pi) / (2 * math.pi))
    if total_slips > 10_000:
        raise SimulationError(
            f"junction '{junction}' slipped {total_slips} times — "
            "latched voltage state, not SFQ operation"
        )
    pulses: list[float] = []
    level = math.pi
    for k in range(1, len(phase)):
        while phase[k] >= level:
            if phase[k] == phase[k - 1]:
                t_cross = times[k]
            else:
                frac = (level - phase[k - 1]) / (phase[k] - phase[k - 1])
                frac = min(max(frac, 0.0), 1.0)
                t_cross = times[k - 1] + frac * (times[k] - times[k - 1])
            pulses.append(float(t_cross))
            level += 2 * math.pi
    return pulses


def pulse_delay(result: TransientResult, source: str, sink: str,
                index: int = 0) -> float:
    """Delay of pulse ``index`` between two junctions (s).

    Raises:
        SimulationError: if either junction saw fewer than ``index + 1``
            pulses (the pulse was lost — a real failure mode of SFQ
            circuits that tests assert against).
    """
    src = detect_pulses(result, source)
    dst = detect_pulses(result, sink)
    if len(src) <= index:
        raise SimulationError(
            f"junction '{source}' produced {len(src)} pulses, "
            f"need index {index}"
        )
    if len(dst) <= index:
        raise SimulationError(
            f"junction '{sink}' produced {len(dst)} pulses, "
            f"need index {index} — pulse lost in transit"
        )
    return dst[index] - src[index]


def total_dissipated_energy(result: TransientResult,
                            start: float = 0.0,
                            stop: float | None = None) -> float:
    """Resistive energy dissipated in a time window (J)."""
    times = result.times
    energy = result.dissipated_energy
    if stop is None:
        stop = float(times[-1])
    if stop <= start:
        raise SimulationError("measurement window is empty")
    e_start = float(np.interp(start, times, energy))
    e_stop = float(np.interp(stop, times, energy))
    return e_stop - e_start


def energy_per_pulse(result: TransientResult, pulse_count: int,
                     settle: float = 0.0) -> float:
    """Average dissipated energy per transported pulse (J)."""
    if pulse_count < 1:
        raise SimulationError("pulse_count must be at least 1")
    return total_dissipated_energy(result, start=settle) / pulse_count
