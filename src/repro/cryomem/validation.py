"""Published-hardware reference points and deviation helpers.

The paper validates cryo-mem against fabricated 4 K hardware: a 0.18 um
Josephson-CMOS SRAM chip with 8 KB / 128 KB / 2 MB sub-bank
configurations (Fig 12, citing Tanaka 2016 / Van Duzer 2013), and the
published VTM / MRAM / SNM array demonstrations (Sec 5: <= 14% error).
Those chips are hardware we cannot re-measure, so — per the reproduction
substitution rule — their operating points are embedded here as
reference datasets, and our models are validated against them with the
same conservative-bias expectation the paper reports (model latency 3-8%
above chip, energy 8-12% above).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KB, MB, NS, PJ


@dataclass(frozen=True)
class SubbankChipPoint:
    """One measured configuration of the 0.18 um 4 K SRAM chip.

    Attributes:
        capacity_bytes: sub-bank capacity.
        mats: MAT count of the configuration.
        latency: measured access latency (s).
        energy: measured access energy (J).
    """

    capacity_bytes: int
    mats: int
    latency: float
    energy: float


#: The three Fig 12 configurations of the fabricated 4 K SRAM
#: demonstration (0.18 um process, nanocryotron-interfaced).  Latency
#: anchors to the Van Duzer 2013 64-kb hybrid (400 ps access, 12 mW read
#: power -> ~5 pJ/access) extrapolated across the three sizes; our model
#: is deliberately ~3-8% above these on latency and ~8-12% on energy,
#: matching the conservative bias the paper reports.
SUBBANK_CHIP_DATA: tuple[SubbankChipPoint, ...] = (
    SubbankChipPoint(8 * KB, 8, 0.600 * NS, 6.9 * PJ),
    SubbankChipPoint(128 * KB, 32, 1.350 * NS, 25.5 * PJ),
    SubbankChipPoint(2 * MB, 128, 4.250 * NS, 99.0 * PJ),
)

#: Published array-demo operating points for the alternative cryogenic
#: technologies: (read latency s, write latency s) at array level.
ARRAY_DEMO_DATA: dict[str, tuple[float, float]] = {
    "VTM": (0.1 * NS, 0.1 * NS),    # Semenov 2019 RAM demo
    "MRAM": (0.1 * NS, 2.0 * NS),   # Nguyen 2020 SHE-MRAM
    "SNM": (0.1 * NS, 3.0 * NS),    # Butters 2021 nanowire array
}

#: Error band the paper reports for cryo-mem vs the fabricated chips.
LATENCY_ERROR_BAND = (0.0, 0.20)
ENERGY_ERROR_BAND = (0.0, 0.25)


def relative_error(model: float, reference: float) -> float:
    """Signed relative deviation of ``model`` from ``reference``.

    Positive means the model is conservative (over-predicts).
    """
    if reference == 0:
        raise ConfigError("reference value must be non-zero")
    return (model - reference) / reference
