"""Cryogenic MOSFET parameter model (cryo-pgen substitute).

CryoRAM's cryo-pgen derives MOSFET characteristics at 77 K; the paper
extends it to 4 K by adjusting three fabrication- and temperature-
dependent variables — carrier mobility, carrier saturation velocity and
threshold voltage — against published cryogenic MOSFET measurements
(Beckers 2020, Grill 2020).  This module implements those dependences as
smooth phenomenological fits:

- **Mobility** rises as phonon scattering freezes out, saturating at low
  temperature where ionised-impurity scattering dominates:
  ``mu(T) = mu300 * (1 + a_mu * (1 - (T/300)^p)) `` clipped to the
  impurity-limited plateau.
- **Saturation velocity** rises modestly (~30% at 4 K).
- **Threshold voltage** increases roughly linearly in (300 - T) and
  saturates below ~50 K where dopant freeze-out flattens the curve
  (the "physical model of low-temperature V_th" of Beckers 2020).
- **Subthreshold swing** scales with T down to ~40 K then saturates on
  band-tail states, which is why leakage drops by >90% but not to zero
  (paper Sec 3, citing CryoCache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CryoMosfet:
    """Temperature-scaled MOSFET parameters for one CMOS node.

    Attributes:
        node: feature size (m), e.g. 28e-9.
        temperature: operating temperature (K).
        supply_voltage: nominal V_dd at 300 K (V).
        vth_300k: threshold voltage at 300 K (V).
        mobility_boost: impurity-limited mobility plateau relative to
            300 K (x); ~3.5 for foundry bulk CMOS at 4 K.
        vth_shift_per_k: linear V_th increase per kelvin of cooling (V/K).
        swing_floor_k: temperature below which subthreshold swing stops
            improving (band-tail saturation).
    """

    node: float = 28e-9
    temperature: float = 4.0
    supply_voltage: float = 0.9
    vth_300k: float = 0.35
    mobility_boost: float = 3.5
    vth_shift_per_k: float = 4.5e-4
    swing_floor_k: float = 40.0

    def __post_init__(self) -> None:
        if self.node <= 0:
            raise ConfigError("node size must be positive")
        if not 0 < self.temperature <= 400:
            raise ConfigError("temperature must be in (0, 400] K")

    @property
    def mobility_factor(self) -> float:
        """Carrier mobility relative to 300 K (unitless, >= 1 below 300K).

        Phonon-limited mobility grows as ~T^-1.5 until the impurity
        plateau; the soft-min below keeps the curve smooth.
        """
        t = max(self.temperature, 1.0)
        phonon = (300.0 / t) ** 1.5
        plateau = self.mobility_boost
        return 1.0 / (1.0 / phonon + 1.0 / plateau) * (
            1.0 + 1.0 / plateau
        ) if t < 300.0 else 1.0

    @property
    def vsat_factor(self) -> float:
        """Saturation velocity relative to 300 K (~1.3 at 4 K)."""
        t = max(self.temperature, 1.0)
        if t >= 300.0:
            return 1.0
        return 1.0 + 0.3 * (1.0 - t / 300.0)

    @property
    def vth(self) -> float:
        """Threshold voltage at the operating temperature (V).

        Linear rise with cooling, saturating below ~50 K (freeze-out).
        """
        effective_t = max(self.temperature, 50.0)
        return self.vth_300k + self.vth_shift_per_k * (300.0 - effective_t)

    @property
    def overdrive_factor(self) -> float:
        """Gate overdrive (V_dd - V_th) relative to 300 K."""
        overdrive_300 = self.supply_voltage - self.vth_300k
        overdrive = self.supply_voltage - self.vth
        if overdrive <= 0.05:
            raise ConfigError(
                f"V_th {self.vth:.3f} V leaves no overdrive at "
                f"V_dd {self.supply_voltage} V"
            )
        return overdrive / overdrive_300

    @property
    def on_current_factor(self) -> float:
        """Drive current relative to 300 K.

        Short-channel drive is velocity-saturated: I_on ~ v_sat * C_ox *
        (V_dd - V_th), with a partial mobility contribution at the 28 nm
        node.  Net effect at 4 K: ~1.4-2x faster transistors — consistent
        with the "faster speed at 4 K" observations the paper cites.
        """
        mobility_exponent = 0.3  # residual long-channel contribution
        return (
            self.vsat_factor
            * self.overdrive_factor
            * self.mobility_factor**mobility_exponent
        )

    @property
    def gate_delay_factor(self) -> float:
        """Gate delay relative to 300 K (CV/I; C is ~athermal)."""
        return 1.0 / self.on_current_factor

    @property
    def subthreshold_swing_mv_dec(self) -> float:
        """Subthreshold swing (mV/decade) with band-tail saturation."""
        effective_t = max(self.temperature, self.swing_floor_k)
        ideality = 1.2
        return 1000.0 * ideality * math.log(10.0) * 8.617e-5 * effective_t

    @property
    def leakage_factor(self) -> float:
        """Subthreshold leakage relative to 300 K.

        The V_th rise acts through the (saturated) swing; at 4 K this
        yields a >90% leakage reduction, matching the paper's Sec 3
        citation of CryoCache rather than the astronomically small value
        an ideal kT/q model would predict.
        """
        swing_300 = 1000.0 * 1.2 * math.log(10.0) * 8.617e-5 * 300.0
        vth_rise_mv = (self.vth - self.vth_300k) * 1000.0
        decades = vth_rise_mv / self.subthreshold_swing_mv_dec
        swing_gain = swing_300 / self.subthreshold_swing_mv_dec
        base = 10.0 ** (-decades)
        # gate and junction leakage set a floor around 2% of RT leakage
        floor = 0.02
        return max(base / swing_gain, floor)

    @property
    def wire_resistance_factor(self) -> float:
        """Copper wire resistance relative to 300 K (~0.2 at 4 K).

        Thin damascene copper retains substantial defect resistivity, so
        the residual-resistance ratio is ~5, far from bulk copper's ~100.
        """
        t = max(self.temperature, 1.0)
        if t >= 300.0:
            return 1.0
        phonon_part = 0.8 * (t / 300.0)
        defect_part = 0.2
        return phonon_part + defect_part
