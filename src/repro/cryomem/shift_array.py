"""SHIFT (shift-register) scratchpad array model.

A SHIFT array is a set of independent lanes, each a circular chain of
SFQ DFFs (paper Fig 3a): data advances one word position per access, so
sequential reads cost one 0.02 ns step while a "random" access must
rotate the lane all the way to the target position.  Every shift step
pulses every DFF in the lane, so the access energy is proportional to
the lane capacity — the effect paper Fig 16 quantifies (a 384 KB
SuperNPU bank burns ~3000x the energy of SMART's 128 B lanes per
access).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfq.constants import (
    ERSFQ_1UM,
    SHIFT_CELL_ACCESS,
    SHIFT_CELL_AREA_F2,
    SHIFT_CELL_ENERGY,
    SfqProcess,
)


#: Fraction of DFFs storing a logical 1 on average; ERSFQ DFFs dissipate
#: only when a pulse (a stored 1) moves.
SHIFT_ACTIVITY = 0.5


@dataclass(frozen=True)
class ShiftArray:
    """A banked SHIFT scratchpad.

    Attributes:
        capacity_bytes: total capacity (bytes).
        banks: independent lanes (each serves one PE row/column stream).
        word_bits: width of one word position in the lane.
        process: SFQ process (cell area scaling).
    """

    capacity_bytes: int
    banks: int
    word_bits: int = 128
    process: SfqProcess = ERSFQ_1UM

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if self.banks < 1:
            raise ConfigError("at least one bank required")
        if self.word_bits < 1:
            raise ConfigError("word width must be at least one bit")
        if self.capacity_bytes * 8 < self.banks * self.word_bits:
            raise ConfigError("capacity smaller than one word per bank")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def lane_bytes(self) -> int:
        """Capacity of one lane (bytes)."""
        return self.capacity_bytes // self.banks

    @property
    def lane_cells(self) -> int:
        """DFF count of one lane."""
        return self.lane_bytes * 8

    @property
    def lane_words(self) -> int:
        """Word positions in one lane (the circular depth)."""
        return max(1, self.lane_cells // self.word_bits)

    @property
    def total_cells(self) -> int:
        """DFF count of the whole array."""
        return self.capacity_bytes * 8

    @property
    def area(self) -> float:
        """Array area (m^2): DFF cells only (SHIFT needs no decoders)."""
        cell = SHIFT_CELL_AREA_F2 * self.process.jj_diameter**2
        return self.total_cells * cell

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def step_latency(self) -> float:
        """Latency of advancing a lane one word position (s)."""
        return SHIFT_CELL_ACCESS

    def rotate_steps(self, word_delta: int) -> int:
        """Shift steps to reach a word ``word_delta`` positions ahead.

        Lanes rotate forward only; a backward jump of d costs
        ``lane_words - d`` steps.  ``word_delta`` may be any integer.
        """
        return word_delta % self.lane_words

    def rotate_latency(self, word_delta: int) -> float:
        """Time to rotate a lane to a target word (s)."""
        return self.rotate_steps(word_delta) * self.step_latency

    @property
    def sequential_bandwidth(self) -> float:
        """Aggregate sequential bandwidth, all lanes streaming (B/s)."""
        word_bytes = self.word_bits / 8
        return self.banks * word_bytes / self.step_latency

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    @property
    def energy_per_step(self) -> float:
        """Energy of one shift step of one lane (J).

        Every DFF in the lane is clocked; those holding a 1 (activity
        fraction) dissipate the 0.1 fJ cell energy.
        """
        return self.lane_cells * SHIFT_CELL_ENERGY * SHIFT_ACTIVITY

    def access_energy(self, word_delta: int = 1) -> float:
        """Energy to advance a lane to a word ``word_delta`` ahead (J)."""
        steps = self.rotate_steps(word_delta)
        return steps * self.energy_per_step

    @property
    def leakage_power(self) -> float:
        """Static power (W): zero, ERSFQ SHIFT has no bias resistors."""
        return 0.0
