"""VTM, MRAM and SNM array models (paper Fig 3, Table 1).

These technologies share an organisation: an SFQ decoder/multiplexer at
the edge (expensive, because SFQ fan-out is one), hTron row/column
drivers, and a cell matrix whose latency/energy follow Table 1.  They
differ in cell size, write behaviour and read destructiveness:

- **VTM**: fast symmetric 0.1 ns accesses, but 203 F^2 cells;
- **MRAM**: 0.1 ns reads, 2 ns / 8 pJ writes through SHE-MTJ switching;
- **SNM**: 54 F^2 cells, 3 ns writes, destructive reads (each read must
  be followed by a restore write).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.cryomem.technology import MemoryTechnology
from repro.errors import ConfigError
from repro.sfq.cells import SplitterTree
from repro.sfq.constants import (
    ERSFQ_1UM,
    SFQ_DECODER_4TO16_AREA_F2,
    SfqProcess,
)


#: Share of array area spent on SFQ decoders in non-SHIFT superconductor
#: arrays (paper Sec 3: 16%-28%); we model it from the splitter trees
#: but clamp into this band for sanity checks.
SFQ_DECODER_AREA_BAND = (0.16, 0.28)


@dataclass(frozen=True)
class CryoRandomArray:
    """A banked cryogenic random-access array of one Table 1 technology.

    Attributes:
        technology: the cell technology (VTM / MRAM / SNM / SRAM row).
        capacity_bytes: total capacity (bytes).
        banks: independent banks.
        line_bytes: bytes per access.
        feature: feature size for area scaling (m); defaults to the
            process JJ diameter for superconductor cells.
        process: SFQ process for edge peripherals.
    """

    technology: MemoryTechnology
    capacity_bytes: int
    banks: int = 256
    line_bytes: int = 16
    feature: float | None = None
    process: SfqProcess = field(default=ERSFQ_1UM)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if self.banks < 1:
            raise ConfigError("at least one bank required")
        if not self.technology.random_access:
            raise ConfigError(
                f"{self.technology.name} does not support random access"
            )

    @property
    def feature_size(self) -> float:
        """Feature size used for cell area (m)."""
        if self.feature is not None:
            return self.feature
        return self.process.jj_diameter

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def read_latency(self) -> float:
        """Random read latency incl. restore write if destructive (s)."""
        return self.technology.effective_read_latency

    @property
    def write_latency(self) -> float:
        """Random write latency (s)."""
        return self.technology.write_latency

    @property
    def issue_interval_read(self) -> float:
        """Sustained interval between reads (s).

        The SFQ edge periphery serialises issue; these arrays are not
        internally pipelined, so the initiation interval equals the cell
        access time (cf. the pipelined CMOS-SFQ array at 0.103 ns).
        """
        return self.read_latency

    @property
    def issue_interval_write(self) -> float:
        """Sustained interval between writes (s)."""
        return self.write_latency

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    @property
    def read_energy(self) -> float:
        """Energy per line read (J).

        Table 1 quotes per-cell access energies at word granularity; we
        charge one cell energy per byte of the line, plus the restore
        write for destructive-read technologies.
        """
        per_byte = self.technology.read_energy
        restore = (
            self.technology.write_energy if self.technology.destructive_read
            else 0.0
        )
        return (per_byte + restore) * self.line_bytes

    @property
    def write_energy(self) -> float:
        """Energy per line write (J)."""
        return self.technology.write_energy * self.line_bytes

    @property
    def leakage_power(self) -> float:
        """Static power (W): hTron drivers, tiny for these cells."""
        per_bank_htron = 8.8e-6  # one row + one column driver pair
        return self.banks * per_bank_htron

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    @cached_property
    def cell_area_total(self) -> float:
        """Cell matrix area (m^2)."""
        bits = self.capacity_bytes * 8
        return bits * self.technology.cell_area(self.feature_size)

    @cached_property
    def decoder_area(self) -> float:
        """SFQ decoder + multiplexer area (m^2).

        Each bank needs word-line decoding; SFQ decoders are built from
        NOR stages plus splitter clock trees (paper Fig 3d), costing
        ~77 kF^2 per 4-to-16 stage — several times the CMOS equivalent.
        """
        bits_per_bank = self.capacity_bytes * 8 // self.banks
        rows_per_bank = max(16, int(math.sqrt(bits_per_bank)))
        stages_per_bank = max(1, math.ceil(math.log(rows_per_bank, 16)))
        per_bank = (
            stages_per_bank
            * SFQ_DECODER_4TO16_AREA_F2
            * (rows_per_bank / 16)
            * self.process.jj_diameter**2
        )
        bank_select = SplitterTree(self.banks, self.process).area_f2 * (
            self.process.jj_diameter**2
        )
        return self.banks * per_bank + bank_select

    @property
    def area(self) -> float:
        """Total area (m^2): cells + SFQ periphery + drivers."""
        driver_overhead = 0.06 * self.cell_area_total
        return self.cell_area_total + self.decoder_area + driver_overhead

    @property
    def decoder_area_share(self) -> float:
        """Fraction of area in SFQ decoders (paper: 16%-28%)."""
        return self.decoder_area / self.area
