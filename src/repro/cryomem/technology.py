"""Cryogenic memory technology parameters — paper Table 1.

Each :class:`MemoryTechnology` row captures the cell-level operating
point the paper compares: access latencies, cell size (in F^2 of the
technology's own feature: JJ diameter for superconductor cells, CMOS
node for SRAM), access energies, leakage class and random-access
capability.  Array-level models in the sibling modules compose these
with decoders, drivers and H-trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import FJ, NS, PJ


@dataclass(frozen=True)
class MemoryTechnology:
    """One row of paper Table 1.

    Attributes:
        name: technology name.
        read_latency: cell/array read latency (s).
        write_latency: cell/array write latency (s).
        cell_size_f2: cell area in F^2 (F defined by ``feature_basis``).
        feature_basis: "jj" (F = JJ diameter) or "cmos" (F = node size).
        read_energy: energy per cell read (J).
        write_energy: energy per cell write (J).
        leakage_class: "none", "tiny" or "medium" (Table 1 wording).
        random_access: whether the cell supports random addressing.
        destructive_read: whether each read must be followed by a
            restoring write (true for SNM).
    """

    name: str
    read_latency: float
    write_latency: float
    cell_size_f2: float
    feature_basis: str
    read_energy: float
    write_energy: float
    leakage_class: str
    random_access: bool
    destructive_read: bool = False

    def __post_init__(self) -> None:
        if self.feature_basis not in ("jj", "cmos"):
            raise ConfigError(
                f"{self.name}: feature_basis must be 'jj' or 'cmos'"
            )
        if self.leakage_class not in ("none", "tiny", "medium"):
            raise ConfigError(
                f"{self.name}: unknown leakage class {self.leakage_class}"
            )
        for attr in ("read_latency", "write_latency", "cell_size_f2",
                     "read_energy", "write_energy"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{self.name}: {attr} must be positive")

    @property
    def effective_read_latency(self) -> float:
        """Read latency including the restore write if destructive (s)."""
        if self.destructive_read:
            return self.read_latency + self.write_latency
        return self.read_latency

    def cell_area(self, feature_m: float) -> float:
        """Cell area (m^2) at a given feature size."""
        if feature_m <= 0:
            raise ConfigError("feature size must be positive")
        return self.cell_size_f2 * feature_m * feature_m


#: SFQ shift-register cell: serially connected DFFs, no decoder, no
#: random access (paper Table 1 / Sec 2.2).
SHIFT = MemoryTechnology(
    name="SHIFT",
    read_latency=0.02 * NS,
    write_latency=0.02 * NS,
    cell_size_f2=39.0,
    feature_basis="jj",
    read_energy=0.1 * FJ,
    write_energy=0.1 * FJ,
    leakage_class="none",
    random_access=False,
)

#: Vortex transition memory: 4 JJs + 8 inductors per cell, fast but
#: poorly scalable (0.9 Mbit/cm^2 demonstrated).
VTM = MemoryTechnology(
    name="VTM",
    read_latency=0.1 * NS,
    write_latency=0.1 * NS,
    cell_size_f2=203.0,
    feature_basis="jj",
    read_energy=0.1 * PJ,
    write_energy=0.1 * PJ,
    leakage_class="tiny",
    random_access=True,
)

#: Josephson-CMOS SRAM at 4 K: mature and dense but slow for a 28 MB
#: array (2-4 ns; we carry the midpoint at array level).
SRAM_4K = MemoryTechnology(
    name="SRAM",
    read_latency=3.0 * NS,
    write_latency=3.0 * NS,
    cell_size_f2=146.0,
    feature_basis="cmos",
    read_energy=0.1 * PJ,
    write_energy=0.1 * PJ,
    leakage_class="medium",
    random_access=True,
)

#: Spin-hall-effect MRAM with hTron bit-select: fast reads, 2 ns writes
#: at 8 pJ, which is what sinks it (paper Sec 3).
MRAM = MemoryTechnology(
    name="MRAM",
    read_latency=0.1 * NS,
    write_latency=2.0 * NS,
    cell_size_f2=89.0,
    feature_basis="jj",
    read_energy=1.0 * PJ,
    write_energy=8.0 * PJ,
    leakage_class="tiny",
    random_access=True,
)

#: Superconducting nanowire memory: dense and low-energy but 3 ns writes
#: and destructive reads.
SNM = MemoryTechnology(
    name="SNM",
    read_latency=0.1 * NS,
    write_latency=3.0 * NS,
    cell_size_f2=54.0,
    feature_basis="jj",
    read_energy=10.0 * FJ,
    write_energy=10.0 * FJ,
    leakage_class="tiny",
    random_access=True,
    destructive_read=True,
)

#: Table 1 in declaration order.
TABLE1: dict[str, MemoryTechnology] = {
    tech.name: tech for tech in (SHIFT, VTM, SRAM_4K, MRAM, SNM)
}
