"""CACTI-lite CMOS SRAM sub-bank model at cryogenic temperature.

A sub-bank is a grid of MATs (memory array tiles); each MAT holds a
square SRAM cell array with its own row decoder, wordline drivers,
bitline pairs, column multiplexer and sense amplifiers (paper Fig 11a).
Latency and energy follow first-order RC physics, with every transistor
parameter scaled by the :class:`~repro.cryomem.mosfet.CryoMosfet` model:

- decoder: a logical-effort chain, delay ~ FO4 * stages;
- wordline: distributed RC across the row;
- bitline: V_swing development through the cell's drive current;
- sense amp + column mux: fixed FO4 multiples;
- intra-sub-bank routing: repeated CMOS wire to the farthest MAT.

The model is deliberately conservative (paper Sec 4.2.3: simulated
latencies 3-8% above the fabricated 4 K chip, energies 8-12% above).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.cryomem.mosfet import CryoMosfet
from repro.errors import ConfigError
from repro.sfq.cmos_wire import CmosWire
from repro.units import FF, UM


#: SRAM cell geometry (Table 1): 146 F^2 at the CMOS node.
SRAM_CELL_F2 = 146.0

#: 300 K reference FO4 delay per metre of feature size: FO4(28 nm) at
#: 300 K is ~10 ps (fast-corner foundry 28 nm).
FO4_PER_NODE = 10e-12 / 28e-9

#: Capacitances per cell hanging on wordlines / bitlines at 300 K.
WL_CAP_PER_CELL = 0.12 * FF
BL_CAP_PER_CELL = 0.10 * FF

#: Bitline sense swing as a fraction of V_dd.
SENSE_SWING = 0.1

#: 300 K leakage per SRAM byte at the 28 nm node (W); scaled by the
#: MOSFET leakage factor at operating temperature.
LEAKAGE_PER_BYTE_300K = 35e-9

#: 300 K leakage of one MAT's periphery (decoder slice, sense amps,
#: precharge) (W).  This is what makes aggressive MAT partitioning —
#: the pipelined array's way of meeting its 0.103 ns stage — expensive
#: in standby power (paper Sec 4.2.4 / Fig 14).
LEAKAGE_PER_MAT_300K = 25e-6


@dataclass(frozen=True)
class CmosSubbank:
    """One CMOS SRAM sub-bank built from square MATs.

    Attributes:
        capacity_bytes: sub-bank capacity (bytes).
        mats: number of MATs (power of two preferred).
        line_bytes: bytes delivered per access.
        mosfet: cryogenic MOSFET operating point.
    """

    capacity_bytes: int
    mats: int = 8
    line_bytes: int = 16
    mosfet: CryoMosfet = field(default_factory=CryoMosfet)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if self.mats < 1:
            raise ConfigError("a sub-bank needs at least one MAT")
        if self.line_bytes < 1:
            raise ConfigError("line size must be at least one byte")
        if self.line_bytes * 8 > self.mat_bits:
            raise ConfigError("line larger than a MAT row")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def mat_bits(self) -> int:
        """Bits per MAT."""
        return self.capacity_bytes * 8 // self.mats

    @property
    def mat_rows(self) -> int:
        """Rows in the (square-ish) MAT cell array."""
        return max(1, int(math.sqrt(self.mat_bits)))

    @property
    def mat_cols(self) -> int:
        """Columns in the MAT cell array."""
        return max(1, self.mat_bits // self.mat_rows)

    @cached_property
    def cell_pitch(self) -> float:
        """Cell pitch (m), from the 146 F^2 SRAM cell."""
        return math.sqrt(SRAM_CELL_F2) * self.mosfet.node

    @property
    def mat_width(self) -> float:
        """MAT width (m)."""
        return self.mat_cols * self.cell_pitch

    @property
    def mat_height(self) -> float:
        """MAT height (m)."""
        return self.mat_rows * self.cell_pitch

    @property
    def area(self) -> float:
        """Sub-bank area (m^2): cells plus 35% periphery overhead."""
        periphery = 1.35
        return self.mats * self.mat_width * self.mat_height * periphery

    @property
    def side(self) -> float:
        """Approximate side of the square sub-bank footprint (m)."""
        return math.sqrt(self.area)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @cached_property
    def fo4(self) -> float:
        """Temperature-scaled FO4 inverter delay (s)."""
        return FO4_PER_NODE * self.mosfet.node * self.mosfet.gate_delay_factor

    @property
    def decoder_delay(self) -> float:
        """Row decoder delay: logical-effort chain over address bits."""
        address_bits = max(1, int(math.ceil(math.log2(self.mat_rows))))
        stages = 1 + address_bits / 3.0
        return stages * self.fo4

    @property
    def wordline_delay(self) -> float:
        """Distributed RC delay of one wordline (s)."""
        wire = CmosWire(
            length=self.mat_width,
            resistance_per_length=(
                80.0 / UM * self.mosfet.wire_resistance_factor
            ),
            capacitance_per_length=WL_CAP_PER_CELL / self.cell_pitch,
            driver_delay=2 * self.fo4,
        )
        return wire.latency

    @property
    def bitline_delay(self) -> float:
        """Bitline swing development time (s).

        The cell discharges C_bl through its (temperature-boosted) drive
        current until the sense swing is reached.
        """
        c_bitline = BL_CAP_PER_CELL * self.mat_rows / self.cell_pitch * (
            self.cell_pitch
        )
        cell_current = 25e-6 * self.mosfet.on_current_factor
        swing = SENSE_SWING * self.mosfet.supply_voltage
        return c_bitline * swing / cell_current

    @property
    def sense_delay(self) -> float:
        """Sense amplifier + column mux delay (s)."""
        return 3 * self.fo4

    @property
    def routing_delay(self) -> float:
        """Repeated-wire delay to the farthest MAT (s)."""
        wire = CmosWire(
            length=self.side / 2,
            resistance_per_length=(
                60.0 / UM * self.mosfet.wire_resistance_factor
            ),
            driver_delay=2 * self.fo4,
            repeater_delay=self.fo4,
            max_segment=50 * UM,
        )
        return wire.latency

    @property
    def access_latency(self) -> float:
        """Total read latency of the sub-bank (s)."""
        return (
            self.decoder_delay
            + self.wordline_delay
            + self.bitline_delay
            + self.sense_delay
            + self.routing_delay
        )

    # ------------------------------------------------------------------
    # Energy & power
    # ------------------------------------------------------------------
    @property
    def access_energy(self) -> float:
        """Dynamic energy per line access (J)."""
        vdd = self.mosfet.supply_voltage
        wl_energy = WL_CAP_PER_CELL * self.mat_cols * vdd**2
        bl_swing = SENSE_SWING * vdd
        bl_energy = (
            BL_CAP_PER_CELL * self.mat_rows * bl_swing * vdd
            * self.line_bytes * 8
        )
        decoder_energy = 0.15 * wl_energy
        sense_energy = 0.05 * FF * vdd**2 * self.line_bytes * 8 * 20
        routing_energy = CmosWire(length=self.side / 2).energy_per_bit * (
            self.line_bytes * 8
        )
        return (
            wl_energy + bl_energy + decoder_energy + sense_energy
            + routing_energy
        )

    @property
    def leakage_power(self) -> float:
        """Static power of the sub-bank at temperature (W).

        Cell leakage scales with capacity; periphery leakage scales with
        MAT count, which is why shrinking MATs to shorten the access
        raises standby power (Sec 4.2.4).
        """
        cells = LEAKAGE_PER_BYTE_300K * self.capacity_bytes
        periphery = LEAKAGE_PER_MAT_300K * self.mats
        return (cells + periphery) * self.mosfet.leakage_factor


def subbank_for_stage_time(capacity_bytes: int, stage_time: float,
                           mosfet: CryoMosfet | None = None,
                           line_bytes: int = 16) -> CmosSubbank:
    """Find the smallest MAT count whose access fits ``stage_time``.

    Used by the pipelined CMOS-SFQ array design-space exploration
    (Sec 4.2.4): shrinking MATs shortens word/bitlines until the
    sub-bank fits one pipeline stage, at the price of more periphery.

    When no legal MAT count meets the stage time (partitioning bottoms
    out once a MAT row shrinks to the line width), the fastest legal
    configuration is returned instead — the array then simply pipelines
    at that sub-bank's latency.

    Raises:
        ConfigError: if no legal configuration exists at all.
    """
    mosfet = mosfet or CryoMosfet()
    mats = 1
    best: CmosSubbank | None = None
    while mats <= 4096:
        try:
            candidate = CmosSubbank(
                capacity_bytes=capacity_bytes,
                mats=mats,
                line_bytes=line_bytes,
                mosfet=mosfet,
            )
        except ConfigError:
            break  # MAT rows shrank below the line width
        if best is None or candidate.access_latency < best.access_latency:
            best = candidate
        if candidate.access_latency <= stage_time:
            return candidate
        mats *= 2
    if best is None:
        raise ConfigError(
            f"no legal sub-bank configuration for {capacity_bytes} bytes "
            f"at {line_bytes}-byte lines"
        )
    return best
