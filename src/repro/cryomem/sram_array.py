"""Josephson-CMOS SRAM array model (paper Fig 3b).

The conventional cryogenic SRAM organisation the paper compares against:
an SFQ decoder and multiplexer at the array edge drive nTrons into a
CMOS SRAM macro whose internal routing is a *CMOS* H-tree.  The access
path is

    SFQ decoder -> CMOS H-tree (request) -> sub-bank (decode, WL, BL,
    sense) -> CMOS H-tree (reply) -> DC/SFQ conversion

and for a 28 MB array the H-trees dominate (~84% latency / ~49% energy,
paper Fig 9), landing total access time in the 2-4 ns band of Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.cryomem.cmos_htree import CmosHTree
from repro.cryomem.mosfet import CryoMosfet
from repro.cryomem.subbank import CmosSubbank
from repro.errors import ConfigError
from repro.sfq.cells import DCSFQConverter, NTron, SplitterTree
from repro.sfq.constants import ERSFQ_1UM, SFQ_DECODER_4TO16_AREA_F2, SfqProcess


@dataclass(frozen=True)
class AccessBreakdown:
    """Per-component shares of one array access.

    Attributes map component names to (latency seconds, energy joules).
    """

    components: dict[str, tuple[float, float]]

    @property
    def total_latency(self) -> float:
        """Total access latency (s)."""
        return sum(lat for lat, _ in self.components.values())

    @property
    def total_energy(self) -> float:
        """Total access energy (J)."""
        return sum(e for _, e in self.components.values())

    def latency_share(self, name: str) -> float:
        """Fraction of latency spent in one component."""
        return self.components[name][0] / self.total_latency

    def energy_share(self, name: str) -> float:
        """Fraction of energy spent in one component."""
        return self.components[name][1] / self.total_energy


@dataclass(frozen=True)
class JosephsonCmosSram:
    """A banked Josephson-CMOS SRAM array with CMOS H-trees.

    Attributes:
        capacity_bytes: total capacity (bytes).
        banks: number of CMOS sub-banks.
        mats_per_bank: MATs inside each sub-bank.
        line_bytes: bytes per access.
        mosfet: cryogenic CMOS operating point.
        process: SFQ process for the edge peripherals.
    """

    capacity_bytes: int
    banks: int = 256
    mats_per_bank: int = 16
    line_bytes: int = 16
    mosfet: CryoMosfet = field(default_factory=CryoMosfet)
    process: SfqProcess = field(default=ERSFQ_1UM)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        if self.banks < 1:
            raise ConfigError("at least one bank required")

    @cached_property
    def subbank(self) -> CmosSubbank:
        """The per-bank CMOS sub-bank model."""
        return CmosSubbank(
            capacity_bytes=self.capacity_bytes // self.banks,
            mats=self.mats_per_bank,
            line_bytes=self.line_bytes,
            mosfet=self.mosfet,
        )

    @property
    def array_side(self) -> float:
        """Side of the square array footprint (m)."""
        return math.sqrt(self.banks) * self.subbank.side

    @cached_property
    def htree(self) -> CmosHTree:
        """The request CMOS H-tree (reply tree is its mirror)."""
        return CmosHTree(
            banks=self.banks,
            array_side=self.array_side,
            bus_width=8 * self.line_bytes + 32,
            mosfet=self.mosfet,
        )

    @cached_property
    def sfq_decoder(self) -> SplitterTree:
        """SFQ bank-select decoder: splitter tree over the banks."""
        return SplitterTree(fanout=self.banks, process=self.process)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    @property
    def breakdown(self) -> AccessBreakdown:
        """Latency/energy of one access, per component (paper Fig 9)."""
        ntron = NTron(self.process)
        dcsfq = DCSFQConverter(self.process)
        decoder_latency = (
            self.sfq_decoder.latency + ntron.latency
        )
        decoder_energy = (
            self.sfq_decoder.energy_per_broadcast
            + ntron.dynamic_energy_per_pulse
        )
        htree_latency = 2 * self.htree.path_latency  # request + reply
        htree_energy = 2 * self.htree.energy_per_access()
        sb = self.subbank
        return AccessBreakdown(components={
            "sfq_edge": (decoder_latency, decoder_energy),
            "htree": (htree_latency, htree_energy),
            "cdec": (sb.decoder_delay, 0.15 * sb.access_energy),
            "array": (
                sb.wordline_delay + sb.bitline_delay + sb.routing_delay,
                0.65 * sb.access_energy,
            ),
            "sense": (sb.sense_delay, 0.20 * sb.access_energy),
            "dcsfq": (dcsfq.latency, dcsfq.dynamic_energy_per_pulse),
        })

    @property
    def access_latency(self) -> float:
        """Total random access latency (s)."""
        return self.breakdown.total_latency

    @property
    def access_energy(self) -> float:
        """Total access energy (J)."""
        return self.breakdown.total_energy

    @property
    def leakage_power(self) -> float:
        """Static power (W): sub-banks + H-tree buffers + SFQ edge."""
        subbanks = self.banks * self.subbank.leakage_power
        ntrons = self.banks * NTron(self.process).leakage_power
        return subbanks + 2 * self.htree.leakage_power + ntrons

    @property
    def area(self) -> float:
        """Total area (m^2): banks + H-trees + SFQ edge decoder."""
        decoder_area = (
            self.sfq_decoder.area_f2 * self.process.jj_diameter**2
            # each 4-to-16 stage of bank addressing also needs NOR gates
            + (self.banks / 16)
            * SFQ_DECODER_4TO16_AREA_F2
            * self.process.jj_diameter**2
        )
        return (
            self.banks * self.subbank.area
            + 2 * self.htree.area
            + decoder_area
        )
