"""CMOS H-tree model — the bottleneck of large Josephson-CMOS arrays.

A memory array routes requests/replies between the array edge and its
banks over two H-trees (paper Sec 4.2.1).  In CMOS these are repeated RC
wires plus buffer fan-out at each branch; for a 28 MB 256-bank array at
4 K they dominate: ~84% of access latency and ~49% of access energy
(paper Fig 9) — the observation that motivates SMART's SFQ H-trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.cryomem.mosfet import CryoMosfet
from repro.errors import ConfigError
from repro.sfq.cmos_wire import CmosWire
from repro.units import UM


@dataclass(frozen=True)
class CmosHTree:
    """A repeated-RC-wire H-tree over ``banks`` leaves.

    Geometry mirrors :class:`repro.sfq.htree.SfqHTree` so the two are
    directly comparable; only the wire technology differs.

    Attributes:
        banks: number of leaf banks.
        array_side: side of the square region spanned (m).
        bus_width: parallel data + address + control wires.
        mosfet: cryogenic MOSFET operating point (wire R and buffer
            delays scale with temperature).
    """

    banks: int
    array_side: float
    bus_width: int = 32
    mosfet: CryoMosfet = field(default_factory=CryoMosfet)

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ConfigError("H-tree needs at least one bank")
        if self.array_side <= 0:
            raise ConfigError("array side must be positive")
        if self.bus_width < 1:
            raise ConfigError("bus width must be at least 1")

    @property
    def levels(self) -> int:
        """Branching levels: ceil(log2(banks))."""
        return max(0, math.ceil(math.log2(self.banks))) if self.banks > 1 else 0

    @cached_property
    def segment_lengths(self) -> list[float]:
        """Root-to-leaf segment lengths per level (m)."""
        lengths = []
        for level in range(self.levels):
            lengths.append(self.array_side / (2 ** (1 + level // 2)))
        if not lengths:
            lengths = [self.array_side / 2]
        return lengths

    def _wire(self, length: float) -> CmosWire:
        # Global wires are optimally repeated: segment length
        # sqrt(2 t_rep / RC) ~ 50 um at these parameters.
        resistance = 100.0 / UM * self.mosfet.wire_resistance_factor
        return CmosWire(
            length=length,
            resistance_per_length=resistance,
            supply_voltage=self.mosfet.supply_voltage,
            repeater_delay=(
                5e-12 * self.mosfet.gate_delay_factor
            ),
            driver_delay=10e-12 * self.mosfet.gate_delay_factor,
            max_segment=50 * UM,
        )

    @property
    def path_latency(self) -> float:
        """Root-to-leaf latency (s): wires plus branch buffers."""
        wires = sum(self._wire(length).latency
                    for length in self.segment_lengths)
        buffer_delay = 3 * 14e-12 * (self.mosfet.node / 28e-9) * (
            self.mosfet.gate_delay_factor
        )
        return wires + self.levels * buffer_delay

    def energy_per_access(self, broadcast: bool = False) -> float:
        """Dynamic energy of one request traversal (J).

        CMOS trees gate the inactive branch at each node, so by default
        only the selected root-to-leaf path switches; ``broadcast=True``
        models an ungated tree.
        """
        activity = 0.5 * self.bus_width
        if broadcast:
            total = 0.0
            for level, length in enumerate(self.segment_lengths):
                total += self._wire(length).energy_per_bit * 2**level
            return activity * total
        path = sum(self._wire(length).energy_per_bit
                   for length in self.segment_lengths)
        return activity * path

    @property
    def leakage_power(self) -> float:
        """Repeater/buffer leakage (W), temperature scaled."""
        repeaters = 0
        for level, length in enumerate(self.segment_lengths):
            wire = self._wire(length)
            repeaters += (wire.segments + 2) * 2**level
        leak_per_buffer_300k = 50e-9  # W, sized-up repeater at 28 nm
        return (
            self.bus_width
            * repeaters
            * leak_per_buffer_300k
            * self.mosfet.leakage_factor
        )

    @property
    def area(self) -> float:
        """Wiring track area (m^2) across all bit lanes."""
        track_width = 4 * self.mosfet.node
        total = 0.0
        for level, length in enumerate(self.segment_lengths):
            total += length * track_width * 2**level
        return total * self.bus_width
