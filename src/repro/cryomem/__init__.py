"""Cryogenic memory modelling (CryoRAM / cryo-mem substitute).

The paper models its CMOS sub-banks with CryoRAM [Lee 2019]: a validated
cryogenic MOSFET model (*cryo-pgen*) feeding a CACTI-style memory model
(*cryo-mem*), re-tuned from 77 K to 4 K using published cryogenic MOSFET
data (Sec 4.2.3).  This package implements both layers from scratch:

- :mod:`repro.cryomem.mosfet` -- temperature-dependent MOSFET parameters
  (carrier mobility, saturation velocity, threshold voltage, leakage).
- :mod:`repro.cryomem.subbank` -- CACTI-lite CMOS sub-bank: MATs, row
  decoder, wordline/bitline, sense amplifiers.
- :mod:`repro.cryomem.cmos_htree` -- the repeated-RC-wire H-tree that
  dominates large CMOS arrays (paper Fig 9).
- :mod:`repro.cryomem.technology` -- the Table 1 cryogenic memory
  technology parameters (SHIFT / VTM / SRAM / MRAM / SNM).
- :mod:`repro.cryomem.shift_array` -- SHIFT (shift-register) SPM arrays.
- :mod:`repro.cryomem.sram_array` -- Josephson-CMOS SRAM arrays with SFQ
  decoders and CMOS H-trees.
- :mod:`repro.cryomem.alt_arrays` -- VTM / MRAM / SNM arrays.
- :mod:`repro.cryomem.validation` -- published chip operating points and
  deviation helpers (paper Fig 12 and the VTM/MRAM/SNM demos).
"""

from repro.cryomem.mosfet import CryoMosfet
from repro.cryomem.technology import (
    MemoryTechnology,
    TABLE1,
    MRAM,
    SHIFT,
    SNM,
    SRAM_4K,
    VTM,
)
from repro.cryomem.subbank import CmosSubbank
from repro.cryomem.cmos_htree import CmosHTree
from repro.cryomem.shift_array import ShiftArray
from repro.cryomem.sram_array import JosephsonCmosSram
from repro.cryomem.alt_arrays import CryoRandomArray
from repro.cryomem.validation import (
    SUBBANK_CHIP_DATA,
    relative_error,
)

__all__ = [
    "CryoMosfet",
    "MemoryTechnology",
    "TABLE1",
    "MRAM",
    "SHIFT",
    "SNM",
    "SRAM_4K",
    "VTM",
    "CmosSubbank",
    "CmosHTree",
    "ShiftArray",
    "JosephsonCmosSram",
    "CryoRandomArray",
    "SUBBANK_CHIP_DATA",
    "relative_error",
]
