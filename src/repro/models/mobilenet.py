"""MobileNet-v1 (Howard 2017) layer table.

Thirteen depthwise-separable pairs.  Depthwise layers give a weight-
stationary systolic array almost nothing to fold (one filter slice per
channel), so MobileNet exposes the fill/drain and weight-reload
overheads more than any other model in the suite.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network

#: (size, in_c, out_c, stride of the depthwise stage) per separable pair.
_PAIRS = (
    (112, 32, 64, 1),
    (112, 64, 128, 2),
    (56, 128, 128, 1),
    (56, 128, 256, 2),
    (28, 256, 256, 1),
    (28, 256, 512, 2),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 1024, 2),
    (7, 1024, 1024, 1),
)


def build_mobilenet() -> Network:
    """Return the MobileNet-v1 layer table."""
    layers: list[ConvLayer] = [
        ConvLayer("conv1", 224, 224, 3, 32, 3, 3, stride=2, padding=1),
    ]
    for i, (size, in_c, out_c, stride) in enumerate(_PAIRS, start=1):
        out_size = (size + 2 - 3) // stride + 1
        layers.append(
            ConvLayer(f"dw{i}", size, size, in_c, in_c, 3, 3,
                      stride=stride, padding=1, kind="dwconv")
        )
        layers.append(
            ConvLayer(f"pw{i}", out_size, out_size, in_c, out_c, 1, 1)
        )
    layers.append(ConvLayer("pool", 7, 7, 1024, 1024, 7, 7, stride=7,
                            kind="pool"))
    layers.append(ConvLayer("fc", 1, 1, 1024, 1000, 1, 1, kind="fc"))
    return Network(name="MobileNet", layers=tuple(layers))
