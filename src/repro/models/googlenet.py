"""GoogLeNet / Inception-v1 (Szegedy 2015) layer table.

Nine inception modules, each four parallel branches (1x1, 1x1->3x3,
1x1->5x5, pool->1x1); the branches are independent layers to the
systolic array.  Lots of small convolutions with small channel counts:
fold-dominated and fill/drain-sensitive.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network

#: (name, size, in_c, b1, b3r, b3, b5r, b5, pool_proj) per module.
_INCEPTION = (
    ("3a", 28, 192, 64, 96, 128, 16, 32, 32),
    ("3b", 28, 256, 128, 128, 192, 32, 96, 64),
    ("4a", 14, 480, 192, 96, 208, 16, 48, 64),
    ("4b", 14, 512, 160, 112, 224, 24, 64, 64),
    ("4c", 14, 512, 128, 128, 256, 24, 64, 64),
    ("4d", 14, 512, 112, 144, 288, 32, 64, 64),
    ("4e", 14, 528, 256, 160, 320, 32, 128, 128),
    ("5a", 7, 832, 256, 160, 320, 32, 128, 128),
    ("5b", 7, 832, 384, 192, 384, 48, 128, 128),
)


def _inception(layers: list[ConvLayer], name: str, size: int, in_c: int,
               b1: int, b3r: int, b3: int, b5r: int, b5: int,
               pool_proj: int) -> None:
    layers.append(ConvLayer(f"inc{name}_1x1", size, size, in_c, b1, 1, 1))
    layers.append(ConvLayer(f"inc{name}_3x3r", size, size, in_c, b3r, 1, 1))
    layers.append(ConvLayer(f"inc{name}_3x3", size, size, b3r, b3, 3, 3,
                            padding=1))
    layers.append(ConvLayer(f"inc{name}_5x5r", size, size, in_c, b5r, 1, 1))
    layers.append(ConvLayer(f"inc{name}_5x5", size, size, b5r, b5, 5, 5,
                            padding=2))
    layers.append(ConvLayer(f"inc{name}_pproj", size, size, in_c,
                            pool_proj, 1, 1))


def build_googlenet() -> Network:
    """Return the GoogLeNet layer table."""
    layers: list[ConvLayer] = [
        ConvLayer("conv1", 224, 224, 3, 64, 7, 7, stride=2, padding=3),
        ConvLayer("pool1", 112, 112, 64, 64, 3, 3, stride=2, kind="pool"),
        ConvLayer("conv2r", 56, 56, 64, 64, 1, 1),
        ConvLayer("conv2", 56, 56, 64, 192, 3, 3, padding=1),
        ConvLayer("pool2", 56, 56, 192, 192, 3, 3, stride=2, kind="pool"),
    ]
    for spec in _INCEPTION[:2]:
        _inception(layers, *spec)
    layers.append(ConvLayer("pool3", 28, 28, 480, 480, 3, 3, stride=2,
                            kind="pool"))
    for spec in _INCEPTION[2:7]:
        _inception(layers, *spec)
    layers.append(ConvLayer("pool4", 14, 14, 832, 832, 3, 3, stride=2,
                            kind="pool"))
    for spec in _INCEPTION[7:]:
        _inception(layers, *spec)
    layers.append(ConvLayer("pool5", 7, 7, 1024, 1024, 7, 7, stride=7,
                            kind="pool"))
    layers.append(ConvLayer("fc", 1, 1, 1024, 1000, 1, 1, kind="fc"))
    return Network(name="GoogleNet", layers=tuple(layers))
