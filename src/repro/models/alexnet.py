"""AlexNet (Krizhevsky 2012) layer table.

The paper's running example: 1.5 GMAC less pooling, 61 M parameters,
dominated by three huge fully-connected layers — which is why AlexNet
inference is memory-bandwidth-bound on every accelerator in Fig 18.
Grouped convolutions of the original two-GPU layout are merged, as is
conventional for accelerator studies.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network


def build_alexnet() -> Network:
    """Return the AlexNet layer table."""
    return Network(name="AlexNet", layers=(
        ConvLayer("conv1", 227, 227, 3, 96, 11, 11, stride=4),
        ConvLayer("pool1", 55, 55, 96, 96, 3, 3, stride=2, kind="pool"),
        ConvLayer("conv2", 27, 27, 96, 256, 5, 5, padding=2),
        ConvLayer("pool2", 27, 27, 256, 256, 3, 3, stride=2, kind="pool"),
        ConvLayer("conv3", 13, 13, 256, 384, 3, 3, padding=1),
        ConvLayer("conv4", 13, 13, 384, 384, 3, 3, padding=1),
        ConvLayer("conv5", 13, 13, 384, 256, 3, 3, padding=1),
        ConvLayer("pool5", 13, 13, 256, 256, 3, 3, stride=2, kind="pool"),
        ConvLayer("fc6", 6, 6, 256, 4096, 1, 1, kind="fc"),
        ConvLayer("fc7", 1, 1, 4096, 4096, 1, 1, kind="fc"),
        ConvLayer("fc8", 1, 1, 4096, 1000, 1, 1, kind="fc"),
    ))
