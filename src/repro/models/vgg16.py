"""VGG-16 (Simonyan 2015) layer table.

All-3x3 convolutions over large feature maps plus a 102M-parameter fc6:
the heaviest model of the six, which is why its batch size is only 3
(SMART/TPU) or 7 (SuperNPU) in the paper's Sec 5 batch table.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network


def _block(prefix: str, size: int, in_c: int, out_c: int,
           convs: int) -> list[ConvLayer]:
    layers = []
    channels = in_c
    for i in range(1, convs + 1):
        layers.append(
            ConvLayer(f"{prefix}_{i}", size, size, channels, out_c, 3, 3,
                      padding=1)
        )
        channels = out_c
    layers.append(
        ConvLayer(f"{prefix}_pool", size, size, out_c, out_c, 2, 2,
                  stride=2, kind="pool")
    )
    return layers


def build_vgg16() -> Network:
    """Return the VGG-16 layer table."""
    layers: list[ConvLayer] = []
    layers += _block("conv1", 224, 3, 64, 2)
    layers += _block("conv2", 112, 64, 128, 2)
    layers += _block("conv3", 56, 128, 256, 3)
    layers += _block("conv4", 28, 256, 512, 3)
    layers += _block("conv5", 14, 512, 512, 3)
    layers += [
        ConvLayer("fc6", 7, 7, 512, 4096, 1, 1, kind="fc"),
        ConvLayer("fc7", 1, 1, 4096, 4096, 1, 1, kind="fc"),
        ConvLayer("fc8", 1, 1, 4096, 1000, 1, 1, kind="fc"),
    ]
    return Network(name="VGG16", layers=tuple(layers))
