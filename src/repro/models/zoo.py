"""Model registry and the paper's batch-size table (Sec 5).

"For TPU and SMART, in a batch, AlexNet has 22 images, while VGG16 has
3 images.  All the other models have 20 images in a batch.  For
SuperNPU, since it has larger SPMs, except VGG16 having 7 images in a
batch, all the other models have 30 images in each batch."
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.models.alexnet import build_alexnet
from repro.models.faster_rcnn import build_faster_rcnn
from repro.models.googlenet import build_googlenet
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet50 import build_resnet50
from repro.models.vgg16 import build_vgg16
from repro.systolic.layers import Network

MODEL_BUILDERS: dict[str, Callable[[], Network]] = {
    "AlexNet": build_alexnet,
    "FasterRCNN": build_faster_rcnn,
    "GoogleNet": build_googlenet,
    "MobileNet": build_mobilenet,
    "ResNet50": build_resnet50,
    "VGG16": build_vgg16,
}

#: Paper Sec 5 batch sizes: {model: (tpu_or_smart, supernpu)}.
_BATCH_TABLE: dict[str, tuple[int, int]] = {
    "AlexNet": (22, 30),
    "FasterRCNN": (20, 30),
    "GoogleNet": (20, 30),
    "MobileNet": (20, 30),
    "ResNet50": (20, 30),
    "VGG16": (3, 7),
}

_CACHE: dict[str, Network] = {}


def model_names() -> tuple[str, ...]:
    """All registered model names, in the paper's figure order."""
    return tuple(sorted(MODEL_BUILDERS))


def get_model(name: str) -> Network:
    """Build (and cache) a model by name.

    Raises:
        ConfigError: for unknown model names.
    """
    if name not in MODEL_BUILDERS:
        raise ConfigError(
            f"unknown model '{name}'; known: {', '.join(model_names())}"
        )
    if name not in _CACHE:
        _CACHE[name] = MODEL_BUILDERS[name]()
    return _CACHE[name]


def batch_size_for(name: str, accelerator: str) -> int:
    """The paper's batch size for a model on an accelerator family.

    ``accelerator`` is ``"supernpu"`` or anything else (TPU/SMART share
    a column in the paper's table).
    """
    if name not in _BATCH_TABLE:
        raise ConfigError(f"no batch-size entry for model '{name}'")
    smart_tpu, supernpu = _BATCH_TABLE[name]
    return supernpu if accelerator.lower() == "supernpu" else smart_tpu
