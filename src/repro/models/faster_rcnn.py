"""Faster R-CNN (Ren 2015) layer table, VGG-16 backbone.

Approximation notes: the detector is modelled as its dominant dense
work — the VGG-16 backbone over a 224x224 input (SCALE-SIM topology convention), the RPN 3x3 conv and
its two 1x1 heads, and the per-ROI fc6/fc7 classifier head evaluated
for a 64-proposal batch (folded into the fc layer's output width).
Region-proposal bookkeeping (NMS, ROI pooling indexing) costs no matrix
unit time and is omitted, as SCALE-SIM also does.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network

#: Detection input resolution; SCALE-SIM's FasterRCNN topology runs the
#: backbone at ImageNet resolution and we follow it so the paper's batch
#: sizes fit the SPM capacities.
_H, _W = 224, 224

#: Proposals scored by the per-ROI head per image.
_PROPOSALS = 64


def build_faster_rcnn() -> Network:
    """Return the Faster R-CNN (VGG-16 backbone) layer table."""
    layers: list[ConvLayer] = []
    size_h, size_w = _H, _W
    channels = 3
    vgg_blocks = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))
    for b, (out_c, convs) in enumerate(vgg_blocks, start=1):
        for i in range(1, convs + 1):
            layers.append(
                ConvLayer(f"conv{b}_{i}", size_h, size_w, channels, out_c,
                          3, 3, padding=1)
            )
            channels = out_c
        if b < 5:  # conv5 keeps full resolution for the RPN
            layers.append(
                ConvLayer(f"pool{b}", size_h, size_w, out_c, out_c, 2, 2,
                          stride=2, kind="pool")
            )
            size_h //= 2
            size_w //= 2
    # Region proposal network on the conv5 feature map.
    layers.append(ConvLayer("rpn_conv", size_h, size_w, 512, 512, 3, 3,
                            padding=1))
    layers.append(ConvLayer("rpn_cls", size_h, size_w, 512, 18, 1, 1))
    layers.append(ConvLayer("rpn_reg", size_h, size_w, 512, 36, 1, 1))
    # Per-ROI head: fc6/fc7 on a 7x7x512 pooled patch.  The _PROPOSALS
    # evaluations per image amortise the weights exactly like a batch
    # does, so the head is modelled once per image here and the
    # simulator's batch dimension covers the rest (dense-work
    # approximation, as in SCALE-SIM's FasterRCNN topology file).
    layers.append(ConvLayer("roi_fc6", 7, 7, 512, 4096, 1, 1, kind="fc"))
    layers.append(ConvLayer("roi_fc7", 1, 1, 4096, 4096, 1, 1, kind="fc"))
    layers.append(ConvLayer("roi_cls", 1, 1, 4096, 21, 1, 1, kind="fc"))
    layers.append(ConvLayer("roi_reg", 1, 1, 4096, 84, 1, 1, kind="fc"))
    return Network(name="FasterRCNN", layers=tuple(layers))
