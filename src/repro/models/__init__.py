"""CNN model zoo — the six networks of the paper's evaluation (Sec 5).

Each module exports a builder returning a
:class:`~repro.systolic.layers.Network`; :mod:`repro.models.zoo`
registers them together with the paper's batch-size table.
"""

from repro.models.alexnet import build_alexnet
from repro.models.vgg16 import build_vgg16
from repro.models.googlenet import build_googlenet
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet50 import build_resnet50
from repro.models.faster_rcnn import build_faster_rcnn
from repro.models.zoo import (
    MODEL_BUILDERS,
    batch_size_for,
    get_model,
    model_names,
)

__all__ = [
    "build_alexnet",
    "build_vgg16",
    "build_googlenet",
    "build_mobilenet",
    "build_resnet50",
    "build_faster_rcnn",
    "MODEL_BUILDERS",
    "batch_size_for",
    "get_model",
    "model_names",
]
