"""ResNet-50 (He 2016) layer table.

Four stages of bottleneck blocks (1x1 reduce, 3x3, 1x1 expand) with
projection shortcuts on the first block of each stage.  Many small-
kernel layers with modest feature maps: compute-dense but with frequent
weight reloads, the regime where prefetching pays off most.
"""

from __future__ import annotations

from repro.systolic.layers import ConvLayer, Network


def _bottleneck(layers: list[ConvLayer], prefix: str, size: int,
                in_c: int, mid_c: int, out_c: int, stride: int,
                project: bool) -> int:
    """Append one bottleneck block; returns the output spatial size."""
    out_size = (size - 1) // stride + 1
    layers.append(ConvLayer(f"{prefix}_a", size, size, in_c, mid_c, 1, 1,
                            stride=stride))
    layers.append(ConvLayer(f"{prefix}_b", out_size, out_size, mid_c,
                            mid_c, 3, 3, padding=1))
    layers.append(ConvLayer(f"{prefix}_c", out_size, out_size, mid_c,
                            out_c, 1, 1))
    if project:
        layers.append(ConvLayer(f"{prefix}_proj", size, size, in_c, out_c,
                                1, 1, stride=stride))
    return out_size


def build_resnet50() -> Network:
    """Return the ResNet-50 layer table."""
    layers: list[ConvLayer] = [
        ConvLayer("conv1", 224, 224, 3, 64, 7, 7, stride=2, padding=3),
        ConvLayer("pool1", 112, 112, 64, 64, 3, 3, stride=2, kind="pool"),
    ]
    size = 56
    in_c = 64
    stage_specs = (
        ("res2", 3, 64, 256, 1),
        ("res3", 4, 128, 512, 2),
        ("res4", 6, 256, 1024, 2),
        ("res5", 3, 512, 2048, 2),
    )
    for stage, blocks, mid_c, out_c, first_stride in stage_specs:
        for b in range(1, blocks + 1):
            stride = first_stride if b == 1 else 1
            size = _bottleneck(layers, f"{stage}{chr(ord('a') + b - 1)}",
                               size, in_c, mid_c, out_c, stride,
                               project=(b == 1))
            in_c = out_c
    layers.append(ConvLayer("pool5", size, size, 2048, 2048, size, size,
                            stride=size, kind="pool"))
    layers.append(ConvLayer("fc", 1, 1, 2048, 1000, 1, 1, kind="fc"))
    return Network(name="ResNet50", layers=tuple(layers))
