"""The ILP-based compiler for heterogeneous SPMs (paper Sec 4.3).

Pipeline: a convolutional layer unrolls into a DAG of Read_Weights /
Matrix_Multiply iterations (:mod:`repro.compiler.dag`); memory objects
(weight tiles alpha, input stripes beta, outputs gamma, psum stripes
delta) get lifespans over the DAG edges (:mod:`repro.compiler.memobj`);
an ILP (:mod:`repro.compiler.ilp`, solved with scipy's HiGGS MILP in
place of Gurobi) or a greedy fallback (:mod:`repro.compiler.greedy`)
assigns each live object to the SHIFT or RANDOM array per edge, with
prefetch lookahead ``a``, subject to capacity, consistency (paper Eq. 6)
and bandwidth constraints, maximising the latency saved (paper Eq. 5).
"""

from repro.compiler.dag import LayerDag, DagEdge
from repro.compiler.memobj import MemoryObject, extract_objects
from repro.compiler.ilp import IlpCompiler, IlpSolution
from repro.compiler.greedy import GreedyCompiler
from repro.compiler.schedule import Schedule, Placement
from repro.compiler.driver import LayerCompilation, NetworkCompiler

__all__ = [
    "LayerDag",
    "DagEdge",
    "MemoryObject",
    "extract_objects",
    "IlpCompiler",
    "IlpSolution",
    "GreedyCompiler",
    "Schedule",
    "Placement",
    "LayerCompilation",
    "NetworkCompiler",
]
