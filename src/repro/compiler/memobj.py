"""Memory objects and lifespan analysis (paper Sec 4.3, Table 3).

A memory object M is a multi-byte block with consecutive addresses: a
weight filter tile (alpha), an input stripe (beta), an output stripe
(gamma) or a PSum stripe (delta).  Lifespan analysis determines the DAG
edge window over which each object must be resident; prefetching extends
the window backwards by the lookahead ``a`` so a tile can be fetched
while earlier iterations compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.dag import LayerDag
from repro.errors import MappingError

OPERANDS = ("alpha", "beta", "gamma", "delta")


@dataclass(frozen=True)
class MemoryObject:
    """One allocatable memory object.

    Attributes:
        name: unique object name, e.g. "alpha[3]".
        operand: one of alpha/beta/gamma/delta.
        iteration: fold iteration the object serves.
        size_bytes: footprint while resident.
        first_edge: earliest DAG edge it may occupy an SPM (prefetch
            window start).
        last_edge: last DAG edge it is needed on.
        sequential: whether its accesses are sequential (SHIFT-friendly).
    """

    name: str
    operand: str
    iteration: int
    size_bytes: int
    first_edge: int
    last_edge: int
    sequential: bool

    def __post_init__(self) -> None:
        if self.operand not in OPERANDS:
            raise MappingError(f"unknown operand {self.operand}")
        if self.size_bytes <= 0:
            raise MappingError(f"{self.name}: size must be positive")
        if not 0 <= self.first_edge <= self.last_edge:
            raise MappingError(f"{self.name}: bad lifespan window")

    def live_on(self, edge_index: int) -> bool:
        """Whether the object may be resident on a DAG edge."""
        return self.first_edge <= edge_index <= self.last_edge


def extract_objects(dag: LayerDag, batch: int = 1,
                    prefetch_depth: int = 3) -> list[MemoryObject]:
    """Derive the per-iteration memory objects of a layer DAG.

    Per iteration n (paper Fig 15): the weight tile alpha_n must be in
    an SPM on edge 2n (before Read_Weights) and lives until edge 2n+1;
    the input stripe beta_n and psum stripe delta_n live across edge
    2n+1; the outputs gamma_n materialise after the multiply (edge
    2n+2, i.e. the next iteration's first edge).  Prefetching moves
    every first_edge back by 2*(a-1) edges.
    """
    if batch < 1:
        raise MappingError("batch must be >= 1")
    if prefetch_depth < 1:
        raise MappingError("prefetch depth must be >= 1")
    mapping = dag.mapping
    group = dag.folds_per_iteration
    lookback = 2 * (prefetch_depth - 1)
    objects: list[MemoryObject] = []
    psum = mapping.psum_stripe_bytes(batch)
    if psum:
        # one accumulator region, alive for the whole layer: row folds
        # accumulate into the same stripe in place
        objects.append(MemoryObject(
            name="delta[*]", operand="delta", iteration=0,
            size_bytes=psum,
            first_edge=0,
            last_edge=2 * dag.iterations - 1,
            sequential=True,
        ))
    for n in range(dag.iterations):
        e_weights = 2 * n
        e_multiply = 2 * n + 1
        objects.append(MemoryObject(
            name=f"alpha[{n}]", operand="alpha", iteration=n,
            size_bytes=mapping.weight_tile_bytes * group,
            first_edge=max(0, e_weights - lookback),
            last_edge=e_multiply,
            sequential=True,
        ))
        objects.append(MemoryObject(
            name=f"beta[{n}]", operand="beta", iteration=n,
            size_bytes=mapping.input_stripe_bytes(batch) * group,
            first_edge=max(0, e_multiply - lookback),
            last_edge=e_multiply,
            sequential=mapping.layer.kernel_h == 1,
        ))
        objects.append(MemoryObject(
            name=f"gamma[{n}]", operand="gamma", iteration=n,
            size_bytes=mapping.output_stripe_bytes(batch) * group,
            first_edge=e_multiply,
            last_edge=min(2 * dag.iterations - 1, e_multiply + 1),
            sequential=True,
        ))
    return objects
