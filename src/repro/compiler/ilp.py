"""ILP formulation of SPM allocation and prefetching (paper Eq. 5-6).

Binary variables per object o and live edge i: residency ``x[o,i,H]``,
``x[o,i,R]`` and loads ``l[o,i,HD]``, ``l[o,i,RD]``, ``l[o,i,HR]``
(Table 3 notation: H = SHIFT, R = RANDOM, D = DRAM).  The objective
maximises saved latency (Eq. 5): residency earns the latency advantage
of the array over DRAM streaming; loads pay their transfer cost.
Constraints: Eq. 6 consistency (an object is resident only if it was
resident on the previous edge or loaded here), per-edge SPM capacity,
and per-edge load bandwidth.

Solved with ``scipy.optimize.milp`` (HiGHS) — the Gurobi substitution
documented in DESIGN.md.  Layers whose fold count would blow up the DAG
are coarsened upstream (``LayerDag.from_mapping``), mirroring the
paper's "near-optimal" stance (they fix prefetch depth rather than
search exhaustively).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.compiler.dag import LayerDag
from repro.compiler.memobj import extract_objects
from repro.compiler.schedule import Placement, Schedule
from repro.errors import SolverError
from repro.units import KB, MB, NS


@dataclass(frozen=True)
class IlpCosts:
    """Per-byte timing coefficients of the Eq. 5 objective.

    Attributes:
        save_shift_seq: latency saved per byte by holding a *sequential*
            object in SHIFT rather than streaming from DRAM (s/B).
        save_shift_rand: the same for randomly-accessed objects (small:
            SHIFT rotations eat the benefit).
        save_random: latency saved per byte in the RANDOM array (s/B).
        load_hd / load_rd / load_hr: per-byte cost of DRAM->SHIFT,
            DRAM->RANDOM and RANDOM->SHIFT moves (s/B).
    """

    save_shift_seq: float = 0.02 * NS
    save_shift_rand: float = 0.002 * NS
    save_random: float = 0.0125 * NS
    load_hd: float = 0.0033 * NS
    load_rd: float = 0.0033 * NS
    load_hr: float = 0.0008 * NS


@dataclass(frozen=True)
class IlpSolution:
    """Outcome of one ILP solve.

    Attributes:
        schedule: the decoded schedule.
        status: HiGHS status message.
        variables: number of binary variables in the model.
    """

    schedule: Schedule
    status: str
    variables: int


@dataclass
class IlpCompiler:
    """The ILP-based allocator/prefetcher.

    Attributes:
        shift_capacity: per-operand SHIFT array capacity (bytes).
        random_capacity: RANDOM array capacity (bytes).
        prefetch_depth: lookahead ``a`` (paper sets 3).
        costs: objective coefficients.
        edge_load_budget: bytes movable per DAG edge (bandwidth bound);
            one edge spans many compute cycles, so several MB fit.
    """

    shift_capacity: int = 32 * KB
    random_capacity: int = 28 * MB
    prefetch_depth: int = 3
    costs: IlpCosts = field(default_factory=IlpCosts)
    edge_load_budget: int | None = None

    # variable layout helpers -------------------------------------------------
    _KINDS = ("H", "R", "HD", "RD", "HR")

    def _budget(self, objects) -> int:
        """Per-edge load budget: explicit, or sized to the objects.

        The automatic budget covers twice the largest single iteration's
        total footprint so the forced use-edge loads always fit.
        """
        if self.edge_load_budget is not None:
            return self.edge_load_budget
        per_iteration: dict[int, int] = {}
        for o in objects:
            per_iteration[o.iteration] = (
                per_iteration.get(o.iteration, 0) + o.size_bytes
            )
        worst = max(per_iteration.values(), default=0)
        return max(4 * MB, 2 * worst)

    def compile(self, dag: LayerDag, batch: int = 1) -> IlpSolution:
        """Solve the allocation/prefetch ILP for one layer DAG.

        Raises:
            SolverError: if HiGHS reports failure or infeasibility.
        """
        objects = extract_objects(dag, batch, self.prefetch_depth)
        budget = self._budget(objects)
        edge_count = dag.edge_count
        index: dict[tuple[str, int, str], int] = {}
        for obj in objects:
            for e in range(obj.first_edge, obj.last_edge + 1):
                for kind in self._KINDS:
                    index[(obj.name, e, kind)] = len(index)
        n = len(index)
        if n == 0:
            return IlpSolution(Schedule(solver="ilp"), "empty", 0)

        cost = np.zeros(n)
        by_name = {o.name: o for o in objects}
        for (name, e, kind), k in index.items():
            obj = by_name[name]
            size = obj.size_bytes
            if kind == "H":
                rate = (self.costs.save_shift_seq if obj.sequential
                        else self.costs.save_shift_rand)
                cost[k] = -rate * size  # milp minimises; negate savings
            elif kind == "R":
                cost[k] = -self.costs.save_random * size
            elif kind == "HD":
                cost[k] = self.costs.load_hd * size
            elif kind == "RD":
                cost[k] = self.costs.load_rd * size
            else:
                cost[k] = self.costs.load_hr * size

        rows, cols, vals, lbs, ubs = [], [], [], [], []
        row = 0

        def add(entries, lb, ub):
            nonlocal row
            for col, val in entries:
                rows.append(row)
                cols.append(col)
                vals.append(val)
            lbs.append(lb)
            ubs.append(ub)
            row += 1

        big = 1e18
        for obj in objects:
            for e in range(obj.first_edge, obj.last_edge + 1):
                xh = index[(obj.name, e, "H")]
                xr = index[(obj.name, e, "R")]
                lhd = index[(obj.name, e, "HD")]
                lrd = index[(obj.name, e, "RD")]
                lhr = index[(obj.name, e, "HR")]
                # an object occupies at most one array at a time
                add([(xh, 1.0), (xr, 1.0)], -big, 1.0)
                if e == obj.first_edge:
                    # first edge: residency requires a load (Eq. 6 base)
                    add([(xh, 1.0), (lhd, -1.0), (lhr, -1.0)], -big, 0.0)
                    add([(xr, 1.0), (lrd, -1.0)], -big, 0.0)
                    # an HR move needs the object already in R: impossible
                    add([(lhr, 1.0)], -big, 0.0)
                else:
                    ph = index[(obj.name, e - 1, "H")]
                    pr = index[(obj.name, e - 1, "R")]
                    # Eq. 6 line 1: x_H(e) - l_HD - l_HR - x_H(e-1) <= 0
                    add([(xh, 1.0), (lhd, -1.0), (lhr, -1.0), (ph, -1.0)],
                        -big, 0.0)
                    # Eq. 6 line 2: x_R(e) - l_RD - x_R(e-1) <= 0
                    add([(xr, 1.0), (lrd, -1.0), (pr, -1.0)], -big, 0.0)
                    # Eq. 6 line 3: l_HR(e) <= x_R(e-1)
                    add([(lhr, 1.0), (pr, -1.0)], -big, 0.0)
                # the object must be somewhere on its use edges
                if e >= 2 * obj.iteration:
                    add([(xh, 1.0), (xr, 1.0)], 1.0, big)

        # capacities and bandwidth per edge
        for e in range(edge_count):
            shift_entries = {}
            random_entries = []
            load_entries = []
            for obj in objects:
                if not obj.live_on(e):
                    continue
                shift_entries.setdefault(obj.operand, []).append(
                    (index[(obj.name, e, "H")], float(obj.size_bytes))
                )
                random_entries.append(
                    (index[(obj.name, e, "R")], float(obj.size_bytes))
                )
                for kind in ("HD", "RD", "HR"):
                    load_entries.append(
                        (index[(obj.name, e, kind)], float(obj.size_bytes))
                    )
            for operand, entries in shift_entries.items():
                add(entries, -big, float(self.shift_capacity))
            if random_entries:
                add(random_entries, -big, float(self.random_capacity))
            if load_entries:
                add(load_entries, -big, float(budget))

        constraint = LinearConstraint(
            _sparse(rows, cols, vals, row, n), np.array(lbs), np.array(ubs)
        )
        result = milp(
            c=cost,
            constraints=[constraint],
            integrality=np.ones(n),
            bounds=Bounds(0, 1),
        )
        if result.status != 0 or result.x is None:
            raise SolverError(f"HiGHS failed: {result.message}")

        placements = []
        x = np.round(result.x).astype(int)
        for obj in objects:
            for e in range(obj.first_edge, obj.last_edge + 1):
                for loc in ("H", "R"):
                    if x[index[(obj.name, e, loc)]]:
                        source = None
                        if loc == "H":
                            if x[index[(obj.name, e, "HD")]]:
                                source = "D"
                            elif x[index[(obj.name, e, "HR")]]:
                                source = "R"
                        elif x[index[(obj.name, e, "RD")]]:
                            source = "D"
                        placements.append(
                            Placement(obj, e, loc, source)
                        )
        schedule = Schedule(
            placements=placements,
            objective_value=float(-result.fun),
            solver="ilp",
        )
        return IlpSolution(schedule, result.message, n)


def _sparse(rows, cols, vals, nrows, ncols):
    """Assemble the csr constraint matrix."""
    from scipy.sparse import csr_matrix
    return csr_matrix(
        (vals, (rows, cols)), shape=(nrows, ncols)
    )
