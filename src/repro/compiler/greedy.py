"""Greedy baseline allocator.

Walks the DAG edge by edge, placing live objects in decreasing
benefit-density order: sequential objects prefer their SHIFT array,
random-access objects the RANDOM array; whatever does not fit falls back
to the other array or stays in DRAM.  Used as the fallback when the ILP
would be too large and as a quality baseline in tests (the ILP objective
must never be worse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.dag import LayerDag
from repro.compiler.ilp import IlpCosts
from repro.compiler.memobj import MemoryObject, extract_objects
from repro.compiler.schedule import Placement, Schedule
from repro.units import KB, MB


@dataclass
class GreedyCompiler:
    """Greedy allocator with the same capacity envelope as the ILP.

    Attributes:
        shift_capacity: per-operand SHIFT capacity (bytes).
        random_capacity: RANDOM array capacity (bytes).
        prefetch_depth: lookahead ``a``.
        costs: the same objective coefficients the ILP uses, so the two
            objective values are directly comparable.
    """

    shift_capacity: int = 32 * KB
    random_capacity: int = 28 * MB
    prefetch_depth: int = 3
    costs: IlpCosts = field(default_factory=IlpCosts)
    edge_load_budget: int | None = None

    def compile(self, dag: LayerDag, batch: int = 1) -> Schedule:
        """Produce a feasible (not necessarily optimal) schedule.

        Honours the same envelope as the ILP: per-operand SHIFT
        capacity, RANDOM capacity, and the per-edge load bandwidth.
        """
        objects = extract_objects(dag, batch, self.prefetch_depth)
        budget = self.edge_load_budget
        if budget is None:
            per_iteration: dict[int, int] = {}
            for o in objects:
                per_iteration[o.iteration] = (
                    per_iteration.get(o.iteration, 0) + o.size_bytes
                )
            budget = max(4 * MB, 2 * max(per_iteration.values(), default=0))
        placements: list[Placement] = []
        objective = 0.0
        # residency carried between edges: name -> location
        resident: dict[str, str] = {}
        for e in range(dag.edge_count):
            live = [o for o in objects if o.live_on(e)]
            live.sort(key=self._priority, reverse=True)
            shift_free = {op: self.shift_capacity
                          for op in ("alpha", "beta", "gamma", "delta")}
            random_free = self.random_capacity
            load_free = budget
            next_resident: dict[str, str] = {}
            for obj in live:
                prev = resident.get(obj.name)
                choice, source = self._place(obj, prev, shift_free,
                                             random_free)
                needed = e >= 2 * obj.iteration  # a use edge: must place
                if choice is None:
                    if not needed:
                        continue
                    # emergency: the data must live somewhere — RANDOM
                    choice, source = "R", (None if prev == "R" else "D")
                if source is not None and obj.size_bytes > load_free:
                    if not needed:
                        continue  # defer optional prefetch, no bandwidth
                if choice == "H":
                    shift_free[obj.operand] -= obj.size_bytes
                else:
                    random_free -= obj.size_bytes
                if source is not None:
                    load_free -= obj.size_bytes
                next_resident[obj.name] = choice
                placements.append(Placement(obj, e, choice, source))
                objective += self._gain(obj, choice, source)
            resident = next_resident
        return Schedule(placements=placements, objective_value=objective,
                        solver="greedy")

    def _priority(self, obj: MemoryObject) -> float:
        rate = (self.costs.save_shift_seq if obj.sequential
                else self.costs.save_random)
        return rate

    def _place(self, obj, prev, shift_free, random_free):
        """Choose a location and load source for one object."""
        prefers_shift = obj.sequential
        fits_shift = shift_free[obj.operand] >= obj.size_bytes
        fits_random = random_free >= obj.size_bytes
        if prefers_shift and fits_shift:
            if prev == "H":
                return "H", None
            return "H", ("R" if prev == "R" else "D")
        if fits_random:
            return "R", (None if prev == "R" else "D")
        if fits_shift:
            if prev == "H":
                return "H", None
            return "H", ("R" if prev == "R" else "D")
        return None, None

    def _gain(self, obj, choice, source) -> float:
        size = obj.size_bytes
        if choice == "H":
            rate = (self.costs.save_shift_seq if obj.sequential
                    else self.costs.save_shift_rand)
            gain = rate * size
        else:
            gain = self.costs.save_random * size
        if source == "D":
            gain -= self.costs.load_hd * size
        elif source == "R":
            gain -= self.costs.load_hr * size
        return gain
