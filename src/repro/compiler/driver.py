"""Network-level compiler driver.

Compiles every compute layer of a CNN with the ILP (falling back to the
greedy allocator when a layer's DAG would exceed the variable budget),
aggregates the schedules, and derives the effective prefetch behaviour
the simulator consumes.  This is the end-to-end path of the paper's
Sec 4.3: "our ILP-based compiler makes near-optimal schedules for
various CNN models".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.dag import LayerDag
from repro.compiler.greedy import GreedyCompiler
from repro.compiler.ilp import IlpCompiler
from repro.compiler.schedule import Schedule
from repro.errors import SolverError
from repro.systolic.layers import ConvLayer, Network
from repro.systolic.mapping import WeightStationaryMapping
from repro.units import KB, MB


@dataclass(frozen=True)
class LayerCompilation:
    """Outcome of compiling one layer.

    Attributes:
        layer: the compiled layer.
        schedule: the chosen schedule.
        solver: "ilp" or "greedy" (fallback).
        variables: ILP binary count (0 for greedy).
        mean_prefetch_edges: average distance between an alpha tile's
            first residency and its use edge.
    """

    layer: ConvLayer
    schedule: Schedule
    solver: str
    variables: int
    mean_prefetch_edges: float


@dataclass
class NetworkCompiler:
    """Compile a whole CNN for SMART's heterogeneous SPM.

    Attributes:
        shift_capacity: per-operand SHIFT capacity (bytes).
        random_capacity: RANDOM array capacity (bytes).
        prefetch_depth: lookahead ``a``.
        max_iterations: DAG coarsening budget per layer.
        max_variables: ILP size cap; bigger layers use the greedy
            fallback (the paper's Gurobi runs had a one-hour budget —
            ours is a variable count).
    """

    shift_capacity: int = 32 * KB
    random_capacity: int = 28 * MB
    prefetch_depth: int = 3
    max_iterations: int = 12
    max_variables: int = 20_000

    def compile_layer(self, layer: ConvLayer, rows: int = 64,
                      cols: int = 256, batch: int = 1) -> LayerCompilation:
        """Compile one layer, preferring the exact ILP."""
        mapping = WeightStationaryMapping(layer, rows, cols)
        dag = LayerDag.from_mapping(mapping,
                                    max_iterations=self.max_iterations)
        ilp = IlpCompiler(
            shift_capacity=self.shift_capacity,
            random_capacity=self.random_capacity,
            prefetch_depth=self.prefetch_depth,
        )
        estimated = 5 * 4 * dag.iterations * (
            2 * self.prefetch_depth + 2
        )
        solver = "ilp"
        variables = 0
        if estimated <= self.max_variables:
            try:
                solution = ilp.compile(dag, batch)
                schedule = solution.schedule
                variables = solution.variables
            except SolverError:
                solver = "greedy"
                schedule = self._greedy().compile(dag, batch)
        else:
            solver = "greedy"
            schedule = self._greedy().compile(dag, batch)
        return LayerCompilation(
            layer=layer,
            schedule=schedule,
            solver=solver,
            variables=variables,
            mean_prefetch_edges=self._mean_prefetch(schedule),
        )

    def compile_network(self, network: Network, rows: int = 64,
                        cols: int = 256,
                        batch: int = 1) -> list[LayerCompilation]:
        """Compile every compute layer of a network."""
        return [self.compile_layer(layer, rows, cols, batch)
                for layer in network.compute_layers()]

    def effective_prefetch_depth(
            self, compilations: list[LayerCompilation]) -> int:
        """Prefetch lookahead realised by the schedules.

        The simulator's heterogeneous model takes one lookahead knob;
        the realised mean alpha prefetch distance (in DAG edges, two per
        iteration) maps back to iterations of lookahead.
        """
        if not compilations:
            return 1
        mean_edges = sum(c.mean_prefetch_edges for c in compilations) / (
            len(compilations)
        )
        return max(1, 1 + round(mean_edges / 2))

    def _greedy(self) -> GreedyCompiler:
        return GreedyCompiler(
            shift_capacity=self.shift_capacity,
            random_capacity=self.random_capacity,
            prefetch_depth=self.prefetch_depth,
        )

    @staticmethod
    def _mean_prefetch(schedule: Schedule) -> float:
        names = {p.obj.name for p in schedule.placements
                 if p.obj.operand == "alpha"}
        if not names:
            return 0.0
        distances = [schedule.prefetch_distance(n) for n in names]
        return sum(distances) / len(distances)
