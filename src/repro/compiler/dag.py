"""Layer DAG construction (paper Fig 15).

A convolutional layer is one basic block: a 6-nested loop that unrolls
into fold iterations.  Iteration n is two instructions — Read_Weights
then Matrix_Multiply — joined by edges; edge ``e_{2n}`` precedes the
weight read of iteration n, edge ``e_{2n+1}`` precedes its multiply.
Memory objects annotate the edges where they must be resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import MappingError
from repro.systolic.mapping import WeightStationaryMapping


@dataclass(frozen=True)
class DagEdge:
    """One edge of the unrolled layer DAG.

    Attributes:
        index: edge index i (0-based; 2n = before Read_Weights of
            iteration n, 2n+1 = before Matrix_Multiply of iteration n).
        iteration: the fold iteration this edge belongs to.
        kind: "pre_weights" or "pre_multiply".
    """

    index: int
    iteration: int
    kind: str


@dataclass
class LayerDag:
    """The unrolled instruction DAG of one mapped layer.

    Attributes:
        mapping: the weight-stationary mapping that defined the folds.
        iterations: fold iterations actually represented.  Large layers
            are coarsened: consecutive folds are grouped so the DAG stays
            solvable (the paper similarly fixes prefetch depth rather
            than exhaustively searching).
        folds_per_iteration: coarsening factor (>= 1).
    """

    mapping: WeightStationaryMapping
    iterations: int
    folds_per_iteration: int
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    edges: list[DagEdge] = field(default_factory=list)

    @classmethod
    def from_mapping(cls, mapping: WeightStationaryMapping,
                     max_iterations: int = 64) -> "LayerDag":
        """Unroll (and possibly coarsen) a mapping into its DAG."""
        if max_iterations < 1:
            raise MappingError("need at least one DAG iteration")
        folds = mapping.folds
        group = max(1, -(-folds // max_iterations))  # ceil division
        iterations = -(-folds // group)
        dag = cls(mapping=mapping, iterations=iterations,
                  folds_per_iteration=group)
        prev = None
        for n in range(iterations):
            rw = ("read_weights", n)
            mm = ("matrix_multiply", n)
            dag.graph.add_node(rw)
            dag.graph.add_node(mm)
            dag.edges.append(DagEdge(2 * n, n, "pre_weights"))
            dag.graph.add_edge(rw, mm)
            dag.edges.append(DagEdge(2 * n + 1, n, "pre_multiply"))
            if prev is not None:
                dag.graph.add_edge(prev, rw)
            prev = mm
        return dag

    @property
    def edge_count(self) -> int:
        """Number of DAG edges carrying allocation decisions."""
        return len(self.edges)

    def validate(self) -> None:
        """Check the DAG is a path-shaped acyclic instruction sequence.

        Raises:
            MappingError: if a cycle or disconnection slipped in.
        """
        if not nx.is_directed_acyclic_graph(self.graph):
            raise MappingError("layer DAG has a cycle")
        if self.iterations > 0 and not nx.is_weakly_connected(self.graph):
            raise MappingError("layer DAG is disconnected")
