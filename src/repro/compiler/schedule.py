"""Schedule objects produced by the ILP / greedy compilers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.memobj import MemoryObject
from repro.errors import ScheduleError


@dataclass(frozen=True)
class Placement:
    """Residency of one object on one DAG edge.

    Attributes:
        obj: the memory object.
        edge: DAG edge index.
        location: "H" (SHIFT) or "R" (RANDOM).
        loaded_from: None, "D" (DRAM) or "R" (RANDOM -> SHIFT move) when
            the object is loaded on this edge.
    """

    obj: MemoryObject
    edge: int
    location: str
    loaded_from: str | None = None

    def __post_init__(self) -> None:
        if self.location not in ("H", "R"):
            raise ScheduleError(f"bad location {self.location}")
        if self.loaded_from not in (None, "D", "R"):
            raise ScheduleError(f"bad load source {self.loaded_from}")


@dataclass
class Schedule:
    """A complete allocation/prefetch schedule for one layer DAG.

    Attributes:
        placements: all object-edge placements.
        objective_value: the Eq. 5 objective achieved (seconds saved).
        solver: "ilp" or "greedy".
    """

    placements: list[Placement] = field(default_factory=list)
    objective_value: float = 0.0
    solver: str = "greedy"

    def residency(self, obj_name: str) -> list[Placement]:
        """All placements of one object, in edge order."""
        rows = [p for p in self.placements if p.obj.name == obj_name]
        return sorted(rows, key=lambda p: p.edge)

    def occupancy(self, edge: int, location: str) -> int:
        """Bytes resident in one SPM on one edge."""
        return sum(p.obj.size_bytes for p in self.placements
                   if p.edge == edge and p.location == location)

    def prefetch_distance(self, obj_name: str) -> int:
        """Edges between an object's first residency and its last use."""
        rows = self.residency(obj_name)
        if not rows:
            return 0
        return rows[0].obj.last_edge - rows[0].edge

    def validate(self, shift_capacity: dict[str, int],
                 random_capacity: int) -> None:
        """Check capacity and consistency invariants.

        Args:
            shift_capacity: per-operand SHIFT capacities, keyed by
                operand name (alpha/beta/gamma/delta share gamma's).
            random_capacity: RANDOM array capacity.

        Raises:
            ScheduleError: on any violated invariant.
        """
        edges = {p.edge for p in self.placements}
        for edge in edges:
            if self.occupancy(edge, "R") > random_capacity:
                raise ScheduleError(f"RANDOM over capacity on edge {edge}")
            for operand, cap in shift_capacity.items():
                used = sum(
                    p.obj.size_bytes for p in self.placements
                    if p.edge == edge and p.location == "H"
                    and p.obj.operand == operand
                )
                if used > cap:
                    raise ScheduleError(
                        f"SHIFT({operand}) over capacity on edge {edge}"
                    )
        # residency windows must sit inside lifespans
        for p in self.placements:
            if not (p.obj.first_edge <= p.edge <= p.obj.last_edge):
                raise ScheduleError(
                    f"{p.obj.name} resident outside its lifespan on "
                    f"edge {p.edge}"
                )
        # consistency: resident in H means loaded earlier or on this edge
        for name in {p.obj.name for p in self.placements}:
            rows = self.residency(name)
            previous_location: str | None = None
            for row in rows:
                fresh = row.loaded_from is not None
                contiguous = previous_location == row.location
                if not fresh and not contiguous:
                    raise ScheduleError(
                        f"{name} appears in {row.location} on edge "
                        f"{row.edge} without a load"
                    )
                previous_location = row.location
