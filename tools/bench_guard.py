#!/usr/bin/env python
"""Statistical serving-bench regression guard for CI.

Compares the freshly-benchmarked ``BENCH_serving.json`` against the
committed history and flags every matrix cell whose simulated
requests/s dropped below a noise-adjusted threshold.  Two statistical
upgrades over a naive last-vs-last diff:

- the baseline is the **median of the last N committed points** per
  cell (``--window``, default 5), so one noisy historical point can't
  manufacture or mask a regression;
- the trip threshold is **noise-adjusted**: each cell's relative MAD
  over the baseline window widens the threshold
  (``effective = max(threshold, noise_mult * rel_mad)``), so cells the
  runners measure noisily (tracked swings of 3x on bursty/10k) need a
  proportionally larger drop to trip.

By default the guard only emits GitHub Actions ``::warning``
annotations and exits 0; ``--block`` turns a tripped cell into exit
code 1 for branches that want a hard gate.

Usage:
    python tools/bench_guard.py BASELINE.json FRESH.json \
        [--threshold 0.2] [--window 5] [--noise-mult 3.0] [--block]

Cell labelling (scenario / n_requests / variant) comes from
:mod:`repro.eval.blocks` — the single normalisation point shared with
``repro report``; unlabelled points are rejected there.  The last point of each cell on
the fresh side is compared; cells whose fresh point is identical to
the committed one (the bench did not re-run them) are skipped.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.blocks import AGGREGATORS, load_bench  # noqa: E402

_median = AGGREGATORS["median"]
_mad = AGGREGATORS["mad"]


def by_cell(rows: list[dict]) -> dict[str, list[dict]]:
    """Cell label -> that cell's points, file (= append) order."""
    cells: dict[str, list[dict]] = {}
    for row in rows:
        cells.setdefault(row["cell"], []).append(row)
    return cells


def window_stats(points: list[dict], window: int
                 ) -> tuple[float, float]:
    """(median rps, relative MAD) over the last ``window`` points."""
    tail = [p["rps"] for p in points[-window:]]
    median = _median(tail)
    rel_mad = (_mad(tail) / median) if median else 0.0
    return median, rel_mad


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="last committed BENCH_serving.json")
    parser.add_argument("fresh", type=Path,
                        help="BENCH_serving.json after the bench run")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="minimum fractional rps drop that trips")
    parser.add_argument("--window", type=int, default=5,
                        help="baseline points per cell the median "
                             "looks back over")
    parser.add_argument("--noise-mult", type=float, default=3.0,
                        help="widen the threshold to this many "
                             "relative MADs of the baseline window")
    parser.add_argument("--block", action="store_true",
                        help="exit 1 on a tripped cell instead of "
                             "only annotating")
    args = parser.parse_args(argv)
    if args.window < 1:
        parser.error("--window must be >= 1")

    baseline = by_cell(load_bench(args.baseline))
    fresh = by_cell(load_bench(args.fresh))
    if not baseline:
        print("bench-guard: no baseline points; nothing to compare")
        return 0
    if not fresh:
        print("bench-guard: no fresh points; bench likely did not run")
        return 0

    regressions = 0
    for label, base_points in sorted(baseline.items()):
        fresh_points = fresh.get(label)
        if not fresh_points:
            continue
        fresh_point = fresh_points[-1]
        if fresh_point == base_points[-1]:
            continue  # cell not re-benchmarked on the fresh side
        base_rps, rel_mad = window_stats(base_points, args.window)
        if base_rps <= 0:
            continue
        effective = max(args.threshold, args.noise_mult * rel_mad)
        drop = 1.0 - fresh_point["rps"] / base_rps
        stats = (f"median-of-{min(args.window, len(base_points))} "
                 f"{base_rps:.0f} -> {fresh_point['rps']:.0f} rps")
        if drop > effective:
            regressions += 1
            print(f"::warning title=Serving perf regression::"
                  f"{label}: {stats} ({drop:.0%} drop > "
                  f"{effective:.0%} noise-adjusted threshold"
                  f"{', blocking' if args.block else ', non-blocking'})")
        else:
            print(f"bench-guard: {label}: {stats} ok "
                  f"({-drop:+.0%} vs {effective:.0%} threshold)")
    if not regressions:
        print("bench-guard: no serving-path regressions past the "
              "noise-adjusted thresholds")
    elif args.block:
        print(f"bench-guard: {regressions} blocking regression(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
