#!/usr/bin/env python
"""Serving-bench regression guard for CI.

Compares the freshly-benchmarked ``BENCH_serving.json`` against the
last committed copy and emits a GitHub Actions warning annotation
(``::warning``) for every matrix cell whose simulated requests/s
dropped by more than the threshold (default 20%).  Non-blocking by
design: the exit code is always 0 — machine noise and runner
heterogeneity make a hard gate on wall-clock throughput flaky, but a
surfaced warning on the PR is enough to catch a real hot-path
regression.

Usage:
    python tools/bench_guard.py BASELINE.json FRESH.json [--threshold 0.2]

Points are grouped by their (scenario, n_requests, variant) labels;
points predating PR 4 carry no labels and are treated as the
historical bursty/10k cell, and the ``variant`` label (PR 5) keeps
control-plane cells — the predictive-autoscale ``forecast`` cell and
the persisted-memo ``persist`` cell — from colliding with the plain
cells of the same scenario.  The last point of each group on each
side is compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_points(path: Path) -> list[dict]:
    """The point list in ``path``, or [] when absent/unreadable."""
    try:
        history = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(history, list):
        return []
    return [p for p in history if isinstance(p, dict) and "rps" in p]


def cell_of(point: dict) -> tuple[str, int, str]:
    """(scenario, n_requests, variant) of a point; legacy points
    (pre-label) are the historical bursty/10k cell, and unlabelled
    variants are the plain serving path."""
    scenario = point.get("scenario", "bursty")
    n_requests = point.get("n_requests", point.get("requests", 10_000))
    return (str(scenario), int(n_requests),
            str(point.get("variant", "")))


def label_of(cell: tuple[str, int, str]) -> str:
    scenario, n_requests, variant = cell
    base = f"{scenario}/{n_requests}"
    return f"{base}/{variant}" if variant else base


def latest_per_cell(points: list[dict]
                    ) -> dict[tuple[str, int, str], dict]:
    latest: dict[tuple[str, int, str], dict] = {}
    for point in points:  # file order is append order
        latest[cell_of(point)] = point
    return latest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="last committed BENCH_serving.json")
    parser.add_argument("fresh", type=Path,
                        help="BENCH_serving.json after the bench run")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="fractional rps drop that trips a warning")
    args = parser.parse_args(argv)

    baseline = latest_per_cell(load_points(args.baseline))
    fresh = latest_per_cell(load_points(args.fresh))
    if not baseline:
        print("bench-guard: no baseline points; nothing to compare")
        return 0
    if not fresh:
        print("bench-guard: no fresh points; bench likely did not run")
        return 0

    regressions = 0
    for cell, base_point in sorted(baseline.items()):
        fresh_point = fresh.get(cell)
        if fresh_point is None or fresh_point is base_point:
            continue
        base_rps, fresh_rps = base_point["rps"], fresh_point["rps"]
        if base_rps <= 0:
            continue
        drop = 1.0 - fresh_rps / base_rps
        label = label_of(cell)
        if drop > args.threshold:
            regressions += 1
            print(f"::warning title=Serving perf regression::"
                  f"{label}: {base_rps:.0f} -> {fresh_rps:.0f} rps "
                  f"({drop:.0%} drop > {args.threshold:.0%} threshold, "
                  f"non-blocking)")
        else:
            print(f"bench-guard: {label}: {base_rps:.0f} -> "
                  f"{fresh_rps:.0f} rps ok ({-drop:+.0%})")
    if not regressions:
        print("bench-guard: no serving-path regressions past the "
              f"{args.threshold:.0%} threshold")
    return 0  # never blocks: the annotation is the signal


if __name__ == "__main__":
    sys.exit(main())
