"""Sec 4.3: ILP compiler solve behaviour and solution quality."""

from conftest import show

from repro.compiler import GreedyCompiler, IlpCompiler, LayerDag
from repro.models import get_model
from repro.systolic.mapping import WeightStationaryMapping


def _compile_alexnet():
    rows = []
    net = get_model("AlexNet")
    for layer in net.compute_layers():
        mapping = WeightStationaryMapping(layer, 64, 256)
        dag = LayerDag.from_mapping(mapping, max_iterations=12)
        ilp = IlpCompiler().compile(dag)
        greedy = GreedyCompiler().compile(dag)
        rows.append({
            "layer": layer.name,
            "variables": ilp.variables,
            "ilp_saved_us": ilp.schedule.objective_value * 1e6,
            "greedy_saved_us": greedy.objective_value * 1e6,
        })
    return rows


def test_ilp_compiler(benchmark):
    rows = benchmark.pedantic(_compile_alexnet, iterations=1, rounds=1)
    show("ILP compiler: AlexNet allocation/prefetch schedules", rows)
    for row in rows:
        # the exact solver matches or beats greedy (within the greedy's
        # capacity-overdraft slack)
        assert row["ilp_saved_us"] >= 0.99 * row["greedy_saved_us"]
