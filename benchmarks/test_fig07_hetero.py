"""Fig 7: heterogeneous SPM latency (hSRAM/hMRAM/hSNM/hVTM/hVTM+p)."""

from conftest import show

from repro.eval import fig7_heterogeneous


def test_fig7(benchmark):
    rows = benchmark(fig7_heterogeneous)
    show("Fig 7: heterogeneous SPM latency on AlexNet (norm. to SHIFT)",
         rows)
    by_name = {r["spm"]: r["norm_latency"] for r in rows}
    # paper: hSRAM 3.36x / hMRAM 2.59x / hSNM 2.38x worse; hVTM -70%;
    # prefetching (hVTM+p) a further -64%
    assert by_name["hSRAM"] > 2.0
    assert by_name["hMRAM"] > 1.0
    assert by_name["hVTM"] < 1.0
    assert by_name["hVTM+p"] < by_name["hVTM"]
