"""Fig 16: SHIFT bank vs RANDOM array access energy."""

from conftest import show

from repro.eval import fig16_access_energy


def test_fig16(benchmark):
    rows = benchmark(fig16_access_energy)
    show("Fig 16: per-access energy", rows)
    by_name = {r["array"]: r["access_energy_pj"] for r in rows}
    # paper: SMART's tiny lanes cut access energy by ~99% vs SuperNPU
    # banks; the RANDOM array costs about half a 96 KB bank access
    assert by_name["128B-SHIFT"] < 0.01 * by_name["96KB-SHIFT"]
    assert by_name["RANDOM"] < by_name["96KB-SHIFT"]
    assert by_name["384KB-SHIFT"] > by_name["96KB-SHIFT"]
