"""Fig 18: single-image speedup of all schemes (normalised to TPU)."""

from conftest import show

from repro.eval import fig18_single_speedup, geomean


def test_fig18(benchmark):
    rows = benchmark.pedantic(fig18_single_speedup, iterations=1, rounds=1)
    show("Fig 18: single-image speedup (norm. to TPU)", rows)
    g = {s: geomean([r[s] for r in rows])
         for s in ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")}
    print(f"gmeans: {g}")
    print(f"SMART vs SuperNPU: {g['SMART'] / g['SHIFT']:.2f}x "
          f"(paper: 3.9x)")
    # paper: SuperNPU ~8.6x TPU; SMART ~3.9x SuperNPU; SRAM/Heter lose
    assert 5.0 < g["SHIFT"] < 15.0
    assert 2.5 < g["SMART"] / g["SHIFT"] < 5.0
    assert g["SRAM"] < g["SHIFT"] and g["Heter"] < g["SHIFT"]
