"""Sec 4.4: SMART design overhead audit."""

from conftest import show

from repro.core import PipelinedCmosSfqArray, SmartSpm
from repro.units import to_ns


def _overhead():
    array = PipelinedCmosSfqArray()
    spm = SmartSpm()
    return {
        "pipeline_ghz": array.pipeline_frequency / 1e9,
        "byte_interval_ns": to_ns(array.byte_interval),
        "access_latency_ns": to_ns(array.access_latency),
        "leakage_mw": array.leakage_power * 1e3,
        "spm_area_mm2": spm.area * 1e6,
    }


def test_sec44(benchmark):
    row = benchmark(_overhead)
    show("Sec 4.4: SMART design overhead", [row])
    # paper: 9.7 GHz pipeline, ~0.11 ns per access, ~102 mW leakage
    assert abs(row["pipeline_ghz"] - 9.7) < 0.15
    assert 0.09 < row["byte_interval_ns"] < 0.12
    assert 50 < row["leakage_mw"] < 250
