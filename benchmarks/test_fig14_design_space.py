"""Fig 14: pipelined CMOS-SFQ array design-space exploration."""

from conftest import show

from repro.eval import fig14_design_space


def test_fig14(benchmark):
    rows = benchmark(fig14_design_space)
    show("Fig 14: pipeline design space", rows)
    # frequency ceiling is the nTron stage (~9.7 GHz); costs rise with
    # frequency
    assert abs(rows[-1]["frequency_ghz"] - 9.707) < 0.1
    assert rows[-1]["leakage_mw"] >= rows[0]["leakage_mw"]
    assert rows[-1]["subbank_mats"] >= rows[0]["subbank_mats"]
