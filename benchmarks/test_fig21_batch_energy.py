"""Fig 21: batch inference energy (normalised to TPU)."""

from conftest import show

from repro.eval import fig21_batch_energy, geomean


def test_fig21(benchmark):
    rows = benchmark.pedantic(fig21_batch_energy, iterations=1, rounds=1)
    show("Fig 21: batch energy (norm. to TPU)", rows)
    g = {s: geomean([r[s] for r in rows]) for s in ("SHIFT", "SMART")}
    reduction = 1.0 - g["SMART"] / g["SHIFT"]
    print(f"SMART batch energy cut vs SuperNPU: {reduction:.0%} "
          f"(paper: 71%)")
    assert reduction > 0.4
