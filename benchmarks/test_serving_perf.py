"""Serving-path performance smoke: event-engine throughput trajectory.

Not a paper figure.  Each run appends one trajectory point per matrix
cell (simulated requests per wall-second through the discrete-event
engine) to ``BENCH_serving.json`` at the repo root, so future PRs can
see when a change slows the serving hot path down.  The CI
figure-smoke job feeds the fresh points to ``tools/bench_guard.py``,
which warns (non-blocking) on a >20% throughput drop against the last
committed point of the same cell.

The matrix covers 10k- and 100k-request traces on the bursty and
diurnal scenarios; every point carries ``scenario`` / ``n_requests``
labels (the committed history is fully migrated to the labelled
schema; the loader rejects unlabelled points).  ``rps`` measures the *steady-state* hot path —
a warm-up round populates the layer memo first, because cold layer
simulations are a one-time O(distinct layer x batch) cost amortised
across any sweep — while ``cold_rps`` records the same trace served
with that cost still in line.

Four control-plane cells ride along with a ``variant`` label (so
``tools/bench_guard.py`` tracks them separately): ``forecast`` runs
the diurnal/10k trace under predictive (Holt) autoscaling,
``persist`` measures the cold-start path with the layer memo warmed
from the persisted cross-run totals pool, ``sharded`` is the
scale-out headline — one million requests streamed through
``ShardedEngine`` worker processes, recording aggregate simulated
requests per wall-second — and ``geo/<policy>`` runs the
geo-distributed tier (per-region engines behind a ``GeoRouter`` over
the ring interconnect), so routing-scan or interconnect slowdowns
surface in their own cell.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import show

from repro.runtime import ResultCache
from repro.serving import (
    ForecastScalePolicy,
    LayerMemoCache,
    ServingSimulator,
    ShardedEngine,
    SloPolicy,
    generate_trace,
    get_scenario,
    load_persistent_memo,
    make_policy,
    store_persistent_memo,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: (scenario, trace length) cells the trajectory tracks.  The
#: bursty/10k cell is the historical one every PR has recorded.
MATRIX = [
    ("bursty", 10_000),
    ("bursty", 100_000),
    ("diurnal", 10_000),
    ("diurnal", 100_000),
]


def append_point(point: dict) -> None:
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(point)
    BENCH_PATH.write_text(json.dumps(history, indent=1) + "\n")


@pytest.mark.parametrize("scenario_name,n_requests", MATRIX)
def test_bench_serving_event_engine(benchmark, scenario_name, n_requests):
    scenario = get_scenario(scenario_name)
    simulator = ServingSimulator("SMART", replicas=2,
                                 policy=make_policy("timeout"),
                                 dispatch="least_loaded")
    rate = scenario.load * simulator.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n_requests, seed=7)

    walls = []

    def timed():
        started = time.perf_counter()
        outcome = simulator.run(trace, scenario=scenario.name, rate=rate)
        walls.append(time.perf_counter() - started)
        return outcome

    result = benchmark.pedantic(timed, iterations=1, rounds=1,
                                warmup_rounds=1)
    cold_wall, wall = walls[0], walls[-1]

    point = {
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "rps": round(n_requests / wall, 1),
        "batches": len(result.batches),
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": scenario_name,
        "n_requests": n_requests,
        "cold_wall_s": round(cold_wall, 4),
        "cold_rps": round(n_requests / cold_wall, 1),
    }
    append_point(point)

    show(f"BENCH_serving: {scenario_name}/{n_requests} trajectory point",
         [point])
    assert len(result.latencies) == n_requests
    assert point["rps"] > 0


def test_bench_forecast_autoscale_cell(benchmark):
    """The predictive-autoscale cell: diurnal/10k under Holt forecast
    scaling with an SLO — the control plane (rate tracking, forecast
    updates, scale actions) rides the hot path here, so a slowdown in
    the policy seam shows up in this cell's rps."""
    n_requests = 10_000
    scenario = get_scenario("diurnal")
    simulator = ServingSimulator(
        "SMART", replicas=1, policy=make_policy("timeout"),
        dispatch="least_loaded", slo=SloPolicy(target=2000e-6),
        autoscale=ForecastScalePolicy(min_replicas=1, max_replicas=6,
                                      mode="holt",
                                      target_utilization=0.6))
    rate = scenario.load * simulator.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n_requests, seed=7)

    walls = []

    def timed():
        started = time.perf_counter()
        outcome = simulator.run(trace, scenario=scenario.name,
                                rate=rate)
        walls.append(time.perf_counter() - started)
        return outcome

    result = benchmark.pedantic(timed, iterations=1, rounds=1,
                                warmup_rounds=1)
    cold_wall, wall = walls[0], walls[-1]
    point = {
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "rps": round(n_requests / wall, 1),
        "batches": len(result.batches),
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "diurnal",
        "n_requests": n_requests,
        "variant": "forecast",
        "cold_wall_s": round(cold_wall, 4),
        "cold_rps": round(n_requests / cold_wall, 1),
        "slo_attain": round(result.slo_attainment, 4),
        "replicas_peak": result.peak_replicas,
    }
    append_point(point)
    show("BENCH_serving: diurnal/10000/forecast trajectory point",
         [point])
    assert result.peak_replicas > 1  # the forecaster really scaled
    assert point["rps"] > 0


def test_bench_persisted_memo_cold_start(tmp_path):
    """The persisted-memo cell: cold-start throughput with the layer
    memo warmed from the cross-run totals pool vs a plain cold start
    on the tracked bursty/10k trace.  ``rps`` is the persisted-warm
    cold start (what the guard tracks); ``cold_rps`` the unpersisted
    one; ``warm_speedup`` their ratio — the cold-start headroom the
    ROADMAP called out, now lifted."""
    n_requests = 10_000
    scenario = get_scenario("bursty")
    store = ResultCache(cache_dir=tmp_path)

    def run_once(cache):
        simulator = ServingSimulator("SMART", replicas=2,
                                     policy=make_policy("timeout"),
                                     dispatch="least_loaded",
                                     cache=cache)
        rate = scenario.load * simulator.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, n_requests, seed=7)
        started = time.perf_counter()
        result = simulator.run(trace, scenario=scenario.name,
                               rate=rate)
        return result, time.perf_counter() - started

    cold_cache = LayerMemoCache()
    cold_result, cold_wall = run_once(cold_cache)
    store_persistent_memo(cold_cache, store)

    warm_cache = LayerMemoCache()
    load_persistent_memo(warm_cache, store)
    warm_result, warm_wall = run_once(warm_cache)

    assert warm_result.latencies == cold_result.latencies
    assert warm_cache.stats.misses == 0  # not one layer simulated

    point = {
        "requests": n_requests,
        "wall_s": round(warm_wall, 4),
        "rps": round(n_requests / warm_wall, 1),
        "batches": len(warm_result.batches),
        "cache_hit_rate": round(warm_result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "bursty",
        "n_requests": n_requests,
        "variant": "persist",
        "cold_wall_s": round(cold_wall, 4),
        "cold_rps": round(n_requests / cold_wall, 1),
        "warm_speedup": round(cold_wall / warm_wall, 2),
    }
    append_point(point)
    show("BENCH_serving: bursty/10000/persist cold-vs-warm delta",
         [point])
    assert point["rps"] > point["cold_rps"]  # persistence really helps


def test_bench_serving_geo():
    """The geo cell: a four-region fleet (mixed SMART / SNN / AQFP
    backends) under follow-the-sun routing on the ring interconnect.
    ``rps`` is aggregate simulated requests per wall-second through
    the full geo path — routing scan, NETWORK delivery queue and
    per-region engines — so a slowdown in any geo layer lands in the
    ``geo/follow_sun`` cell without touching the plain cells."""
    from repro.serving import GeoRouter

    n_requests = 100_000
    router = GeoRouter(4, topology="ring", geo="follow_sun",
                       policy="timeout", batch_size=8)
    result = router.run_scenario("diurnal", n_requests, seed=7)

    point = {
        "requests": result.requests,
        "wall_s": round(result.wall_s, 4),
        "rps": round(result.simulated_rps, 1),
        "batches": result.batches,
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "diurnal",
        "n_requests": n_requests,
        "variant": "geo/follow_sun",
        "regions": len(result.regions),
        "replicas": result.replicas,
        "remote_frac": round(result.remote_frac, 4),
        "throughput_rps": round(result.throughput_rps, 1),
        "p95_us": round(result.latency_percentile(95) * 1e6, 1),
    }
    append_point(point)
    show(f"BENCH_serving: diurnal/{n_requests}/geo/follow_sun "
         f"trajectory point", [point])
    assert result.requests == n_requests  # nothing lost or duplicated
    assert point["rps"] > 0


def test_bench_serving_failure_retry():
    """The resilience cell: 100k requests through the failure-storm
    scenario with deadline-timeout retries armed (``failure/100000/
    retry``).  ``rps`` covers the full resilience hot path — deadline
    arming, TIMEOUT events, backoff scheduling, duplicate dispatch and
    cancellation — so a slowdown in the PR 9 event handlers lands in
    its own cell without touching the ``none``-path cells (those stay
    covered by the stock matrix, which the zero-drift suite holds
    bit-identical)."""
    n_requests = 100_000
    scenario = get_scenario("failure-storm")
    simulator = ServingSimulator(
        "SMART", replicas=6, policy=make_policy("timeout"),
        dispatch="shard", slo=SloPolicy(target=3000e-6),
        resilience="retry:timeout_us=30000,budget=1")
    rate = scenario.load * simulator.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n_requests, seed=7)

    started = time.perf_counter()
    result = simulator.run_scenario(scenario, n_requests, seed=7)
    wall = time.perf_counter() - started

    point = {
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "rps": round(n_requests / wall, 1),
        "batches": len(result.batches),
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "failure",
        "n_requests": n_requests,
        "variant": "retry",
        "replicas": 6,
        "timeouts": result.timeouts,
        "retries": result.retries,
        "slo_attain": round(result.slo_attainment, 4),
        "p95_us": round(result.latency_percentile(95) * 1e6, 1),
    }
    append_point(point)
    show(f"BENCH_serving: failure/{n_requests}/retry trajectory point",
         [point])
    assert len(trace) == n_requests
    assert result.retries > 0  # the resilience path genuinely ran
    assert point["rps"] > 0


def test_bench_serving_scale_sharded():
    """The scale-out cells: one million requests, streamed and sharded
    across worker processes in a single ``ShardedEngine`` run.  ``rps``
    is *aggregate* simulated requests per wall-second — the headline
    the ROADMAP's million-request scale-out item asked for — so it
    scales with the worker pool where the monolithic cells cannot.

    Two variants land: ``sharded`` keeps the historical cold
    trajectory (every worker simulates its own layer totals), and
    ``sharded/warm`` serves the same trace from a parent-prewarmed
    memo snapshot broadcast to the pool — exactness is asserted
    (identical request count and total energy, zero warm-worker layer
    simulations); the speedup is *recorded*, not asserted, because at
    this trace length the memo fill is a tiny fraction of the wall
    time and the honest ratio hovers near 1."""
    n_requests = 1_000_000
    shards = max(2, min(8, os.cpu_count() or 2))

    def run(prewarm):
        engine = ShardedEngine(shards, replicas=shards,
                               policy="timeout", batch_size=8,
                               prewarm=prewarm)
        return engine.run_scenario("steady", n_requests, seed=7)

    cold = run(False)
    point = {
        "requests": cold.requests,
        "wall_s": round(cold.wall_s, 4),
        "rps": round(cold.simulated_rps, 1),
        "batches": cold.batches,
        "cache_hit_rate": round(cold.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "steady",
        "n_requests": n_requests,
        "variant": "sharded",
        "shards": shards,
        "replicas": shards,
        "throughput_rps": round(cold.throughput_rps, 1),
        "p95_us": round(cold.latency_percentile(95) * 1e6, 1),
    }
    append_point(point)
    show(f"BENCH_serving: steady/{n_requests}/sharded trajectory point",
         [point])

    warm = run(True)
    warm_point = {
        "requests": warm.requests,
        "wall_s": round(warm.wall_s, 4),
        "rps": round(warm.simulated_rps, 1),
        "batches": warm.batches,
        "cache_hit_rate": round(warm.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": "steady",
        "n_requests": n_requests,
        "variant": "sharded/warm",
        "shards": shards,
        "replicas": shards,
        "memo_seeded": warm.cache.seeded,
        "warm_hits": warm.cache.seed_hits,
        "cold_rps": point["rps"],
        "warm_speedup": round(warm.simulated_rps
                              / cold.simulated_rps, 3),
        "throughput_rps": round(warm.throughput_rps, 1),
        "p95_us": round(warm.latency_percentile(95) * 1e6, 1),
    }
    append_point(warm_point)
    show(f"BENCH_serving: steady/{n_requests}/sharded/warm trajectory "
         f"point", [warm_point])

    assert cold.requests == n_requests  # nothing lost or duplicated
    assert warm.requests == n_requests
    assert warm.energy == cold.energy  # prewarm changed no physics
    assert warm.batches == cold.batches
    assert warm.cache.seeded > 0
    assert warm.cache.misses == 0  # workers never simulated a layer
    assert cold.cache.misses > 0  # the cold run genuinely was cold
    assert point["rps"] > 0 and warm_point["rps"] > 0
