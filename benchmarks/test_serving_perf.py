"""Serving-path performance smoke: event-engine throughput trajectory.

Not a paper figure.  Each run appends one trajectory point per matrix
cell (simulated requests per wall-second through the discrete-event
engine) to ``BENCH_serving.json`` at the repo root, so future PRs can
see when a change slows the serving hot path down.  The CI
figure-smoke job feeds the fresh points to ``tools/bench_guard.py``,
which warns (non-blocking) on a >20% throughput drop against the last
committed point of the same cell.

The matrix covers 10k- and 100k-request traces on the bursty and
diurnal scenarios; every point carries ``scenario`` / ``n_requests``
labels (points older than PR 4 predate the labels and are implicitly
the bursty/10k cell).  ``rps`` measures the *steady-state* hot path —
a warm-up round populates the layer memo first, because cold layer
simulations are a one-time O(distinct layer x batch) cost amortised
across any sweep — while ``cold_rps`` records the same trace served
with that cost still in line.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import show

from repro.serving import (
    ServingSimulator,
    generate_trace,
    get_scenario,
    make_policy,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: (scenario, trace length) cells the trajectory tracks.  The
#: bursty/10k cell is the historical one every PR has recorded.
MATRIX = [
    ("bursty", 10_000),
    ("bursty", 100_000),
    ("diurnal", 10_000),
    ("diurnal", 100_000),
]


def append_point(point: dict) -> None:
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(point)
    BENCH_PATH.write_text(json.dumps(history, indent=1) + "\n")


@pytest.mark.parametrize("scenario_name,n_requests", MATRIX)
def test_bench_serving_event_engine(benchmark, scenario_name, n_requests):
    scenario = get_scenario(scenario_name)
    simulator = ServingSimulator("SMART", replicas=2,
                                 policy=make_policy("timeout"),
                                 dispatch="least_loaded")
    rate = scenario.load * simulator.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n_requests, seed=7)

    walls = []

    def timed():
        started = time.perf_counter()
        outcome = simulator.run(trace, scenario=scenario.name, rate=rate)
        walls.append(time.perf_counter() - started)
        return outcome

    result = benchmark.pedantic(timed, iterations=1, rounds=1,
                                warmup_rounds=1)
    cold_wall, wall = walls[0], walls[-1]

    point = {
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "rps": round(n_requests / wall, 1),
        "batches": len(result.batches),
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
        "scenario": scenario_name,
        "n_requests": n_requests,
        "cold_wall_s": round(cold_wall, 4),
        "cold_rps": round(n_requests / cold_wall, 1),
    }
    append_point(point)

    show(f"BENCH_serving: {scenario_name}/{n_requests} trajectory point",
         [point])
    assert len(result.latencies) == n_requests
    assert point["rps"] > 0
