"""Serving-path performance smoke: event-engine throughput trajectory.

Not a paper figure.  Each run appends one trajectory point (simulated
requests per wall-second of a 10k-request trace through the
discrete-event engine) to ``BENCH_serving.json`` at the repo root, so
future PRs can see when a change slows the serving hot path down.
"""

import json
import time
from pathlib import Path

from conftest import show

from repro.serving import (
    ServingSimulator,
    generate_trace,
    get_scenario,
    make_policy,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
N_REQUESTS = 10_000


def test_bench_serving_event_engine(benchmark):
    scenario = get_scenario("bursty")
    simulator = ServingSimulator("SMART", replicas=2,
                                 policy=make_policy("timeout"),
                                 dispatch="least_loaded")
    rate = scenario.load * simulator.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, N_REQUESTS, seed=7)

    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: simulator.run(trace, scenario=scenario.name, rate=rate),
        iterations=1, rounds=1,
    )
    wall = time.perf_counter() - started

    point = {
        "requests": N_REQUESTS,
        "wall_s": round(wall, 4),
        "rps": round(N_REQUESTS / wall, 1),
        "batches": len(result.batches),
        "cache_hit_rate": round(result.cache.hit_rate, 4),
        "created": time.time(),
    }
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(point)
    BENCH_PATH.write_text(json.dumps(history, indent=1) + "\n")

    show("BENCH_serving: event-engine trajectory point", [point])
    assert len(result.latencies) == N_REQUESTS
    assert point["rps"] > 0
