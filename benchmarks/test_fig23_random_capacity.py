"""Fig 23: sensitivity to RANDOM array capacity (14-112 MB)."""

from conftest import show

from repro.eval import fig23_random_capacity


def test_fig23(benchmark):
    rows = benchmark.pedantic(fig23_random_capacity, iterations=1,
                              rounds=1)
    show("Fig 23: RANDOM capacity sensitivity (speedup vs SuperNPU)",
         rows)
    by_mb = {r["setting"]: r for r in rows}
    # paper: beyond 28 MB single-image throughput is flat; batch gains;
    # a smaller array hurts both
    assert by_mb[14]["batch_speedup"] <= by_mb[28]["batch_speedup"] * 1.001
    single_gain = (by_mb[112]["single_speedup"]
                   / by_mb[28]["single_speedup"])
    assert single_gain < 1.2
    assert by_mb[112]["batch_speedup"] >= by_mb[28]["batch_speedup"]
