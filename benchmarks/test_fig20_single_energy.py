"""Fig 20: single-image inference energy (normalised to TPU)."""

from conftest import show

from repro.eval import fig20_single_energy, geomean


def test_fig20(benchmark):
    rows = benchmark.pedantic(fig20_single_energy, iterations=1, rounds=1)
    show("Fig 20: single-image energy (norm. to TPU)", rows)
    g = {s: geomean([r[s] for r in rows])
         for s in ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")}
    reduction = 1.0 - g["SMART"] / g["SHIFT"]
    print(f"SMART energy cut vs SuperNPU: {reduction:.0%} (paper: 86%)")
    # paper: SMART -86% vs SuperNPU; SRAM/Heter increase energy;
    # Pipe already captures most of the saving (-81%)
    assert reduction > 0.5
    assert g["SRAM"] > g["SHIFT"]
    assert g["Pipe"] < g["SHIFT"]
