"""Fig 9: CMOS H-tree latency/energy share of a 28 MB array."""

from conftest import show

from repro.eval import fig9_htree_breakdown


def test_fig9(benchmark):
    row = benchmark(fig9_htree_breakdown)
    show("Fig 9: 28 MB Josephson-CMOS array breakdown", [row])
    # paper: H-tree 84% of latency, 49% of energy; total in the
    # Table 1 SRAM band
    assert row["htree_latency_share"] > 0.7
    assert row["htree_energy_share"] > 0.4
    assert 2.0 < row["total_latency_ns"] < 6.0
