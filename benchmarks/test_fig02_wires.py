"""Fig 2: PTL vs JTL vs CMOS wire latency/energy vs length."""

from conftest import show

from repro.eval import fig2_wires


def test_fig2_wires(benchmark):
    rows = benchmark(fig2_wires)
    show("Fig 2: wire latency (ps) and energy (J) vs length", rows)
    last = rows[-1]
    assert last["cmos_ps"] > 10 * last["ptl_ps"]
    assert last["cmos_j"] > 1e3 * last["ptl_j"]
    assert last["jtl_j"] > 50 * last["ptl_j"]
