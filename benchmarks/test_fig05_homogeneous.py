"""Fig 5: SuperNPU with homogeneous SPMs of each cryogenic technology."""

from conftest import show

from repro.eval import fig5_homogeneous


def test_fig5(benchmark):
    rows = benchmark(fig5_homogeneous)
    show("Fig 5: homogeneous SPM latency on AlexNet (norm. to SHIFT)",
         rows)
    by_name = {r["spm"]: r["norm_latency"] for r in rows}
    # paper: write-slow technologies prolong latency >= 5x; VTM is the
    # only near-competitive one; an ideal 0.02 ns array wins outright
    assert by_name["SRAM"] > 5.0
    assert by_name["VTM"] < 1.3
    assert by_name["ideal-0.02ns"] < by_name["VTM"]
