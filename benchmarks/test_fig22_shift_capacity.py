"""Fig 22: sensitivity to SHIFT array capacity (16-128 KB)."""

from conftest import show

from repro.eval import fig22_shift_capacity


def test_fig22(benchmark):
    rows = benchmark.pedantic(fig22_shift_capacity, iterations=1, rounds=1)
    show("Fig 22: SHIFT capacity sensitivity (speedup vs SuperNPU)", rows)
    by_kb = {r["setting"]: r for r in rows}
    # paper: larger than 32 KB barely helps; 16 KB hurts
    assert by_kb[16]["batch_speedup"] <= by_kb[32]["batch_speedup"] * 1.01
    gain_64 = by_kb[64]["batch_speedup"] / by_kb[32]["batch_speedup"]
    assert gain_64 < 1.3
