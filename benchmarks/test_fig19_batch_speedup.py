"""Fig 19: batch-inference speedup of all schemes (normalised to TPU)."""

from conftest import show

from repro.eval import fig19_batch_speedup, geomean


def test_fig19(benchmark):
    rows = benchmark.pedantic(fig19_batch_speedup, iterations=1, rounds=1)
    show("Fig 19: batch speedup (norm. to TPU)", rows)
    g = {s: geomean([r[s] for r in rows])
         for s in ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")}
    print(f"SMART vs SuperNPU (batch): {g['SMART'] / g['SHIFT']:.2f}x "
          f"(paper: 2.2x)")
    assert 1.5 < g["SMART"] / g["SHIFT"] < 3.0
