"""Fig 12: 4 K CMOS sub-bank model vs fabricated chip data."""

from conftest import show

from repro.eval import fig12_subbank_validation


def test_fig12(benchmark):
    rows = benchmark(fig12_subbank_validation)
    show("Fig 12: sub-bank model vs 0.18um 4K chip", rows)
    for row in rows:
        # paper: model conservative by 3-8% (latency) / 8-12% (energy)
        assert 0.0 <= row["latency_err"] <= 0.20
        assert 0.0 <= row["energy_err"] <= 0.25
