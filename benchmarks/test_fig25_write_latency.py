"""Fig 25: sensitivity to the RANDOM array write latency."""

from conftest import show

from repro.eval import fig25_write_latency


def test_fig25(benchmark):
    rows = benchmark.pedantic(fig25_write_latency, iterations=1, rounds=1)
    show("Fig 25: write latency sensitivity (speedup vs SuperNPU)", rows)
    by_ns = {r["setting"]: r for r in rows}
    # paper: MRAM/SNM-class writes (2-3 ns) collapse the advantage,
    # since each layer's outputs are the next layer's inputs
    assert by_ns[2.0]["single_speedup"] < 0.6 * by_ns[0.11][
        "single_speedup"]
    assert by_ns[3.0]["single_speedup"] < by_ns[2.0]["single_speedup"]
