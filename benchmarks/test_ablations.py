"""Ablations of the design choices DESIGN.md calls out.

Each ablation removes one mechanism from SMART and measures what it was
worth on the AlexNet single-image run:

- **wide access lines**: the array serves 16 B lines instead of the
  128 B bank lines the bulk moves are coalesced into;
- **prefetch hiding**: a = 1 (the Pipe configuration);
- **the RANDOM array itself**: fall all the way back to SuperNPU.
"""

from conftest import show

from repro.core import make_accelerator, make_smart
from repro.models import get_model
from repro.systolic.memsys import HeterogeneousSpm, MemorySystem, DramModel
from repro.systolic.simulator import AcceleratorModel


def _smart_with(line_bytes: int) -> AcceleratorModel:
    """SMART with the RANDOM array's access line narrowed."""
    base = make_smart()
    hetero = base.memsys.hetero
    hetero = HeterogeneousSpm(
        input_shift=hetero.input_shift,
        weight_shift=hetero.weight_shift,
        output_shift=hetero.output_shift,
        random=hetero.random.with_line(line_bytes),
        prefetch_depth=hetero.prefetch_depth,
        burst_line_bytes=line_bytes,
    )
    memsys = MemorySystem(
        scheme="heterogeneous", dram=DramModel(),
        total_capacity=base.memsys.total_capacity, hetero=hetero,
    )
    return AcceleratorModel(name="SMART-ablated", rows=base.rows,
                            cols=base.cols, frequency=base.frequency,
                            memsys=memsys)


def _ablate():
    net = get_model("AlexNet")
    full = make_smart().simulate(net, 1).latency
    rows = [{"config": "SMART (full)", "latency_us": full * 1e6,
             "slowdown": 1.0}]
    no_burst = _smart_with(line_bytes=16).simulate(net, 1).latency
    rows.append({"config": "- wide access lines (16B lines)",
                 "latency_us": no_burst * 1e6,
                 "slowdown": no_burst / full})
    no_prefetch = make_accelerator("Pipe").simulate(net, 1).latency
    rows.append({"config": "- ILP prefetching (Pipe)",
                 "latency_us": no_prefetch * 1e6,
                 "slowdown": no_prefetch / full})
    supernpu = make_accelerator("SHIFT").simulate(net, 1).latency
    rows.append({"config": "- RANDOM array entirely (SuperNPU)",
                 "latency_us": supernpu * 1e6,
                 "slowdown": supernpu / full})
    return rows


def test_ablations(benchmark):
    rows = benchmark.pedantic(_ablate, iterations=1, rounds=1)
    show("Ablations: what each SMART mechanism is worth (AlexNet)", rows)
    by_config = {r["config"]: r["slowdown"] for r in rows}
    # every ablation must cost something, and no single mechanism is
    # worth more than the RANDOM array itself
    assert by_config["- wide access lines (16B lines)"] > 1.0
    assert by_config["- ILP prefetching (Pipe)"] > 1.0
    assert (by_config["- RANDOM array entirely (SuperNPU)"]
            >= by_config["- ILP prefetching (Pipe)"])
