"""Fig 24: sensitivity to the ILP prefetch lookahead a."""

from conftest import show

from repro.eval import fig24_prefetch_depth


def test_fig24(benchmark):
    rows = benchmark.pedantic(fig24_prefetch_depth, iterations=1,
                              rounds=1)
    show("Fig 24: prefetch depth sensitivity (speedup vs SuperNPU)",
         rows)
    by_a = {r["setting"]: r for r in rows}
    # paper: a=1 (no prefetch) substantially slower; a>3 plateaus
    assert by_a[1]["single_speedup"] < by_a[3]["single_speedup"]
    plateau = by_a[5]["single_speedup"] / by_a[4]["single_speedup"]
    assert plateau < 1.10
