"""Fig 17: SPM area breakdown, SuperNPU vs SMART."""

from conftest import show

from repro.eval import fig17_area_breakdown


def test_fig17(benchmark):
    rows = benchmark(fig17_area_breakdown)
    show("Fig 17: SPM area (28nm-scaled JJs)", rows)
    ratio = rows[2]["spm_area_mm2"]  # SMART / SuperNPU
    # the paper reports +3% at chip level (matrix unit included); at
    # SPM level the CMOS cells trade against 41% less capacity — we
    # assert the SPM complexes stay within an order of magnitude
    assert 0.5 < ratio < 10.0
