"""Table 2: SFQ H-tree component latency and power."""

from conftest import show

from repro.eval import tab2_components


def test_tab2(benchmark):
    rows = benchmark(tab2_components)
    show("Table 2: SFQ H-tree components", rows)
    ntron = next(r for r in rows if r["component"] == "ntron")
    assert abs(ntron["latency_ps"] - 103.02) < 0.01
