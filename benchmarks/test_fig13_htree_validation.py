"""Fig 13: SFQ H-tree analytical model vs transient circuit simulation."""

from conftest import show

from repro.eval import fig13_htree_validation


def test_fig13(benchmark):
    rows = benchmark.pedantic(
        fig13_htree_validation,
        kwargs={"lengths_mm": (0.1, 0.4, 0.8)},
        iterations=1, rounds=1,
    )
    show("Fig 13: splitter-unit latency, model vs transient sim", rows)
    for row in rows:
        # the transient path tracks the analytical delay within ~2x
        # (the Table 2 cell constants are conservative vs our tuned
        # device library; the slope vs length is what must agree)
        assert 0.3 < row["spice_ps"] / row["analytic_ps"] < 2.0
    slope_spice = (rows[-1]["spice_ps"] - rows[0]["spice_ps"]) / 0.7
    slope_model = (rows[-1]["analytic_ps"] - rows[0]["analytic_ps"]) / 0.7
    assert abs(slope_spice / slope_model - 1.0) < 0.35
