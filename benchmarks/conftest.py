"""Shared helpers for the per-figure benchmark harness."""

from __future__ import annotations

from repro.eval.report import format_table


def show(title: str, rows: list[dict]) -> None:
    """Print one reproduced table/figure as rows, like the paper's."""
    if not rows:
        print(f"\n== {title}: no rows ==")
        return
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    print(f"\n== {title} ==")
    print(format_table(headers, body))
