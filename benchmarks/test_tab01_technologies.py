"""Table 1: cryogenic memory technology comparison."""

from conftest import show

from repro.eval import tab1_technologies


def test_tab1(benchmark):
    rows = benchmark(tab1_technologies)
    show("Table 1: cryogenic memory technologies", rows)
    by_name = {r["name"]: r for r in rows}
    assert by_name["SHIFT"]["read_ns"] == 0.02
    assert by_name["MRAM"]["write_ns"] == 2.0
    assert by_name["SNM"]["destructive"]
