"""Fig 6: run/jump structure of SuperNPU memory accesses."""

from conftest import show

from repro.eval import fig6_trace_structure


def test_fig6(benchmark):
    stats = benchmark(fig6_trace_structure)
    rows = [{"operand": k, **v} for k, v in stats.items()]
    show("Fig 6: AlexNet conv2 stream structure", rows)
    # weights have both sequential runs and jumps; inputs have
    # fine-grained random re-fetches
    assert stats["alpha"]["jumps"] > 0
    assert stats["beta"]["rand_fetches"] > 0
