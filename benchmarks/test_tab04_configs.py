"""Table 4: baseline configurations."""

from conftest import show

from repro.eval import tab4_configurations


def test_tab4(benchmark):
    rows = benchmark(tab4_configurations)
    show("Table 4: baseline configurations", rows)
    by_name = {r["name"]: r for r in rows}
    assert by_name["TPU"]["pe_array"] == "256x256"
    assert by_name["SuperNPU"]["pe_array"] == "64x256"
    assert abs(by_name["SMART"]["frequency_ghz"] - 52.6) < 0.1
