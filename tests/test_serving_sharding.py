"""Streaming traces and sharded scale-out: exactness guarantees.

The scale-out contract is equality, not approximation: a streamed
trace is bit-identical to the materialised one, a sharded run on a
shard-stable cell reproduces the monolithic engine's per-request
latencies and energies exactly, and no request is ever lost or
duplicated across the shard split.  These tests hold every layer of
the PR 7 pipeline to that contract.
"""

import math
import multiprocessing
import os
import random

import pytest

from repro.errors import ConfigError
from repro.runtime import executor as executor_module
from repro.serving import sharding as sharding_module
from repro.serving import (
    LatencyDigest,
    SCENARIOS,
    ServingSimulator,
    ShardedEngine,
    generate_trace,
    get_scenario,
    make_policy,
    shard_key,
    shard_seeds,
    shard_trace,
    stream_trace,
    validate_sharding,
)

RATE = 20_000.0
SEED = 11


def _monolithic(scenario, n, *, replicas=2, policy="timeout", slo=None,
                resilience=None):
    simulator = ServingSimulator(
        "SMART", replicas=replicas,
        policy=make_policy(policy, batch_size=8),
        dispatch="shard", slo=slo, resilience=resilience,
    )
    return simulator.run_scenario(scenario, n, seed=SEED)


def _sharded(scenario, n, *, shards=2, replicas=2, policy="timeout",
             slo_us=0.0, detail=True, mode="inline", **kwargs):
    engine = ShardedEngine(shards, replicas=replicas, policy=policy,
                           batch_size=8, slo_us=slo_us, detail=detail,
                           mode=mode, **kwargs)
    return engine.run_scenario(scenario, n, seed=SEED)


class TestStreamTrace:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_stream_is_bit_identical_to_materialised(self, name):
        scenario = get_scenario(name)
        trace = generate_trace(scenario, RATE, 400, seed=SEED)
        assert tuple(stream_trace(scenario, RATE, 400, seed=SEED)) == trace

    def test_stream_rejects_empty(self):
        with pytest.raises(ConfigError):
            next(stream_trace(get_scenario("steady"), RATE, 0))

    def test_mix_sampler_replays_choices(self):
        mix = get_scenario("hot-model").mix
        sample = mix.sampler()
        a, b = random.Random(3), random.Random(3)
        assert [sample(a) for _ in range(500)] == \
               [mix.sample(b) for _ in range(500)]


class TestShardSplit:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("shards", [2, 3])
    def test_no_request_lost_or_duplicated(self, name, shards):
        scenario = get_scenario(name)
        trace = generate_trace(scenario, RATE, 300, seed=SEED)
        pieces = [tuple(shard_trace(scenario, RATE, 300, SEED,
                                    shards=shards, shard=k, replicas=3))
                  for k in range(shards)]
        ids = [r.request_id for piece in pieces for r in piece]
        assert sorted(ids) == list(range(300))  # exactly once each
        by_id = {r.request_id: r for piece in pieces for r in piece}
        assert all(by_id[r.request_id] == r for r in trace)

    def test_shards_are_keyed_by_home_replica(self):
        scenario = get_scenario("steady")
        for k in range(2):
            for request in shard_trace(scenario, RATE, 200, SEED,
                                       shards=2, shard=k, replicas=4):
                assert shard_key(request.model, 4, 2) == k

    def test_span_covers_the_global_trace(self):
        scenario = get_scenario("steady")
        trace = generate_trace(scenario, RATE, 200, seed=SEED)
        piece = shard_trace(scenario, RATE, 200, SEED,
                            shards=2, shard=0, replicas=2)
        assert piece.span == (trace[0].arrival, trace[-1].arrival)

    def test_shard_is_single_use(self):
        piece = shard_trace(get_scenario("steady"), RATE, 50, SEED,
                            shards=2, shard=0, replicas=2)
        list(piece)
        with pytest.raises(ConfigError):
            iter(piece)

    def test_shard_seeds_deterministic_and_distinct(self):
        assert shard_seeds(7, 4) == shard_seeds(7, 4)
        assert len(set(shard_seeds(7, 4))) == 4
        assert shard_seeds(7, 4) != shard_seeds(8, 4)
        with pytest.raises(ConfigError):
            shard_seeds(7, 0)

    def test_bad_shard_parameters_rejected(self):
        scenario = get_scenario("steady")
        for kwargs in ({"shards": 0, "shard": 0},
                       {"shards": 2, "shard": 2},
                       {"shards": 2, "shard": -1}):
            with pytest.raises(ConfigError):
                shard_trace(scenario, RATE, 50, SEED, replicas=2,
                            **kwargs)


class TestStreamingEngine:
    @pytest.mark.parametrize("name", ["steady", "bursty", "diurnal"])
    @pytest.mark.parametrize("policy", ["fixed", "timeout"])
    def test_iterator_run_matches_list_run(self, name, policy):
        scenario = get_scenario(name)
        simulator = ServingSimulator("SMART", replicas=2,
                                     policy=make_policy(policy, 8),
                                     dispatch="shard")
        trace = generate_trace(scenario, RATE, 300, seed=SEED)
        networks = {m: simulator.network(m)
                    for m in scenario.mix.models()}
        batch = simulator.make_engine(networks).run(trace)
        streamed = simulator.make_engine(networks).run(iter(trace))
        assert streamed.done == batch.done
        assert streamed.batches == batch.batches

    def test_streamed_run_rejects_out_of_order_arrivals(self):
        scenario = get_scenario("steady")
        simulator = ServingSimulator("SMART", replicas=2,
                                     policy=make_policy("timeout", 8),
                                     dispatch="shard")
        networks = {m: simulator.network(m)
                    for m in scenario.mix.models()}
        trace = generate_trace(scenario, RATE, 50, seed=SEED)
        shuffled = trace[10:] + trace[:10]
        with pytest.raises(ConfigError, match="time-ordered"):
            simulator.make_engine(networks).run(iter(shuffled))

    def test_streamed_run_rejects_empty_iterator(self):
        simulator = ServingSimulator("SMART", replicas=2,
                                     policy=make_policy("timeout", 8),
                                     dispatch="shard")
        with pytest.raises(ConfigError):
            simulator.make_engine({}).run(iter(()))


class TestShardedEquivalence:
    @pytest.mark.parametrize("name", ["steady", "hot-model", "overload"])
    @pytest.mark.parametrize("policy", ["fixed", "timeout"])
    def test_detail_run_is_bit_exact(self, name, policy):
        mono = _monolithic(name, 400, policy=policy)
        merged = _sharded(name, 400, policy=policy).detail
        assert merged.latencies == mono.latencies
        assert merged.energy_per_request == mono.energy_per_request
        assert merged.requests == mono.requests
        def canon(b):
            return (b.flush, b.start, b.done, b.replica, b.model)
        assert sorted(merged.batches, key=canon) == \
               sorted(mono.batches, key=canon)

    @pytest.mark.parametrize("shards,replicas", [(2, 3), (3, 3), (4, 5)])
    def test_shard_count_never_changes_the_answer(self, shards,
                                                  replicas):
        mono = _monolithic("steady", 400, replicas=replicas)
        merged = _sharded("steady", 400, shards=shards,
                          replicas=replicas).detail
        assert merged.latencies == mono.latencies
        assert merged.energy_per_request == mono.energy_per_request

    @pytest.mark.parametrize("name", ["steady", "bursty", "diurnal"])
    def test_digest_run_matches_monolithic_aggregates(self, name):
        mono = _monolithic(name, 400)
        result = _sharded(name, 400, detail=False)
        assert result.detail is None
        assert result.requests == len(mono.requests)
        assert result.batches == len(mono.batches)
        assert result.energy == pytest.approx(sum(
            mono.energy_per_request), rel=1e-12)
        assert result.digest.count == len(mono.latencies)
        assert result.digest.min == min(mono.latencies)
        assert result.digest.max == max(mono.latencies)
        for q in (50, 95, 99):
            assert result.latency_percentile(q) == pytest.approx(
                mono.latency_percentile(q), rel=0.02)

    def test_slo_attainment_matches_monolithic(self):
        from repro.serving import SloPolicy
        target = 2000e-6
        mono = _monolithic("overload", 400,
                           slo=SloPolicy(target=target))
        result = _sharded("overload", 400, slo_us=2000, detail=False)
        assert result.slo_attainment == pytest.approx(
            mono.slo_attainment, abs=1e-12)

    def test_process_mode_matches_inline(self):
        inline = _sharded("steady", 300, detail=True, mode="inline")
        procs = _sharded("steady", 300, detail=True, mode="process")
        assert procs.detail.latencies == inline.detail.latencies
        assert procs.requests == inline.requests
        assert procs.energy == inline.energy


class TestValidateSharding:
    def test_accepts_a_shard_stable_cell(self):
        validate_sharding(2, replicas=4)

    @pytest.mark.parametrize("kwargs,fragment", [
        ({"shards": 0, "replicas": 2}, "shard count"),
        ({"shards": 3, "replicas": 2}, "home replica"),
        ({"shards": 2, "replicas": 2, "dispatch": "least_loaded"},
         "shard-stable"),
        ({"shards": 2, "replicas": 2, "autoscale": "1:4"}, "autoscale"),
        ({"shards": 2, "replicas": 2, "scale": "holt"}, "autoscale"),
        ({"shards": 2, "replicas": 2, "steal": True}, "stealing"),
        ({"shards": 2, "replicas": 2, "shed": 16}, "shed"),
        ({"shards": 2, "replicas": 2, "fail": 1}, "fault-free"),
        ({"shards": 2, "replicas": 2,
          "scenarios": ("failure-storm",)}, "not shard-stable"),
    ])
    def test_rejects_unstable_cells(self, kwargs, fragment):
        shards = kwargs.pop("shards")
        with pytest.raises(ConfigError, match=fragment):
            validate_sharding(shards, **kwargs)


class TestLatencyDigest:
    def test_counts_and_sums_are_exact(self):
        rng = random.Random(5)
        values = [rng.expovariate(1000.0) for _ in range(5000)]
        digest = LatencyDigest()
        for v in values:
            digest.add(v)
        assert digest.count == 5000
        assert digest.total == pytest.approx(sum(values))
        assert digest.min == min(values)
        assert digest.max == max(values)
        assert digest.mean == pytest.approx(sum(values) / 5000)

    def test_merge_equals_single_digest(self):
        rng = random.Random(6)
        values = [rng.expovariate(1000.0) for _ in range(2000)]
        whole = LatencyDigest()
        left, right = LatencyDigest(), LatencyDigest()
        for i, v in enumerate(values):
            whole.add(v)
            (left if i % 2 else right).add(v)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        assert left.min == whole.min and left.max == whole.max

    def test_percentile_tracks_exact_nearest_rank(self):
        rng = random.Random(7)
        values = sorted(rng.expovariate(1000.0) for _ in range(3000))
        digest = LatencyDigest(resolution=0.01)
        for v in values:
            digest.add(v)
        for q in (1, 25, 50, 90, 99, 100):
            exact = values[max(1, math.ceil(q / 100 * 3000)) - 1]
            assert digest.percentile(q) == pytest.approx(exact,
                                                         rel=0.011)

    def test_error_paths(self):
        digest = LatencyDigest()
        with pytest.raises(ConfigError):
            digest.percentile(50)
        digest.add(1.0)
        with pytest.raises(ConfigError):
            digest.percentile(101)
        with pytest.raises(ConfigError):
            digest.merge(LatencyDigest(resolution=0.5))
        with pytest.raises(ConfigError):
            LatencyDigest(resolution=0.0)


class TestShardedEngineApi:
    def test_constructor_validates_up_front(self):
        with pytest.raises(ConfigError):
            ShardedEngine(3, replicas=2)
        with pytest.raises(ConfigError):
            ShardedEngine(2, replicas=2, dispatch="round_robin")
        with pytest.raises(ConfigError):
            ShardedEngine(2, replicas=2, policy="adaptive")

    def test_run_rejects_fault_scenarios_and_empty_traces(self):
        engine = ShardedEngine(2, replicas=2, mode="inline")
        with pytest.raises(ConfigError):
            engine.run_scenario("failure-storm", 100)
        with pytest.raises(ConfigError):
            engine.run_scenario("steady", 0)

    def test_row_shape(self):
        result = _sharded("steady", 300, detail=False)
        row = result.to_row()
        assert row["shards"] == 2
        assert row["requests"] == 300
        assert row["agg_rps"] > 0
        assert row["p50_us"] <= row["p95_us"] <= row["p99_us"]
        assert "slo_attain" not in row

    def test_telemetry_rows_are_shard_tagged(self):
        engine = ShardedEngine(2, replicas=2, mode="inline",
                               trace=True, trace_events=True)
        result = engine.run_scenario("steady", 300, seed=SEED)
        shards_seen = {row["shard"] for row in result.telemetry_rows}
        assert shards_seen == {0, 1}
        arrivals = sum(1 for row in result.telemetry_rows
                       if row["ev"] == "arrival")
        assert arrivals == 300


RETRY_SPEC = "retry:timeout_us=400,budget=2"


class TestShardedResilience:
    """Only shard-stable resilience shards, and it shards exactly."""

    def test_retry_parity_is_bit_exact(self):
        from repro.serving import SloPolicy
        mono = _monolithic("steady", 400, replicas=4,
                           slo=SloPolicy(target=900e-6),
                           resilience=RETRY_SPEC)
        merged = _sharded("steady", 400, shards=2, replicas=4,
                          slo_us=900, resilience=RETRY_SPEC).detail
        assert mono.retries > 0  # the policy genuinely fired
        assert merged.latencies == mono.latencies
        assert merged.energy_per_request == mono.energy_per_request

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_retry_schedule_is_shard_count_invariant(self, shards):
        from repro.serving import SloPolicy
        mono = _monolithic("steady", 400, replicas=4,
                           slo=SloPolicy(target=900e-6),
                           resilience=RETRY_SPEC)
        merged = _sharded("steady", 400, shards=shards, replicas=4,
                          slo_us=900, resilience=RETRY_SPEC).detail
        assert merged.latencies == mono.latencies
        assert merged.energy_per_request == mono.energy_per_request

    @pytest.mark.parametrize("spec", ["hedge:delay_us=200",
                                      "degrade:timeout_us=400"])
    def test_unstable_policies_rejected(self, spec):
        with pytest.raises(ConfigError, match="not shard-stable"):
            ShardedEngine(2, replicas=4, resilience=spec)
        with pytest.raises(ConfigError, match="not shard-stable"):
            validate_sharding(2, replicas=4, resilience=spec)

    def test_none_specs_accepted_and_normalised(self):
        validate_sharding(2, replicas=4, resilience="none")
        engine = ShardedEngine(2, replicas=4, resilience="none")
        assert engine.resilience == ""

    def test_row_carries_the_resilience_spec(self):
        row = _sharded("steady", 300, replicas=4, slo_us=900,
                       detail=False, resilience=RETRY_SPEC).to_row()
        assert row["resilience"] == RETRY_SPEC
        assert "shard_retries" not in row  # nothing crashed


class TestShardFaultTolerance:
    """Crashed or raising worker shards are re-run, not fatal."""

    def test_raising_shard_is_retried_with_exact_result(self,
                                                        monkeypatch,
                                                        tmp_path):
        real = sharding_module._serve_shard
        sentinel = tmp_path / "crashed-once"

        def flaky(spec):
            if spec["shard"] == 1 and not sentinel.exists():
                sentinel.write_text("x")
                raise RuntimeError("injected shard fault")
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", flaky)
        result = _sharded("steady", 400, mode="thread",
                          retry_backoff_s=0.001)
        assert result.shard_retries == 1
        clean = _monolithic("steady", 400)
        assert result.detail.latencies == clean.latencies
        assert result.detail.energy_per_request == \
            clean.energy_per_request

    def test_permanent_failure_raises_after_budget(self, monkeypatch):
        real = sharding_module._serve_shard

        def always(spec):
            if spec["shard"] == 1:
                raise RuntimeError("permanent fault")
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", always)
        engine = ShardedEngine(2, replicas=2, mode="thread",
                               shard_retries=2, retry_backoff_s=0.001)
        with pytest.raises(RuntimeError,
                           match="still failing after 2 retries"):
            engine.run_scenario("steady", 200, seed=SEED)

    def test_retry_budget_validation(self):
        with pytest.raises(ConfigError):
            ShardedEngine(2, replicas=2, shard_retries=-1)
        with pytest.raises(ConfigError):
            ShardedEngine(2, replicas=2, retry_backoff_s=-0.1)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill chaos needs fork inheritance")
    def test_process_worker_killed_mid_run(self, monkeypatch,
                                           tmp_path):
        """The chaos cell: one worker process dies outright
        (``os._exit``, as a crashed machine would); the run must still
        complete with the exact monolithic answer."""
        real = sharding_module._serve_shard
        sentinel = tmp_path / "killed-once"

        def killer(spec):
            if spec["shard"] == 1 and not sentinel.exists():
                sentinel.write_text("x")
                os._exit(13)
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", killer)
        # pooled process workers snapshot the parent at pool creation;
        # drain any pools forked before the monkeypatch so the killer
        # is actually inherited
        executor_module.shutdown_pools()
        result = _sharded("steady", 400, mode="process",
                          retry_backoff_s=0.001)
        assert sentinel.exists()  # the kill genuinely happened
        assert result.shard_retries >= 1
        clean = _monolithic("steady", 400)
        assert result.detail.latencies == clean.latencies
        assert result.detail.energy_per_request == \
            clean.energy_per_request


class TestShardCheckpoint:
    def test_resume_serves_only_the_missing_shards(self, monkeypatch,
                                                   tmp_path):
        checkpoint = str(tmp_path / "run.ckpt")
        real = sharding_module._serve_shard

        def doomed(spec):
            if spec["shard"] == 1:
                raise RuntimeError("fault")
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", doomed)
        engine = ShardedEngine(2, replicas=2, mode="thread",
                               detail=True, shard_retries=0,
                               checkpoint=checkpoint)
        with pytest.raises(RuntimeError):
            engine.run_scenario("steady", 300, seed=SEED)
        assert os.path.exists(checkpoint)  # shard 0 landed on disk

        calls = []

        def counting(spec):
            calls.append(spec["shard"])
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", counting)
        resumed = ShardedEngine(2, replicas=2, mode="thread",
                                detail=True, checkpoint=checkpoint)
        result = resumed.run_scenario("steady", 300, seed=SEED)
        assert calls == [1]  # shard 0 came from the checkpoint
        clean = _monolithic("steady", 300)
        assert result.detail.latencies == clean.latencies

    def test_completed_checkpoint_resumes_instantly(self, monkeypatch,
                                                    tmp_path):
        checkpoint = str(tmp_path / "run.ckpt")
        first = _sharded("steady", 300, mode="thread",
                         checkpoint=checkpoint)
        monkeypatch.setattr(
            sharding_module, "_serve_shard",
            lambda spec: pytest.fail("shard re-served after resume"))
        again = _sharded("steady", 300, mode="thread",
                         checkpoint=checkpoint)
        assert again.detail.latencies == first.detail.latencies

    def test_mismatched_checkpoint_is_ignored(self, tmp_path):
        checkpoint = str(tmp_path / "run.ckpt")
        _sharded("steady", 300, mode="thread", checkpoint=checkpoint)
        # different trace length: stale checkpoint must not leak in
        other = _sharded("steady", 200, mode="thread",
                         checkpoint=checkpoint)
        clean = _monolithic("steady", 200)
        assert other.detail.latencies == clean.latencies

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path):
        checkpoint = tmp_path / "run.ckpt"
        checkpoint.write_bytes(b"not a pickle")
        result = _sharded("steady", 300, mode="thread",
                          checkpoint=str(checkpoint))
        clean = _monolithic("steady", 300)
        assert result.detail.latencies == clean.latencies
