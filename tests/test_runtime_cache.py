"""Tests for the content-addressed result cache."""

import pytest

from repro.errors import ConfigError
from repro.runtime import ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(cache_dir=tmp_path / "cache", memory_slots=4)


ROWS = [{"x": 1, "y": 2.5}, {"x": 2, "y": 5.0}]


class TestKeys:
    def test_same_spec_same_key(self, cache):
        assert (cache.key("fig18", {"a": 1, "b": 2})
                == cache.key("fig18", {"b": 2, "a": 1}))

    def test_changed_parameter_changes_key(self, cache):
        assert cache.key("fig18", {"a": 1}) != cache.key("fig18", {"a": 2})

    def test_changed_experiment_changes_key(self, cache):
        assert cache.key("fig18", {}) != cache.key("fig19", {})

    def test_changed_code_version_changes_key(self, cache):
        assert (cache.key("fig18", {}, version="v1")
                != cache.key("fig18", {}, version="v2"))

    def test_non_serialisable_params_rejected(self, cache):
        with pytest.raises(ConfigError):
            cache.key("fig18", {"f": lambda: None})


class TestStore:
    def test_round_trip(self, cache):
        key = cache.key("fig18", {"a": 1})
        assert cache.get(key) is None
        cache.put(key, "fig18", {"a": 1}, ROWS, elapsed_s=0.5)
        entry = cache.get(key)
        assert entry["rows"] == ROWS
        assert entry["elapsed_s"] == 0.5

    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(cache_dir=tmp_path / "cache")
        key = first.key("fig18", {})
        first.put(key, "fig18", {}, ROWS)
        second = ResultCache(cache_dir=tmp_path / "cache")
        assert second.get(key)["rows"] == ROWS

    def test_float_rows_survive_json_round_trip(self, tmp_path):
        value = 0.1 + 0.2  # not exactly representable
        first = ResultCache(cache_dir=tmp_path / "cache")
        key = first.key("x", {})
        first.put(key, "x", {}, [{"v": value}])
        second = ResultCache(cache_dir=tmp_path / "cache")
        assert second.get(key)["rows"][0]["v"] == value

    def test_stats_count_hits_and_misses(self, cache):
        key = cache.key("fig18", {})
        cache.get(key)
        cache.put(key, "fig18", {}, ROWS)
        cache.get(key)
        cache.get(key)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_corrupt_entry_is_a_miss(self, cache):
        key = cache.key("fig18", {})
        cache.put(key, "fig18", {}, ROWS)
        cache._memory.clear()
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None


class TestConcurrentPut:
    def test_parallel_same_key_puts_never_tear(self, tmp_path):
        """Regression: both writers used the fixed ``<key>.tmp`` name,
        so concurrent puts could interleave bytes and publish a torn
        JSON entry.  Unique per-writer temp names make the only race
        the atomic rename."""
        import json
        from concurrent.futures import ThreadPoolExecutor

        cache = ResultCache(cache_dir=tmp_path / "cache")
        key = cache.key("fig18", {"a": 1})
        payloads = [[{"writer": w, "blob": "x" * (1000 + w)}]
                    for w in range(8)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda rows: cache.put(key, "fig18", {"a": 1}, rows),
                payloads,
            ))

        # whoever won, the entry must be one writer's intact payload
        path = cache.cache_dir / f"{key}.json"
        entry = json.loads(path.read_text())
        assert entry["rows"] in payloads
        # and no temp droppings survive
        assert list(cache.cache_dir.glob("*.tmp")) == []

    def test_failed_write_cleans_its_temp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        key = cache.key("fig18", {})
        monkeypatch.setattr(
            "repro.runtime.cache.os.replace",
            lambda *a: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            cache.put(key, "fig18", {}, ROWS)
        assert list((tmp_path / "cache").glob("*.tmp")) == []


class TestLru:
    def test_eviction_keeps_disk_copy(self, cache):
        keys = [cache.key("fig18", {"i": i}) for i in range(6)]
        for i, key in enumerate(keys):
            cache.put(key, "fig18", {"i": i}, ROWS)
        assert len(cache._memory) == 4  # memory_slots
        assert keys[0] not in cache._memory
        assert cache.get(keys[0])["rows"] == ROWS  # served from disk

    def test_recently_used_survives(self, cache):
        keys = [cache.key("fig18", {"i": i}) for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, "fig18", {"i": i}, ROWS)
        cache.get(keys[0])  # touch the oldest
        cache.put(cache.key("fig18", {"i": 99}), "fig18", {"i": 99}, ROWS)
        assert keys[0] in cache._memory
        assert keys[1] not in cache._memory


class TestMaintenance:
    def test_entries_metadata(self, cache):
        cache.put(cache.key("fig18", {"a": 1}), "fig18", {"a": 1}, ROWS,
                  elapsed_s=1.0)
        (entry,) = cache.entries()
        assert entry["experiment"] == "fig18"
        assert entry["rows"] == 2
        assert entry["bytes"] > 0

    def test_clear(self, cache):
        for i in range(3):
            cache.put(cache.key("fig18", {"i": i}), "fig18", {"i": i},
                      ROWS)
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.get(cache.key("fig18", {"i": 0})) is None
