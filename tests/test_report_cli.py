"""``repro report`` surfaces: golden JSON, HTML dashboard, CLI wiring.

The JSON golden file (``tests/data/report_golden.json``) pins the full
report built from the committed bench + ledger fixtures — the report
is deterministic by construction (no wall-clock stamps), so any drift
in the analytics is a diff here, not a flake.  The HTML tests hold the
dashboard to its self-contained contract: every committed bench cell
label present, inline SVG charts, no scripts, no external assets.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.eval.blocks import load_bench, load_ledger
from repro.eval.dashboard import build_report, render_html

DATA = Path(__file__).parent / "data"
BENCH_FIXTURE = DATA / "bench_fixture.json"
LEDGER_FIXTURE = DATA / "ledger_fixture.jsonl"
GOLDEN = DATA / "report_golden.json"


@pytest.fixture
def fixture_ledger(monkeypatch):
    monkeypatch.setenv("REPRO_RUN_STORE", str(LEDGER_FIXTURE))


class TestGoldenReport:
    def test_build_report_matches_golden(self):
        report = build_report(load_bench(BENCH_FIXTURE),
                              ledger_rows=load_ledger(LEDGER_FIXTURE))
        golden = json.loads(GOLDEN.read_text())
        assert json.loads(json.dumps(report)) == golden

    def test_cli_json_matches_golden(self, fixture_ledger, capsys):
        code = main(["report", "--json", "--bench",
                     str(BENCH_FIXTURE)])
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out == json.loads(GOLDEN.read_text())

    def test_report_is_deterministic(self):
        build = lambda: build_report(  # noqa: E731
            load_bench(BENCH_FIXTURE),
            ledger_rows=load_ledger(LEDGER_FIXTURE))
        assert build() == build()

    def test_golden_statistics(self):
        golden = json.loads(GOLDEN.read_text())
        cells = {c["cell"]: c for c in golden["bench"]["cells"]}
        # the migrated first fixture point counts toward bursty/10000
        assert cells["bursty/10000"]["points"] == 5
        # median-of-window absorbs the 90k noisy dip
        assert cells["bursty/10000"]["median_rps"] == 180000.0
        # variant comparison pivots "" to the plain column
        variants = {(v["scenario"], v["n_requests"]): v
                    for v in golden["variants"]}
        assert variants[("bursty", 10000)]["plain"] == 210000.0
        assert variants[("bursty", 10000)]["persist"] == 195000.0
        assert variants[("diurnal", 10000)]["forecast"] == 99000.0
        # ledger aggregates
        assert golden["runs"]["total"] == 3
        assert golden["runs"]["cached"] == 1
        assert golden["runs"]["errors"] == 1


class TestHtmlDashboard:
    def test_committed_bench_renders_all_cells(self):
        rows = load_bench("BENCH_serving.json")
        html = render_html(build_report(rows))
        for cell in sorted({r["cell"] for r in rows}):
            assert cell in html
        assert "bursty/10000" in html  # the tracked flagship cell

    def test_self_contained(self):
        html = render_html(build_report(load_bench(BENCH_FIXTURE)))
        assert html.startswith("<!doctype html>")
        assert "<script" not in html
        assert 'src="http' not in html and 'href="http' not in html
        assert "<svg" in html and "<polyline" in html
        assert "prefers-color-scheme: dark" in html

    def test_empty_report_still_renders(self):
        html = render_html(build_report([]))
        assert "no bench points" in html


class TestCli:
    def test_writes_html_dashboard(self, fixture_ledger, tmp_path,
                                   capsys):
        out = tmp_path / "fleet.html"
        code = main(["report", "--bench", str(BENCH_FIXTURE),
                     "-o", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "bursty/10000" in text
        assert str(out) in text
        html = out.read_text()
        assert "bursty/10000/persist" in html
        assert "Run ledger" in html

    def test_json_plus_out_writes_both(self, fixture_ledger, tmp_path,
                                       capsys):
        out = tmp_path / "fleet.html"
        code = main(["report", "--json", "--bench",
                     str(BENCH_FIXTURE), "--out", str(out)])
        assert code == 0
        json.loads(capsys.readouterr().out)
        assert out.exists()

    def test_bad_window_is_usage_error(self, capsys):
        assert main(["report", "--window", "0"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_unknown_flag_is_usage_error(self, capsys):
        assert main(["report", "--bogus"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_missing_rows_file_is_usage_error(self, capsys, tmp_path):
        assert main(["report", "--rows",
                     str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().out


class TestTraceIntegration:
    def test_serve_sim_trace_feeds_report(self, fixture_ledger,
                                          tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(["serve-sim", "steady", "--requests", "60",
                     "--policy", "fixed", "--trace", str(trace)])
        assert code == 0
        assert "telemetry trace" in capsys.readouterr().out
        out = tmp_path / "fleet.html"
        code = main(["report", "--bench", str(BENCH_FIXTURE),
                     "--trace", str(trace), "-o", str(out)])
        assert code == 0
        assert "1 telemetry run(s)" in capsys.readouterr().out
        assert "timeline:" in out.read_text()

    def test_sharded_trace_renders_per_shard_timelines(
            self, fixture_ledger, tmp_path, capsys):
        trace = tmp_path / "shards.jsonl"
        code = main(["serve-sim", "steady", "--requests", "400",
                     "--shards", "2", "--replicas", "2",
                     "--policy", "timeout", "--trace", str(trace)])
        assert code == 0
        capsys.readouterr()
        code = main(["report", "--json", "--bench",
                     str(BENCH_FIXTURE), "--trace", str(trace)])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        shards = [entry.get("shard") for entry in report["timeline"]]
        assert sorted(shards) == [0, 1]  # one timeline per worker
        out = tmp_path / "fleet.html"
        code = main(["report", "--bench", str(BENCH_FIXTURE),
                     "--trace", str(trace), "-o", str(out)])
        assert code == 0
        html = out.read_text()
        assert "shard 0" in html and "shard 1" in html

    def test_geo_trace_renders_region_rows(self, fixture_ledger,
                                           tmp_path, capsys):
        trace = tmp_path / "geo.jsonl"
        code = main(["serve-sim", "steady", "--requests", "400",
                     "--geo", "us-east,ap-south", "--slo", "4000",
                     "--policy", "timeout", "--trace", str(trace)])
        assert code == 0
        capsys.readouterr()
        code = main(["report", "--json", "--bench",
                     str(BENCH_FIXTURE), "--trace", str(trace)])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        regions = {r["region"]: r for r in report["regions"]}
        assert set(regions) == {"us-east", "ap-south"}
        # the acceptance columns: per-region SLO attainment and $/J
        for row in regions.values():
            assert 0.0 <= row["slo_attain"] <= 1.0
            assert row["usd_per_mj"] > 0
            assert "usd_per_req" in row
        out = tmp_path / "fleet.html"
        code = main(["report", "--bench", str(BENCH_FIXTURE),
                     "--trace", str(trace), "-o", str(out)])
        assert code == 0
        html = out.read_text()
        assert "Geo regions" in html
        assert "us-east" in html and "ap-south" in html
