"""Exact-equivalence suite: optimised engine vs the retained reference.

The PR 4 hot-path rewrite (raw heap tuples, merge-scanned arrivals,
interned memo keys, hoisted service/energy rates, incremental p95
window) promises bit-identical results.  This suite holds it to that:
every stock scenario x policy x dispatch cell — plus autoscaling,
admission-control and the 10k-request bench cell — must reproduce the
reference engine's per-request latency and energy tuples *exactly*
(tuple equality on floats, not approx).

PR 5 extracted every scheduling decision behind the policy seams in
``repro.serving.policies`` while the reference kept its original
string-matched branches and inline control tick — so the same cells
now also prove the *seam* introduced zero drift, both for the default
string configuration and (``test_policy_object_cells_bit_identical``)
for explicitly constructed policy objects.
"""

import pytest

from repro.serving import (
    AutoscalePolicy,
    DISPATCH_STRATEGIES,
    FailurePlan,
    FifoFlush,
    LayerMemoCache,
    SCENARIOS,
    ServingSimulator,
    SloPolicy,
    generate_trace,
    get_scenario,
    make_dispatch,
    make_policy,
)
from repro.serving.reference import run_reference

#: One memo shared by every cell in the module: layer simulations are
#: the expensive part and are identical across cells, and sharing is a
#: supported LayerMemoCache mode.
SHARED = LayerMemoCache()


def reference_tuples(ref, trace):
    """Per-request (latencies, energies) from a reference EngineRun,
    mirroring how ServingSimulator.run derives them."""
    ordered = sorted(trace, key=lambda r: r.arrival)
    shed = frozenset(ref.shed)
    latencies = tuple(
        float("inf") if r.request_id in shed
        else ref.done[r.request_id][0] - r.arrival
        for r in ordered
    )
    energies = tuple(
        0.0 if r.request_id in shed else ref.done[r.request_id][1]
        for r in ordered
    )
    return latencies, energies


def run_cell(scenario_name, policy_name, dispatch, n=100, seed=5,
             **kwargs):
    """Run one cell on both engines and return (result, reference run,
    trace)."""
    scenario = get_scenario(scenario_name)
    sim = ServingSimulator("SMART", replicas=2,
                           policy=make_policy(policy_name),
                           dispatch=dispatch, cache=SHARED, **kwargs)
    rate = scenario.load * sim.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n, seed)
    failures = (FailurePlan(count=scenario.faults, seed=seed)
                if scenario.faults and sim.failures is None else None)
    result = sim.run(trace, scenario=scenario.name, rate=rate,
                     failures=failures)
    ref = run_reference(sim, trace, failures=failures)
    return result, ref, trace


def assert_identical(result, ref, trace):
    """Every observable of the run must match the reference exactly."""
    latencies, energies = reference_tuples(ref, trace)
    assert result.latencies == latencies
    assert result.energy_per_request == energies
    assert result.batches == ref.batches
    assert result.shed == ref.shed
    assert result.replica_trace == ref.replica_trace
    assert result.scale_events == ref.scale_events
    assert result.redispatched == ref.redispatched
    assert result.wasted_energy == ref.wasted_energy


@pytest.mark.parametrize("dispatch", DISPATCH_STRATEGIES)
@pytest.mark.parametrize("policy", ["fixed", "timeout"])
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_stock_cell_bit_identical(scenario, policy, dispatch):
    result, ref, trace = run_cell(scenario, policy, dispatch)
    assert_identical(result, ref, trace)


@pytest.mark.parametrize("dispatch", DISPATCH_STRATEGIES)
@pytest.mark.parametrize("policy", ["fixed", "timeout"])
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_policy_object_cells_bit_identical(scenario, policy, dispatch):
    """The policy seam with explicitly constructed objects (stock
    dispatch policies + FifoFlush) must still match the reference's
    string-branch engine on every stock cell."""
    result, ref, trace = run_cell(scenario, policy,
                                  make_dispatch(dispatch),
                                  flush=FifoFlush())
    assert_identical(result, ref, trace)


def test_bench_cell_10k_bit_identical():
    """The acceptance cell: the 10k-request bursty / 2-replica /
    timeout / least_loaded point BENCH_serving.json tracks must carry
    per-request latencies identical to the unoptimised reference."""
    result, ref, trace = run_cell("bursty", "timeout", "least_loaded",
                                  n=10_000, seed=7)
    assert_identical(result, ref, trace)
    assert len(result.latencies) == 10_000


def test_queue_autoscale_cell_bit_identical():
    """Autoscaling (queue metric) exercises CONTROL ticks, warm-up
    gates and scale-down draining on both engines."""
    scenario = get_scenario("overload")
    probe = ServingSimulator("SMART", replicas=2, cache=SHARED,
                             policy=make_policy("timeout"))
    rate = scenario.load * probe.capacity_rps(scenario)
    autoscale = AutoscalePolicy(min_replicas=2, max_replicas=6,
                                high_queue=4, low_queue=1,
                                tick=10 / rate, warmup=20 / rate,
                                cooldown=15 / rate)
    result, ref, trace = run_cell("overload", "timeout", "least_loaded",
                                  n=300, autoscale=autoscale)
    assert result.scale_events  # the control plane actually acted
    assert_identical(result, ref, trace)


def test_p95_autoscale_cell_bit_identical():
    """The p95 metric runs the incremental latency window against the
    reference's full re-sort every control tick."""
    plain, _, _ = run_cell("overload", "timeout", "least_loaded", n=300)
    target = plain.latency_percentile(50)
    scenario = get_scenario("overload")
    probe = ServingSimulator("SMART", replicas=2, cache=SHARED,
                             policy=make_policy("timeout"))
    rate = scenario.load * probe.capacity_rps(scenario)
    autoscale = AutoscalePolicy(min_replicas=2, max_replicas=6,
                                metric="p95", target_p95=target,
                                window=64, tick=10 / rate,
                                warmup=20 / rate, cooldown=15 / rate)
    result, ref, trace = run_cell("overload", "timeout", "least_loaded",
                                  n=300, autoscale=autoscale)
    assert result.scale_events
    assert_identical(result, ref, trace)


def test_shedding_cell_bit_identical():
    """Admission control: shed decisions depend on live in-system
    counts, the most order-sensitive state the engine keeps."""
    result, ref, trace = run_cell(
        "overload", "timeout", "least_loaded", n=300,
        slo=SloPolicy(target=1e-3, shed_depth=24),
    )
    assert result.shed  # shedding actually happened
    assert_identical(result, ref, trace)


def test_uncached_ground_truth_cell():
    """End-to-end ground truth: optimised engine + memo vs reference
    engine + *disabled* memo (every layer simulated directly)."""
    scenario = get_scenario("steady")
    optimised = ServingSimulator("SMART", replicas=2, cache=SHARED,
                                 policy=make_policy("timeout"),
                                 dispatch="least_loaded")
    rate = scenario.load * optimised.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, 60, seed=3)
    result = optimised.run(trace)
    uncached = ServingSimulator("SMART", replicas=2,
                                cache=LayerMemoCache(enabled=False),
                                policy=make_policy("timeout"),
                                dispatch="least_loaded")
    ref = run_reference(uncached, trace)
    latencies, energies = reference_tuples(ref, trace)
    assert result.latencies == latencies
    assert result.energy_per_request == energies
    assert result.batches == ref.batches
