"""Tests for the SMART core: pipelined array, hetero SPM, design space."""

import pytest

from repro.core import (
    PipelinedCmosSfqArray,
    SmartSpm,
    explore_design_space,
    make_accelerator,
    make_smart,
    make_supernpu,
    make_tpu,
)
from repro.core.design_space import MAX_PIPELINE_FREQUENCY
from repro.errors import ConfigError
from repro.units import GHZ, KB, MB, NS


class TestPipelinedArray:
    def test_frequency_at_ntron_ceiling(self):
        """Sec 4.2.4: the nTron caps the pipeline near 9.7 GHz."""
        array = PipelinedCmosSfqArray()
        assert array.pipeline_frequency == pytest.approx(9.707 * GHZ,
                                                         rel=0.01)

    def test_cannot_beat_ntron(self):
        with pytest.raises(ConfigError):
            PipelinedCmosSfqArray(stage_time=50e-12)

    def test_subbank_fits_stage(self):
        array = PipelinedCmosSfqArray()
        assert array.subbank.access_latency <= array.stage_time

    def test_leakage_near_paper_value(self):
        """Sec 4.4: ~102 mW standby for the 28 MB array."""
        array = PipelinedCmosSfqArray()
        assert 50e-3 < array.leakage_power < 250e-3

    def test_access_latency_is_pipeline_depth(self):
        array = PipelinedCmosSfqArray()
        assert array.access_latency == pytest.approx(
            array.pipeline_stages * array.stage_time
        )

    def test_as_random_spm_view(self):
        spm = PipelinedCmosSfqArray().as_random_spm()
        assert spm.pipelined
        assert spm.issue_interval == pytest.approx(103.02e-12)


class TestSmartSpm:
    def test_total_capacity(self):
        spm = SmartSpm()
        assert spm.total_capacity == 3 * 32 * KB + 28 * MB

    def test_hetero_view_prefetches(self):
        assert SmartSpm(prefetch_depth=3).as_hetero().prefetching
        assert not SmartSpm(prefetch_depth=1).as_hetero().prefetching

    def test_shift_area_small_share(self):
        spm = SmartSpm()
        assert spm.shift_area < 0.05 * spm.area


class TestDesignSpace:
    def test_monotone_tradeoffs(self):
        """Fig 14: higher frequency -> more leakage, energy and area."""
        points = explore_design_space(
            frequencies=(1 * GHZ, 4 * GHZ, MAX_PIPELINE_FREQUENCY)
        )
        leakage = [p.leakage_power for p in points]
        mats = [p.subbank_mats for p in points]
        assert leakage == sorted(leakage)
        assert mats == sorted(mats)

    def test_frequency_ceiling_enforced(self):
        with pytest.raises(ConfigError):
            explore_design_space(frequencies=(12 * GHZ,))

    def test_latency_meets_stage(self):
        for point in explore_design_space(frequencies=(2 * GHZ,)):
            assert point.access_latency >= 1.0 / point.frequency


class TestConfigs:
    def test_table4_parameters(self):
        tpu = make_tpu()
        supernpu = make_supernpu()
        smart = make_smart()
        assert tpu.peak_macs == pytest.approx(45.9e12, rel=0.03)
        assert supernpu.peak_macs == pytest.approx(862e12, rel=0.03)
        assert smart.frequency == supernpu.frequency
        assert smart.rows == 64 and smart.cols == 256

    def test_scheme_factory_names(self):
        for scheme in ("SHIFT", "SRAM", "Heter", "Pipe", "SMART", "TPU"):
            acc = make_accelerator(scheme)
            assert acc.simulate is not None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            make_accelerator("bogus")

    def test_sensitivity_knobs(self):
        small = make_smart(shift_kb=16, random_mb=14, prefetch_depth=2)
        assert small.memsys.hetero.input_shift.capacity_bytes == 16 * KB
        assert small.memsys.hetero.random.capacity_bytes == 14 * MB

    def test_write_latency_override(self):
        slow = make_smart(write_latency=2 * NS)
        assert slow.memsys.hetero.random.write_latency == pytest.approx(
            2 * NS
        )
