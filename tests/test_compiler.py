"""Tests for the ILP compiler, greedy fallback and schedule invariants."""

import pytest

from repro.compiler import (
    GreedyCompiler,
    IlpCompiler,
    LayerDag,
    extract_objects,
)
from repro.errors import MappingError, ScheduleError
from repro.models import get_model
from repro.systolic.layers import ConvLayer
from repro.systolic.mapping import WeightStationaryMapping
from repro.units import KB, MB

CAPS = {k: 32 * KB for k in ("alpha", "beta", "gamma", "delta")}


def _dag(layer_name="conv2", model="AlexNet", max_iterations=12):
    net = get_model(model)
    layer = next(l for l in net.layers if l.name == layer_name)
    mapping = WeightStationaryMapping(layer, 64, 256)
    return LayerDag.from_mapping(mapping, max_iterations=max_iterations)


class TestDag:
    def test_structure(self):
        dag = _dag()
        dag.validate()
        assert dag.edge_count == 2 * dag.iterations

    def test_coarsening_bounds_iterations(self):
        dag = _dag("fc6", max_iterations=16)
        assert dag.iterations <= 16
        assert (dag.iterations * dag.folds_per_iteration
                >= dag.mapping.folds)

    def test_rejects_bad_iteration_budget(self):
        mapping = WeightStationaryMapping(
            ConvLayer("c", 13, 13, 64, 64, 3, 3, padding=1), 64, 256
        )
        with pytest.raises(MappingError):
            LayerDag.from_mapping(mapping, max_iterations=0)


class TestObjects:
    def test_operands_present(self):
        dag = _dag()
        objects = extract_objects(dag)
        operands = {o.operand for o in objects}
        assert {"alpha", "beta", "gamma"} <= operands

    def test_prefetch_extends_lifespan_backwards(self):
        dag = _dag()
        no_prefetch = {o.name: o for o in extract_objects(dag, 1, 1)}
        prefetched = {o.name: o for o in extract_objects(dag, 1, 3)}
        name = "alpha[3]"
        assert prefetched[name].first_edge < no_prefetch[name].first_edge

    def test_single_psum_accumulator(self):
        dag = _dag()  # conv2 has row folds -> psums
        deltas = [o for o in extract_objects(dag) if o.operand == "delta"]
        assert len(deltas) == 1
        assert deltas[0].first_edge == 0

    def test_lifespans_inside_dag(self):
        dag = _dag()
        for obj in extract_objects(dag):
            assert 0 <= obj.first_edge <= obj.last_edge < dag.edge_count


class TestIlp:
    def test_solves_optimal(self):
        solution = IlpCompiler().compile(_dag())
        assert "Optimal" in solution.status
        assert solution.schedule.objective_value > 0

    def test_schedule_validates(self):
        solution = IlpCompiler().compile(_dag())
        solution.schedule.validate(CAPS, 28 * MB)

    def test_ilp_at_least_greedy(self):
        """The exact solver never loses to the greedy baseline by more
        than the greedy's capacity-overdraft slack (1%)."""
        for layer in ("conv1", "conv2", "conv3", "fc6", "fc8"):
            dag = _dag(layer)
            ilp = IlpCompiler().compile(dag).schedule.objective_value
            greedy = GreedyCompiler().compile(dag).objective_value
            assert ilp >= 0.99 * greedy

    def test_weights_prefetched(self):
        """The ILP prefetches weight tiles ahead of their use edge."""
        solution = IlpCompiler().compile(_dag())
        distance = solution.schedule.prefetch_distance("alpha[3]")
        assert distance >= 2

    def test_deeper_prefetch_never_worse(self):
        dag = _dag()
        shallow = IlpCompiler(prefetch_depth=1).compile(dag)
        deep = IlpCompiler(prefetch_depth=3).compile(dag)
        assert (deep.schedule.objective_value
                >= shallow.schedule.objective_value - 1e-12)

    def test_solves_every_model_first_layers(self):
        from repro.models import model_names
        for name in model_names():
            net = get_model(name)
            for layer in net.compute_layers()[:2]:
                mapping = WeightStationaryMapping(layer, 64, 256)
                dag = LayerDag.from_mapping(mapping, max_iterations=8)
                solution = IlpCompiler().compile(dag)
                solution.schedule.validate(CAPS, 28 * MB)


class TestGreedy:
    def test_schedule_validates(self):
        GreedyCompiler().compile(_dag()).validate(CAPS, 28 * MB)

    def test_feasible_on_tight_shift(self):
        compiler = GreedyCompiler(shift_capacity=1 * KB)
        schedule = compiler.compile(_dag())
        caps = {k: 1 * KB for k in CAPS}
        schedule.validate(caps, 28 * MB)

    def test_sequential_objects_prefer_shift(self):
        # with a weight SHIFT large enough for a coarsened tile, the
        # greedy places the sequential weight tiles there
        schedule = GreedyCompiler(shift_capacity=512 * KB).compile(
            _dag("fc8")
        )
        alpha_rows = [p for p in schedule.placements
                      if p.obj.operand == "alpha" and p.location == "H"]
        assert alpha_rows  # weight tiles are sequential -> SHIFT


class TestScheduleValidation:
    def test_overcapacity_detected(self):
        schedule = GreedyCompiler().compile(_dag())
        tiny = {k: 1 for k in CAPS}
        with pytest.raises(ScheduleError):
            schedule.validate(tiny, 1)
