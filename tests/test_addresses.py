"""Tests for the concrete address-stream generator (Fig 6)."""

import pytest

from repro.systolic.addresses import (
    input_addresses,
    output_addresses,
    weight_addresses,
)
from repro.systolic.layers import ConvLayer
from repro.systolic.mapping import WeightStationaryMapping


@pytest.fixture
def conv():
    layer = ConvLayer("c", 12, 12, 8, 16, 3, 3, padding=1)
    return WeightStationaryMapping(layer, 64, 256)


class TestWeightStreams:
    def test_sequential_within_filter(self, conv):
        for stream in weight_addresses(conv):
            assert stream.jump_count() == 0  # one filter slice each

    def test_filters_jump_by_kernel_volume(self, conv):
        streams = weight_addresses(conv, max_lanes=3)
        starts = [s.addresses[0] for s in streams]
        deltas = [b - a for a, b in zip(starts, starts[1:])]
        assert all(d == conv.layer.kernel_volume for d in deltas)

    def test_row_fold_offsets(self):
        layer = ConvLayer("c", 12, 12, 32, 16, 3, 3, padding=1)
        mapping = WeightStationaryMapping(layer, 64, 256)
        assert mapping.row_folds > 1
        fold0 = weight_addresses(mapping, fold=0)[0].addresses[0]
        fold1 = weight_addresses(mapping, fold=1)[0].addresses[0]
        assert fold1 - fold0 == mapping.rows


class TestInputStreams:
    def test_stride_one_advances_by_channels(self, conv):
        # the centre tap (r=1, s=1) avoids padding clamps at the border
        centre = (1 * conv.layer.kernel_w + 1) * conv.layer.in_c
        stream = input_addresses(conv, lane=centre, max_pixels=8)
        deltas = [b - a for a, b in
                  zip(stream.addresses, stream.addresses[1:])]
        # within one output row: one input-pixel step per output pixel
        assert all(d == conv.layer.in_c for d in deltas[:6])

    def test_row_boundary_jumps(self, conv):
        stream = input_addresses(conv, lane=conv.layer.in_c,
                                 max_pixels=conv.layer.out_pixels)
        assert stream.jump_count() >= conv.layer.out_h - 1

    def test_fc_sequential(self):
        layer = ConvLayer("fc", 1, 1, 512, 100, 1, 1, kind="fc")
        mapping = WeightStationaryMapping(layer, 64, 256)
        stream = input_addresses(mapping, max_pixels=128)
        assert stream.jump_count() == 0

    def test_addresses_in_bounds(self, conv):
        layer = conv.layer
        total = layer.in_h * layer.in_w * layer.in_c
        for lane in (0, 1, 30):
            stream = input_addresses(conv, lane=lane, max_pixels=50)
            assert all(0 <= a < total for a in stream.addresses)


class TestOutputStreams:
    def test_channel_strided(self, conv):
        stream = output_addresses(conv, lane=3, max_pixels=10)
        deltas = {b - a for a, b in
                  zip(stream.addresses, stream.addresses[1:])}
        assert deltas == {conv.layer.out_c}

    def test_lane_offsets(self, conv):
        s0 = output_addresses(conv, lane=0).addresses[0]
        s1 = output_addresses(conv, lane=1).addresses[0]
        assert s1 - s0 == 1


class TestRunStatistics:
    def test_run_lengths_partition_stream(self, conv):
        stream = input_addresses(conv, lane=9,
                                 max_pixels=conv.layer.out_pixels)
        assert sum(stream.run_lengths()) == len(stream.addresses)

    def test_jump_deltas_consistent(self, conv):
        stream = input_addresses(conv, lane=9, max_pixels=60)
        assert len(stream.jump_deltas()) == stream.jump_count()
