"""Tests for the parallel executor: ordering, errors, mode resolution."""

import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    Job,
    execute,
    parallel_map,
    register_experiment,
    resolve_mode,
    unregister_experiment,
)
from repro.runtime import executor


def _payload_echo(key: int) -> tuple:
    return key, executor.worker_payload()


def _squares(n: int = 3, fail: bool = False) -> list[dict]:
    if fail:
        raise ValueError("boom")
    return [{"i": i, "sq": i * i} for i in range(n)]


def _read_text(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _sleepy(seconds: float = 0.0) -> list[dict]:
    time.sleep(seconds)
    return [{"slept": seconds}]


def _record_and_maybe_die(log_dir: str, key: int,
                          crash: bool) -> int:
    """Log every invocation; on the first crashing call, die the way a
    killed worker machine would (no exception, no cleanup)."""
    with open(os.path.join(log_dir, f"{key}.log"), "a") as handle:
        handle.write("run\n")
    if crash:
        sentinel = os.path.join(log_dir, "crashed")
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os._exit(13)
    return key * 10


@pytest.fixture
def squares_experiment():
    register_experiment("_squares_test", _squares,
                        "test experiment", figure=False)
    yield "_squares_test"
    unregister_experiment("_squares_test")


@pytest.fixture
def sleepy_experiment():
    register_experiment("_sleepy_test", _sleepy,
                        "test experiment", figure=False)
    yield "_sleepy_test"
    unregister_experiment("_sleepy_test")


class TestResolveMode:
    def test_single_job_runs_inline(self, squares_experiment):
        assert resolve_mode([Job(squares_experiment)]) == "inline"

    def test_batch_uses_processes(self, squares_experiment):
        # pure-Python CPU-bound experiments gain nothing from threads
        jobs = [Job(squares_experiment, {"n": n}) for n in (1, 2)]
        assert resolve_mode(jobs) == "process"

    def test_explicit_mode_wins(self, squares_experiment):
        jobs = [Job(squares_experiment), Job(squares_experiment)]
        assert resolve_mode(jobs, "inline") == "inline"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            resolve_mode([], "warp")


class TestExecute:
    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_modes_agree_and_preserve_order(self, squares_experiment,
                                            mode):
        jobs = [Job(squares_experiment, {"n": n}) for n in (1, 3, 2)]
        results = execute(jobs, mode=mode)
        assert [r.job for r in results] == jobs
        assert [len(r.rows) for r in results] == [1, 3, 2]
        assert all(r.ok for r in results)

    def test_wall_time_captured(self, squares_experiment):
        (result,) = execute([Job(squares_experiment)], mode="inline")
        assert result.elapsed_s > 0.0

    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_errors_are_aggregated_not_raised(self, squares_experiment,
                                              mode):
        jobs = [
            Job(squares_experiment, {"n": 2}),
            Job(squares_experiment, {"fail": True}),
            Job(squares_experiment, {"n": 1}),
        ]
        results = execute(jobs, mode=mode)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].rows is None
        assert "ValueError: boom" in results[1].error

    def test_empty_batch(self):
        assert execute([]) == []


class TestJobTimeout:
    def test_hung_job_becomes_a_per_job_error(self, sleepy_experiment):
        jobs = [Job(sleepy_experiment, {"seconds": 0.0}),
                Job(sleepy_experiment, {"seconds": 30.0})]
        started = time.perf_counter()
        results = execute(jobs, mode="process", max_workers=2,
                          timeout_s=0.5)
        # the batch returns promptly: the hung worker was terminated
        # instead of being waited on at shutdown
        assert time.perf_counter() - started < 10.0
        assert results[0].ok
        assert not results[1].ok
        assert "TimeoutError" in results[1].error
        assert results[1].rows is None

    def test_fast_jobs_unaffected_by_a_generous_timeout(
            self, squares_experiment):
        jobs = [Job(squares_experiment, {"n": n}) for n in (1, 2)]
        results = execute(jobs, mode="thread", timeout_s=30.0)
        assert all(r.ok for r in results)

    def test_nonpositive_timeout_rejected(self, squares_experiment):
        with pytest.raises(ConfigError):
            execute([Job(squares_experiment)], timeout_s=0.0)
        with pytest.raises(ConfigError):
            execute([Job(squares_experiment)], timeout_s=-1.0)


class TestParallelMap:
    def test_order_preserved(self):
        results = parallel_map(pow, [(2, 3), (3, 2), (2, 5)],
                               mode="thread")
        assert results == [8, 9, 32]

    def test_process_mode(self):
        results = parallel_map(pow, [(2, n) for n in range(4)],
                               mode="process")
        assert results == [1, 2, 4, 8]

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(divmod, [(1, 1), (1, 0)], mode="thread")

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_user_oserror_propagates_without_rerun(self, tmp_path, mode):
        # an OSError raised by func is a user error, not a pool
        # failure; it must propagate instead of re-running the map
        present = tmp_path / "present.txt"
        present.write_text("ok")
        with pytest.raises(FileNotFoundError):
            parallel_map(_read_text,
                         [(str(present),),
                          (str(tmp_path / "missing.txt"),)],
                         mode=mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            parallel_map(pow, [(1, 1), (2, 2)], mode="warp")

    def test_stats_stay_zero_on_a_clean_run(self):
        stats: dict = {}
        results = parallel_map(pow, [(2, n) for n in range(4)],
                               mode="thread", stats=stats)
        assert results == [1, 2, 4, 8]
        assert stats["retried"] == 0
        # pool reuse is the only other stat a clean run may report
        assert set(stats) <= {"retried", "pool_reused"}

class TestPoolReuse:
    """The persistent pool registry: reuse, eviction, shutdown."""

    def test_same_pool_serves_consecutive_calls(self):
        executor.shutdown_pools()
        stats: dict = {}
        assert parallel_map(pow, [(2, 2), (3, 2)], mode="thread",
                            stats=stats) == [4, 9]
        assert stats.get("pool_reused", 0) == 0
        (key,) = executor._POOLS
        first = executor._POOLS[key]
        assert parallel_map(pow, [(4, 2), (5, 2)], mode="thread",
                            stats=stats) == [16, 25]
        assert stats["pool_reused"] == 1
        assert executor._POOLS[key] is first

    def test_payload_broadcast_to_process_workers(self):
        executor.shutdown_pools()
        cells = {"cells": (1, 2, 3)}
        results = parallel_map(_payload_echo, [(1,), (2,)],
                               mode="process", payload=cells)
        assert results == [(1, cells), (2, cells)]

    def test_new_payload_evicts_the_stale_pool(self):
        executor.shutdown_pools()
        parallel_map(_payload_echo, [(1,), (2,)], mode="process",
                     payload="a")
        keys_a = set(executor._POOLS)
        assert len(keys_a) == 1
        stats: dict = {}
        results = parallel_map(_payload_echo, [(1,), (2,)],
                               mode="process", payload="b", stats=stats)
        # workers must observe the new broadcast, never the stale one
        assert results == [(1, "b"), (2, "b")]
        assert stats.get("pool_reused", 0) == 0
        keys_b = set(executor._POOLS)
        assert len(keys_b) == 1 and keys_a.isdisjoint(keys_b)

    def test_stale_payload_cleared_for_payloadless_calls(self):
        parallel_map(_payload_echo, [(1,), (2,)], mode="thread",
                     payload="warm")
        results = parallel_map(_payload_echo, [(1,), (2,)],
                               mode="thread")
        assert results == [(1, None), (2, None)]

    def test_shutdown_pools_empties_the_registry(self):
        parallel_map(pow, [(2, 2), (3, 2)], mode="thread")
        assert executor._POOLS
        executor.shutdown_pools()
        assert not executor._POOLS
        # the next call transparently builds a fresh pool
        assert parallel_map(pow, [(2, 2), (3, 2)],
                            mode="thread") == [4, 9]


class TestBrokenPool:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill chaos needs fork inheritance")
    def test_broken_pool_reruns_only_incomplete_items(self, tmp_path):
        """A worker dying mid-run must not discard completed items:
        only the ones the broken pool dropped are re-run (under the
        thread fallback), and ``stats`` reports how many."""
        log_dir = str(tmp_path)
        args = [(log_dir, key, key == 2) for key in range(4)]
        stats: dict = {}
        results = parallel_map(_record_and_maybe_die, args,
                               mode="process", stats=stats)
        assert results == [0, 10, 20, 30]
        assert stats["retried"] >= 1
        # the re-run happened: the crashing item ran exactly twice
        crash_log = tmp_path / "2.log"
        assert crash_log.read_text().count("run") == 2
        # invocations = 4 successes + the attempts the broken pool
        # swallowed (at least the crash itself; a dropped item may
        # have died before ever starting, so an upper bound of one
        # extra attempt per retried item)
        total = sum((tmp_path / f"{k}.log").read_text().count("run")
                    for k in range(4))
        assert 4 + 1 <= total <= 4 + stats["retried"]
