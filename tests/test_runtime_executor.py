"""Tests for the parallel executor: ordering, errors, mode resolution."""

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    Job,
    execute,
    parallel_map,
    register_experiment,
    resolve_mode,
    unregister_experiment,
)


def _squares(n: int = 3, fail: bool = False) -> list[dict]:
    if fail:
        raise ValueError("boom")
    return [{"i": i, "sq": i * i} for i in range(n)]


def _read_text(path: str) -> str:
    with open(path) as handle:
        return handle.read()


@pytest.fixture
def squares_experiment():
    register_experiment("_squares_test", _squares,
                        "test experiment", figure=False)
    yield "_squares_test"
    unregister_experiment("_squares_test")


class TestResolveMode:
    def test_single_job_runs_inline(self, squares_experiment):
        assert resolve_mode([Job(squares_experiment)]) == "inline"

    def test_batch_uses_processes(self, squares_experiment):
        # pure-Python CPU-bound experiments gain nothing from threads
        jobs = [Job(squares_experiment, {"n": n}) for n in (1, 2)]
        assert resolve_mode(jobs) == "process"

    def test_explicit_mode_wins(self, squares_experiment):
        jobs = [Job(squares_experiment), Job(squares_experiment)]
        assert resolve_mode(jobs, "inline") == "inline"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            resolve_mode([], "warp")


class TestExecute:
    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_modes_agree_and_preserve_order(self, squares_experiment,
                                            mode):
        jobs = [Job(squares_experiment, {"n": n}) for n in (1, 3, 2)]
        results = execute(jobs, mode=mode)
        assert [r.job for r in results] == jobs
        assert [len(r.rows) for r in results] == [1, 3, 2]
        assert all(r.ok for r in results)

    def test_wall_time_captured(self, squares_experiment):
        (result,) = execute([Job(squares_experiment)], mode="inline")
        assert result.elapsed_s > 0.0

    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_errors_are_aggregated_not_raised(self, squares_experiment,
                                              mode):
        jobs = [
            Job(squares_experiment, {"n": 2}),
            Job(squares_experiment, {"fail": True}),
            Job(squares_experiment, {"n": 1}),
        ]
        results = execute(jobs, mode=mode)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].rows is None
        assert "ValueError: boom" in results[1].error

    def test_empty_batch(self):
        assert execute([]) == []


class TestParallelMap:
    def test_order_preserved(self):
        results = parallel_map(pow, [(2, 3), (3, 2), (2, 5)],
                               mode="thread")
        assert results == [8, 9, 32]

    def test_process_mode(self):
        results = parallel_map(pow, [(2, n) for n in range(4)],
                               mode="process")
        assert results == [1, 2, 4, 8]

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(divmod, [(1, 1), (1, 0)], mode="thread")

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_user_oserror_propagates_without_rerun(self, tmp_path, mode):
        # an OSError raised by func is a user error, not a pool
        # failure; it must propagate instead of re-running the map
        present = tmp_path / "present.txt"
        present.write_text("ok")
        with pytest.raises(FileNotFoundError):
            parallel_map(_read_text,
                         [(str(present),),
                          (str(tmp_path / "missing.txt"),)],
                         mode=mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            parallel_map(pow, [(1, 1), (2, 2)], mode="warp")
