"""Tests for the serving simulator, cluster dispatch and memo cache."""

import pytest

from repro.core import make_smart
from repro.errors import ConfigError
from repro.serving import (
    FixedSizeBatching,
    LayerMemoCache,
    ServingSimulator,
    TimeoutBatching,
    generate_trace,
    get_scenario,
    make_policy,
)
from repro.serving.workload import Request
from repro.systolic.layers import ConvLayer, Network

TOY = Network("toy", (
    ConvLayer("c1", 16, 16, 8, 16, 3, 3, padding=1),
    ConvLayer("c2", 16, 16, 16, 16, 3, 3, padding=1),
    ConvLayer("fc", 1, 1, 4096, 10, 1, 1, kind="fc"),
))


def toy_simulator(**kwargs):
    kwargs.setdefault("policy", FixedSizeBatching(batch_size=4))
    return ServingSimulator(make_smart(), networks={"toy": TOY}, **kwargs)


def toy_trace(n, gap=1e-5, model="toy"):
    return [Request(i, model, (i + 1) * gap) for i in range(n)]


class TestEventLoop:
    def test_every_request_served_once(self):
        result = toy_simulator().run(toy_trace(42))
        assert len(result.latencies) == 42
        assert all(lat > 0 for lat in result.latencies)
        assert sum(b.size for b in result.batches) == 42

    def test_fixed_policy_batch_sizes(self):
        result = toy_simulator().run(toy_trace(42))
        sizes = [b.size for b in result.batches]
        assert sizes[:-1] == [4] * 10  # full batches
        assert sizes[-1] == 2          # the leftover drains at the end

    def test_timeout_policy_flushes_at_deadline(self):
        policy = TimeoutBatching(max_batch=8, max_wait=1e-4)
        sim = toy_simulator(policy=policy)
        # 3 requests, then a long silence before a 4th triggers flush
        trace = [Request(0, "toy", 0.0), Request(1, "toy", 1e-5),
                 Request(2, "toy", 2e-5), Request(3, "toy", 1.0)]
        result = sim.run(trace)
        first = result.batches[0]
        assert first.size == 3
        assert first.flush == pytest.approx(1e-4)

    def test_timeout_policy_flushes_at_max_batch(self):
        policy = TimeoutBatching(max_batch=2, max_wait=10.0)
        result = toy_simulator(policy=policy).run(toy_trace(6))
        assert [b.size for b in result.batches] == [2, 2, 2]

    def test_batches_queue_behind_busy_replica(self):
        """One replica: consecutive batches serialise."""
        result = toy_simulator(replicas=1).run(toy_trace(12, gap=1e-9))
        for earlier, later in zip(result.batches, result.batches[1:]):
            assert later.start >= earlier.done

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            toy_simulator().run([])

    def test_latency_includes_queueing(self):
        """The first request of a fixed batch waits for the fourth."""
        result = toy_simulator().run(toy_trace(4, gap=1e-3))
        batch = result.batches[0]
        assert batch.flush == pytest.approx(4e-3)
        first_latency = result.latencies[0]
        assert first_latency >= 3e-3  # waited for the batch to fill


class TestDispatch:
    def test_round_robin_alternates(self):
        sim = toy_simulator(replicas=2, dispatch="round_robin")
        result = sim.run(toy_trace(16))
        assert [b.replica for b in result.batches] == [0, 1, 0, 1]

    def test_shard_pins_model_to_one_replica(self):
        sim = ServingSimulator(
            make_smart(), replicas=3, dispatch="shard",
            policy=FixedSizeBatching(batch_size=4),
            networks={"toy": TOY, "toy2": TOY},
        )
        trace = toy_trace(16) + [
            Request(100 + r.request_id, "toy2", r.arrival + 1e-7)
            for r in toy_trace(16)
        ]
        result = sim.run(trace)
        by_model = {}
        for batch in result.batches:
            by_model.setdefault(batch.model, set()).add(batch.replica)
        assert all(len(replicas) == 1 for replicas in by_model.values())

    def test_more_replicas_cut_tail_latency(self):
        trace = toy_trace(64, gap=1e-7)  # overload for one replica
        one = toy_simulator(replicas=1,
                            dispatch="least_loaded").run(trace)
        four = toy_simulator(replicas=4,
                             dispatch="least_loaded").run(trace)
        assert four.latency_percentile(99) < one.latency_percentile(99)
        assert four.throughput_rps >= one.throughput_rps

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ConfigError):
            toy_simulator(dispatch="random")

    def test_zero_replicas_rejected(self):
        with pytest.raises(ConfigError):
            toy_simulator(replicas=0)


class TestMemoCache:
    def test_identical_latencies_and_10x_fewer_evaluations(self):
        """The memo cache must not change a single per-request latency
        while cutting layer simulations by >= 10x (the acceptance bar;
        at trace scale the factor grows with requests/distinct pairs)."""
        scenario = get_scenario("steady")
        policy = make_policy("timeout")
        cached = ServingSimulator("SMART", replicas=2, policy=policy)
        rate = scenario.load * cached.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, 500, seed=11)

        hot = cached.run(trace)
        cold = ServingSimulator(
            "SMART", replicas=2, policy=policy,
            cache=LayerMemoCache(enabled=False),
        ).run(trace)

        assert hot.latencies == cold.latencies
        assert hot.energy_per_request == cold.energy_per_request
        assert cold.cache.misses >= 10 * hot.cache.misses

    def test_layer_results_shared_across_batches(self):
        cache = LayerMemoCache()
        sim = toy_simulator(cache=cache)
        sim.run(toy_trace(16))
        evaluated = cache.stats.misses
        sim.run(toy_trace(16))  # same (layer, batch) keys again
        assert cache.stats.misses == evaluated

    def test_disabled_cache_stores_nothing(self):
        cache = LayerMemoCache(enabled=False)
        toy_simulator(cache=cache).run(toy_trace(8))
        assert len(cache) == 0
        assert cache.stats.hits == 0
        assert cache.stats.misses > 0

    def test_memo_key_is_structural_not_identity(self):
        """Two equal accelerator configs share memo entries."""
        cache = LayerMemoCache()
        layer = TOY.layers[0]
        cache.simulate_layer(make_smart(), layer, 4)
        cache.simulate_layer(make_smart(), layer, 4)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_named_networks_do_not_collide(self):
        """Regression: run/energy memo keys used network *names*, so
        two different networks sharing a name returned each other's
        cached results."""
        small = Network("toy", TOY.layers[:1])
        cache = LayerMemoCache()
        acc = make_smart()
        fast = cache.simulate(acc, small, 4).latency
        slow = cache.simulate(acc, TOY, 4).latency
        assert slow > fast
        assert cache.simulate(acc, small, 4).latency == fast

    def test_stats_hit_rate(self):
        cache = LayerMemoCache()
        assert cache.stats.hit_rate == 0.0
        layer = TOY.layers[0]
        cache.simulate_layer(make_smart(), layer, 2)
        cache.simulate_layer(make_smart(), layer, 2)
        cache.simulate_layer(make_smart(), layer, 3)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_energy_path_counts_into_stats(self):
        """The energy memo level reports hits/misses like the layer
        level (it used to be invisible in CacheStats)."""
        cache = LayerMemoCache()
        acc = make_smart()
        first = cache.energy_total(acc, TOY, 4)
        assert (cache.stats.energy_hits, cache.stats.energy_misses) == (0, 1)
        assert cache.energy_total(acc, TOY, 4) == first
        assert (cache.stats.energy_hits, cache.stats.energy_misses) == (1, 1)
        assert cache.stats.energy_lookups == 2
        # a structurally equal accelerator hits the same entry
        assert cache.energy_total(make_smart(), TOY, 4) == first
        assert cache.stats.energy_hits == 2

    def test_disabled_cache_energy_always_misses(self):
        cache = LayerMemoCache(enabled=False)
        acc = make_smart()
        cache.energy_total(acc, TOY, 2)
        cache.energy_total(acc, TOY, 2)
        assert cache.stats.energy_hits == 0
        assert cache.stats.energy_misses == 2

    def test_run_reports_energy_stats_delta(self):
        result = toy_simulator().run(toy_trace(8))
        assert result.cache.energy_misses > 0
        assert result.cache.energy_lookups >= result.cache.energy_misses


class TestInterner:
    def test_structural_values_share_one_id(self):
        from repro.serving import Interner

        interner = Interner()
        a, b = make_smart(), make_smart()
        assert a is not b
        assert interner.intern(a) == interner.intern(b)
        assert interner.intern(a) == interner.intern(a)  # identity path
        assert len(interner) == 1

    def test_distinct_values_get_distinct_ids(self):
        from repro.serving import Interner

        interner = Interner()
        small = Network("toy", TOY.layers[:1])
        assert interner.intern(TOY) != interner.intern(small)
        assert len(interner) == 2


class TestScenarioRuns:
    @pytest.mark.parametrize("name", ["steady", "bursty", "ramp"])
    def test_stock_scenarios_produce_percentile_rows(self, name):
        sim = ServingSimulator("SMART", replicas=2,
                               policy=make_policy("timeout"))
        row = sim.run_scenario(name, 150, seed=2).to_row()
        assert row["scenario"] == name
        assert 0 < row["p50_us"] <= row["p95_us"] <= row["p99_us"]
        assert row["throughput_rps"] > 0
        assert row["energy_per_req_uj"] > 0
        assert 0 < row["utilization"] <= 1.0

    def test_calibrated_rate_scales_with_replicas(self):
        scenario = get_scenario("steady")
        one = ServingSimulator("SMART", replicas=1)
        two = ServingSimulator("SMART", replicas=2,
                               cache=one.cache)
        assert two.capacity_rps(scenario) == pytest.approx(
            2 * one.capacity_rps(scenario)
        )

    def test_unknown_model_in_trace_rejected(self):
        sim = toy_simulator()
        with pytest.raises(ConfigError):
            sim.run([Request(0, "mystery", 0.0)])

    def test_serving_experiments_registered(self):
        from repro.runtime import registry

        names = registry.names()
        assert "serving_grid" in names
        assert "serving_scaling" in names

    def test_serving_scaling_rows(self):
        from repro.serving.experiments import serving_scaling

        rows = serving_scaling(requests=120, replicas=2)
        assert len(rows) == 1
        assert rows[0]["replicas"] == 2
