"""Shared fixtures: keep runtime state out of the working directory."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolate_runtime_state(tmp_path, monkeypatch):
    """Point the result cache and run ledger at a per-test tmp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setenv("REPRO_RUN_STORE",
                       str(tmp_path / "repro-cache" / "runs.jsonl"))
