"""Tests for the reporting helpers (geomean, tables, JSON rendering)."""

import json

import pytest

from repro.errors import ConfigError
from repro.eval.report import (
    format_table,
    fraction_within,
    geomean,
    percentile,
    render_rows,
    to_json,
)


class TestGeomean:
    def test_value(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geomean([])

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            geomean([1.0, -2.0])

    def test_accepts_any_iterable(self):
        assert geomean(v for v in (3.0, 3.0)) == pytest.approx(3.0)


class TestFractionWithin:
    def test_counts_at_or_below_bound(self):
        assert fraction_within([1.0, 2.0, 3.0, 4.0], 2.0) == 0.5

    def test_non_finite_values_miss(self):
        values = [1.0, float("inf"), float("nan")]
        assert fraction_within(values, 10.0) == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            fraction_within([], 1.0)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_extremes(self):
        assert percentile([5.0, 1.0], 0) == 1.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50)

    def test_rank_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 101)
        with pytest.raises(ConfigError):
            percentile([1.0], -1)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "v"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # every line padded to the same visual width
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting_uses_4_significant_digits(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text
        assert "3.14159" not in text

    def test_non_floats_rendered_verbatim(self):
        text = format_table(["a", "b"], [[True, "xyz"]])
        assert "True" in text and "xyz" in text


class TestRenderRows:
    ROWS = [{"name": "a", "v": 1.25}, {"name": "b", "v": 2.0}]

    def test_table_path(self):
        text = render_rows(self.ROWS)
        assert text.splitlines()[0].startswith("name")
        assert "1.25" in text

    def test_empty_rows_notice(self):
        assert render_rows([]) == "(no rows)"

    def test_json_path_round_trips(self):
        assert json.loads(render_rows(self.ROWS, as_json=True)) == \
            self.ROWS

    def test_json_empty_rows(self):
        assert json.loads(render_rows([], as_json=True)) == []

    def test_missing_cells_blank(self):
        text = render_rows([{"a": 1, "b": 2}, {"a": 3}])
        assert text  # second row simply leaves column b empty


class TestToJson:
    def test_stringifies_unserialisable(self):
        payload = json.loads(to_json({"path": object()}))
        assert isinstance(payload["path"], str)
