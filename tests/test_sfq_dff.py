"""Device-level SFQ DFF test (paper Fig 1b/c).

Builds the paper's introductory circuit — a storage ring clocked by a
second pulse line — in the transient simulator and verifies its defining
behaviour (Fig 1c): a data pulse is *held* as a circulating flux quantum
and only released when the clock pulse arrives; a clock with no stored
data emits nothing; data without a clock stays stored.
"""

import math

import pytest

from repro.spice import Netlist, TransientSimulator
from repro.spice.circuits import SfqCellLibrary, build_jtl_chain
from repro.spice.measure import detect_pulses

#: Tuned cell parameters: the 45 pH storage loop holds the SFQ as a
#: ~45 uA circulating current (sub-critical at the 0.6-biased output
#: junction); the 20 pH clock coupling alone is also sub-critical; the
#: sum trips the output exactly once.
STORE_BIAS = 0.7
OUT_BIAS = 0.6
LOOP_L = 45e-12
CLK_L = 20e-12


def _dff(data_times, clock_times):
    """The Fig 1b storage cell with JTL-conditioned data/clock feeds."""
    lib = SfqCellLibrary()
    netlist = Netlist("dff")
    area = 2.0 * lib.jj.critical_current * 2e-12 * math.sqrt(2 * math.pi)
    netlist.add_pulse("d_src", "d0", tuple(data_times) or (500e-12,),
                      sigma=2e-12, area=area)
    netlist.add_junction("d_esd", "d0", "gnd", lib.jj)
    netlist.add_bias("d_ib", "d0", lib.bias_current)
    node, _ = build_jtl_chain(netlist, "din", "d0", 2, lib)
    netlist.add_inductor("l_in", node, "store", 2e-12)
    netlist.add_junction("jj_in", "store", "gnd", lib.jj.scaled(1.2))
    netlist.add_bias("ib_in", "store",
                     STORE_BIAS * lib.jj.critical_current)
    netlist.add_inductor("l_loop", "store", "out", LOOP_L)
    netlist.add_junction("jj_out", "out", "gnd", lib.jj)
    netlist.add_bias("ib_out", "out",
                     OUT_BIAS * lib.jj.critical_current)
    if clock_times:
        netlist.add_pulse("c_src", "c0", tuple(clock_times), sigma=2e-12,
                          area=area)
        netlist.add_junction("c_esd", "c0", "gnd", lib.jj)
        netlist.add_bias("c_ib", "c0", lib.bias_current)
        cnode, _ = build_jtl_chain(netlist, "clk", "c0", 2, lib)
        netlist.add_inductor("l_clk", cnode, "out", CLK_L)
    _, load_jjs = build_jtl_chain(netlist, "ld", "out", 1, lib)
    return netlist, load_jjs[-1]


class TestDffBehaviour:
    def test_clock_without_data_emits_nothing(self):
        netlist, probe = _dff(data_times=[], clock_times=[60e-12])
        result = TransientSimulator(netlist).run(140e-12)
        assert len(detect_pulses(result, probe)) == 0

    def test_data_without_clock_stays_stored(self):
        netlist, probe = _dff(data_times=[20e-12], clock_times=[])
        result = TransientSimulator(netlist).run(140e-12)
        assert len(detect_pulses(result, probe)) == 0

    def test_data_then_clock_emits_exactly_one_pulse(self):
        netlist, probe = _dff(data_times=[20e-12], clock_times=[80e-12])
        result = TransientSimulator(netlist).run(140e-12)
        assert len(detect_pulses(result, probe)) == 1

    def test_release_is_clock_aligned(self):
        """The output follows the clock edge, not the data arrival."""
        netlist, probe = _dff(data_times=[20e-12], clock_times=[80e-12])
        result = TransientSimulator(netlist).run(140e-12)
        pulses = detect_pulses(result, probe)
        assert pulses and pulses[0] > 80e-12

    def test_release_tracks_clock_timing(self):
        """Moving the clock moves the output by the same amount."""
        arrivals = []
        for clock in (60e-12, 100e-12):
            netlist, probe = _dff(data_times=[20e-12],
                                  clock_times=[clock])
            result = TransientSimulator(netlist).run(160e-12)
            arrivals.append(detect_pulses(result, probe)[0])
        assert arrivals[1] - arrivals[0] == pytest.approx(40e-12,
                                                          rel=0.15)
