"""Tests for request traces, model mixes and batching policies."""

import random

import pytest

from repro.errors import ConfigError
from repro.models import model_names
from repro.serving import (
    ARRIVAL_SHAPES,
    BurstyProcess,
    DiurnalProcess,
    FixedSizeBatching,
    ModelMix,
    PoissonProcess,
    RampProcess,
    SCENARIOS,
    Scenario,
    TimeoutBatching,
    generate_trace,
    get_scenario,
    make_policy,
)
from repro.serving.workload import Request


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", [
        PoissonProcess(1000.0),
        BurstyProcess(1000.0),
        RampProcess(1000.0),
        DiurnalProcess(1000.0),
    ])
    def test_times_ascending_and_complete(self, process):
        times = process.generate(500, random.Random(1))
        assert len(times) == 500
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_poisson_mean_rate(self):
        times = PoissonProcess(2000.0).generate(8000, random.Random(2))
        realised = len(times) / times[-1]
        assert realised == pytest.approx(2000.0, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        """Squared coefficient of variation of inter-arrivals > 1."""
        rng = random.Random(3)
        times = BurstyProcess(1000.0, burst_factor=8.0).generate(4000, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean**2 > 1.5

    def test_ramp_accelerates(self):
        times = RampProcess(1000.0, start_fraction=0.2).generate(
            2000, random.Random(4))
        first_half = times[999] - times[0]
        second_half = times[-1] - times[999]
        assert second_half < first_half

    def test_diurnal_crest_is_denser_than_trough(self):
        """The mid-cycle crest packs more arrivals per unit time than
        the opening trough (cosine wave, trough first)."""
        process = DiurnalProcess(1000.0, amplitude=0.8, cycles=1.0)
        times = process.generate(4000, random.Random(5))
        span = times[-1] - times[0]
        third = span / 3.0
        counts = [
            sum(1 for t in times
                if times[0] + k * third <= t < times[0] + (k + 1) * third)
            for k in range(3)
        ]
        assert counts[1] > counts[0]
        assert counts[1] > counts[2]

    def test_diurnal_validation(self):
        with pytest.raises(ConfigError):
            DiurnalProcess(1000.0, amplitude=1.5)
        with pytest.raises(ConfigError):
            DiurnalProcess(1000.0, cycles=0.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            PoissonProcess(0.0)
        with pytest.raises(ConfigError):
            BurstyProcess(100.0, burst_factor=1.0)
        with pytest.raises(ConfigError):
            RampProcess(100.0, start_fraction=0.0)
        with pytest.raises(ConfigError):
            DiurnalProcess(100.0, phase=float("nan"))


class TestRegionsAndPhases:
    """The geo tier's workload hooks: timezone-shifted waves and
    region-tagged streams must keep the streaming parity and
    shard-split exactness contracts."""

    @pytest.mark.parametrize("phase", [0.25, 0.375, 0.875])
    def test_tz_shifted_diurnal_streams_bit_identical(self, phase):
        process = DiurnalProcess(1000.0, phase=phase)
        materialised = process.generate(800, random.Random(7))
        streamed = list(process.times(800, random.Random(7)))
        assert streamed == materialised

    def test_zero_phase_matches_stock_wave_bitwise(self):
        stock = DiurnalProcess(1000.0).generate(500, random.Random(8))
        phased = DiurnalProcess(1000.0, phase=0.0).generate(
            500, random.Random(8))
        assert phased == stock

    def test_phase_half_swaps_crest_and_trough(self):
        # half a cycle of offset starts the day at the crest, so the
        # opening third is now the dense one
        process = DiurnalProcess(1000.0, amplitude=0.8, cycles=1.0,
                                 phase=0.5)
        times = process.generate(4000, random.Random(5))
        span = times[-1] - times[0]
        third = span / 3.0
        counts = [
            sum(1 for t in times
                if times[0] + k * third <= t
                < times[0] + (k + 1) * third)
            for k in range(3)
        ]
        assert counts[0] > counts[1]

    def test_region_tag_rides_the_trace(self):
        from repro.serving import stream_trace

        scenario = get_scenario("bursty")
        plain = tuple(stream_trace(scenario, 20000.0, 300, seed=9))
        tagged = tuple(stream_trace(scenario, 20000.0, 300, seed=9,
                                    region="eu-west"))
        assert all(r.region == "eu-west" for r in tagged)
        # the tag never perturbs arrivals or model draws
        assert [(r.request_id, r.arrival, r.model) for r in tagged] \
            == [(r.request_id, r.arrival, r.model) for r in plain]

    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_region_tagged_stream_shards_without_loss(self, shards):
        from repro.serving import shard_trace, stream_trace

        scenario = get_scenario("diurnal")
        full = tuple(stream_trace(scenario, 20000.0, 600, seed=9,
                                  region="ap-south"))
        seen: list = []
        for shard in range(shards):
            seen.extend(shard_trace(scenario, 20000.0, 600, seed=9,
                                    shards=shards, shard=shard,
                                    replicas=shards,
                                    region="ap-south"))
        assert len(seen) == len(full)  # nothing lost or duplicated
        by_id = sorted(seen, key=lambda r: r.request_id)
        assert tuple(by_id) == full
        assert all(r.region == "ap-south" for r in seen)


class TestModelMix:
    def test_uniform_zoo_covers_every_model(self):
        mix = ModelMix.uniform_zoo()
        assert set(mix.models()) == set(model_names())
        fractions = mix.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_hot_mix_shares(self):
        mix = ModelMix.hot("ResNet50", 0.5)
        assert mix.fractions()["ResNet50"] == pytest.approx(0.5)

    def test_hot_mix_rejects_unknown_model(self):
        with pytest.raises(ConfigError):
            ModelMix.hot("NotANet")

    def test_empty_and_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            ModelMix(())
        with pytest.raises(ConfigError):
            ModelMix((("AlexNet", -1.0),))


class TestScenarios:
    def test_stock_scenarios_cover_three_shapes(self):
        assert len(SCENARIOS) >= 3
        assert {s.shape for s in SCENARIOS.values()} == set(ARRIVAL_SHAPES)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError):
            get_scenario("tsunami")

    def test_bad_shape_and_load_rejected(self):
        with pytest.raises(ConfigError):
            Scenario("x", shape="constant", load=0.5)
        # overload scenarios may exceed capacity, but not absurdly
        with pytest.raises(ConfigError):
            Scenario("x", shape="poisson", load=5.0)
        with pytest.raises(ConfigError):
            Scenario("x", shape="poisson", load=0.5, faults=-1)

    def test_trace_is_deterministic(self):
        scenario = get_scenario("steady")
        a = generate_trace(scenario, 1000.0, 200, seed=5)
        b = generate_trace(scenario, 1000.0, 200, seed=5)
        c = generate_trace(scenario, 1000.0, 200, seed=6)
        assert a == b
        assert a != c

    def test_trace_requests_well_formed(self):
        scenario = get_scenario("bursty")
        trace = generate_trace(scenario, 1000.0, 300, seed=1)
        assert [r.request_id for r in trace] == list(range(300))
        assert all(r.model in model_names() for r in trace)
        assert all(b.arrival > a.arrival for a, b in zip(trace, trace[1:]))


def _requests(arrivals, model="AlexNet"):
    return [Request(i, model, t) for i, t in enumerate(arrivals)]


class TestBatchingPolicies:
    def test_fixed_ready_at_size(self):
        policy = FixedSizeBatching(batch_size=4)
        assert not policy.ready(_requests([0.0, 1.0, 2.0]))
        assert policy.ready(_requests([0.0, 1.0, 2.0, 3.0]))
        assert policy.deadline(_requests([0.0])) is None

    def test_timeout_deadline_tracks_oldest(self):
        policy = TimeoutBatching(max_batch=8, max_wait=1e-4)
        queue = _requests([2.0, 3.0])
        assert policy.deadline(queue) == pytest.approx(2.0 + 1e-4)
        assert policy.deadline([]) is None

    def test_timeout_ready_at_max_batch(self):
        policy = TimeoutBatching(max_batch=2, max_wait=1e-4)
        assert policy.ready(_requests([0.0, 1.0]))

    def test_make_policy(self):
        assert make_policy("fixed", batch_size=16).batch_size == 16
        timeout = make_policy("timeout", batch_size=4, max_wait=1e-3)
        assert timeout.max_batch == 4
        assert timeout.max_wait == pytest.approx(1e-3)
        with pytest.raises(ConfigError):
            make_policy("adaptive")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            FixedSizeBatching(0)
        with pytest.raises(ConfigError):
            TimeoutBatching(max_batch=4, max_wait=0.0)
