"""Geometry-chaining tests: each layer must consume its predecessor.

A wrong layer table silently corrupts every figure, so these tests walk
each network and check that spatial dimensions and channel counts chain
correctly through convolutions and pools (inception branches fan out
from the same input; residual blocks re-join).
"""

import pytest

from repro.models import get_model, model_names


def _sequential_pairs(net):
    """Consecutive layer pairs that are truly sequential (no branching)."""
    branching = {"GoogleNet", "ResNet50", "FasterRCNN"}
    if net.name in branching:
        return []
    return list(zip(net.layers, net.layers[1:]))


@pytest.mark.parametrize("name", ["AlexNet", "VGG16", "MobileNet"])
def test_channels_chain(name):
    net = get_model(name)
    for prev, nxt in _sequential_pairs(net):
        if nxt.kind == "fc" and prev.kind != "fc":
            # flatten: features = H*W*C of the previous output
            assert nxt.kernel_volume == (
                prev.out_h * prev.out_w * prev.out_c
            ) or nxt.in_c == prev.out_c
        else:
            assert nxt.in_c == prev.out_c, (
                f"{name}: {nxt.name} expects {nxt.in_c} channels, "
                f"{prev.name} makes {prev.out_c}"
            )


@pytest.mark.parametrize("name", ["AlexNet", "VGG16", "MobileNet"])
def test_spatial_dims_chain(name):
    net = get_model(name)
    for prev, nxt in _sequential_pairs(net):
        if nxt.kind == "fc":
            continue
        assert (nxt.in_h, nxt.in_w) == (prev.out_h, prev.out_w), (
            f"{name}: {nxt.name} expects {nxt.in_h}x{nxt.in_w}, "
            f"{prev.name} makes {prev.out_h}x{prev.out_w}"
        )


def test_googlenet_inception_branches_share_input():
    net = get_model("GoogleNet")
    layers = {l.name: l for l in net.layers}
    for module, size, in_c in (("3a", 28, 192), ("4a", 14, 480),
                               ("5b", 7, 832)):
        for branch in ("1x1", "3x3r", "5x5r", "pproj"):
            layer = layers[f"inc{module}_{branch}"]
            assert layer.in_h == size and layer.in_c == in_c


def test_googlenet_concat_widths():
    """Each inception module's branch outputs sum to the next input."""
    net = get_model("GoogleNet")
    layers = {l.name: l for l in net.layers}
    out_3a = sum(layers[f"inc3a_{b}"].out_c
                 for b in ("1x1", "3x3", "5x5", "pproj"))
    assert out_3a == layers["inc3b_1x1"].in_c == 256


def test_resnet_bottleneck_structure():
    net = get_model("ResNet50")
    layers = {l.name: l for l in net.layers}
    assert layers["res2a_a"].out_c == 64
    assert layers["res2a_c"].out_c == 256
    assert layers["res3a_a"].stride == 2          # stage downsample
    assert layers["res3a_proj"].out_c == 512      # projection shortcut
    assert layers["fc"].in_c == 2048


def test_mobilenet_dw_pw_pairing():
    net = get_model("MobileNet")
    layers = list(net.layers)
    dws = [l for l in layers if l.kind == "dwconv"]
    assert len(dws) == 13
    for dw in dws:
        pw = next(l for l in layers
                  if l.name == dw.name.replace("dw", "pw"))
        assert pw.in_c == dw.out_c
        assert pw.kernel_h == pw.kernel_w == 1


def test_faster_rcnn_rpn_heads():
    net = get_model("FasterRCNN")
    layers = {l.name: l for l in net.layers}
    assert layers["rpn_cls"].out_c == 18   # 9 anchors x 2
    assert layers["rpn_reg"].out_c == 36   # 9 anchors x 4
    assert layers["roi_cls"].out_c == 21   # 20 classes + background


@pytest.mark.parametrize("name", model_names())
def test_no_degenerate_layers(name):
    for layer in get_model(name).layers:
        assert layer.out_h >= 1 and layer.out_w >= 1
        if layer.kind != "pool":
            assert layer.macs > 0
            assert layer.weight_bytes > 0
