"""Tests for the transient circuit simulator (JoSIM substitute)."""

import math

import numpy as np
import pytest

from repro.errors import NetlistError, SimulationError
from repro.spice import (
    Netlist,
    TransientSimulator,
    build_jtl_chain,
    build_ptl_link,
    build_splitter_unit,
)
from repro.spice.circuits import SfqCellLibrary
from repro.spice.measure import (
    detect_pulses,
    energy_per_pulse,
    pulse_delay,
    total_dissipated_energy,
)
from repro.units import MM, PHI0


class TestNetlist:
    def test_duplicate_names_rejected(self):
        netlist = Netlist()
        netlist.add_resistor("r1", "a", "gnd", 10.0)
        with pytest.raises(NetlistError):
            netlist.add_resistor("r1", "b", "gnd", 10.0)

    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            Netlist().validate()

    def test_floating_source_rejected(self):
        netlist = Netlist()
        netlist.add_resistor("r1", "a", "gnd", 10.0)
        netlist.add_bias("ib", "floating", 1e-6)
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_nodes_deterministic(self):
        netlist = Netlist()
        netlist.add_resistor("r1", "a", "b", 1.0)
        netlist.add_capacitor("c1", "b", "gnd", 1e-15)
        assert netlist.nodes() == ["a", "b"]


class TestRcPhysics:
    def test_rc_discharge(self):
        """A charged RC node decays with the right time constant."""
        netlist = Netlist()
        netlist.add_capacitor("c", "n", "gnd", 1e-12)
        netlist.add_resistor("r", "n", "gnd", 100.0)
        netlist.add_pulse("i", "n", (5e-12,), sigma=1e-12, area=1e-13)
        sim = TransientSimulator(netlist, dt=1e-14)
        result = sim.run(400e-12)
        v = result.voltage("n")
        peak_idx = int(np.argmax(v))
        peak = v[peak_idx]
        tau = 100.0 * 1e-12  # 100 ps
        t_target = result.times[peak_idx] + tau
        v_tau = float(np.interp(t_target, result.times, v))
        assert v_tau == pytest.approx(peak * math.exp(-1), rel=0.15)

    def test_energy_conservation_bias(self):
        """Resistive dissipation matches 0.5 C V^2 decay budget."""
        netlist = Netlist()
        netlist.add_capacitor("c", "n", "gnd", 1e-12)
        netlist.add_resistor("r", "n", "gnd", 50.0)
        netlist.add_pulse("i", "n", (5e-12,), sigma=1e-12, area=2e-13)
        sim = TransientSimulator(netlist, dt=1e-14)
        result = sim.run(600e-12)
        # all injected charge energy ends up dissipated
        assert result.total_dissipated > 0


class TestJtlPropagation:
    def _chain(self, stages=4, pulses=(20e-12, 60e-12)):
        lib = SfqCellLibrary()
        netlist = Netlist()
        area = 2.0 * lib.jj.critical_current * 2e-12 * math.sqrt(2 * math.pi)
        netlist.add_pulse("src", "in0", pulses, sigma=2e-12, area=area)
        netlist.add_junction("src_jj", "in0", "gnd", lib.jj)
        netlist.add_bias("src_ib", "in0", lib.bias_current)
        out, jjs = build_jtl_chain(netlist, "c", "in0", stages, lib)
        netlist.add_junction("load_jj", out, "gnd", lib.jj)
        netlist.add_bias("load_ib", out, lib.bias_current)
        return netlist, jjs

    def test_single_pulse_propagates(self):
        netlist, jjs = self._chain(pulses=(20e-12,))
        result = TransientSimulator(netlist).run(80e-12)
        assert len(detect_pulses(result, jjs[-1])) == 1

    def test_every_pulse_delivered_exactly_once(self):
        netlist, jjs = self._chain()
        result = TransientSimulator(netlist).run(120e-12)
        for jj in jjs:
            assert len(detect_pulses(result, jj)) == 2

    def test_flux_quantisation(self):
        """A propagated pulse advances each phase by exactly 2 pi."""
        netlist, jjs = self._chain(pulses=(20e-12,))
        result = TransientSimulator(netlist).run(100e-12)
        final = result.phase(jjs[1])[-1]
        slips = final / (2 * math.pi)
        assert slips == pytest.approx(1.0, abs=0.2)

    def test_stage_delay_positive_and_small(self):
        netlist, jjs = self._chain(stages=6, pulses=(20e-12,))
        result = TransientSimulator(netlist).run(120e-12)
        delay = pulse_delay(result, jjs[0], jjs[-1])
        per_stage = delay / 5
        assert 0.5e-12 < per_stage < 10e-12


class TestPtlLink:
    @pytest.mark.parametrize("length_mm", [0.1, 0.8])
    def test_link_delivers_pulses(self, length_mm):
        netlist, probes = build_ptl_link(length_mm * MM,
                                         pulse_times=(20e-12, 60e-12))
        window = 60e-12 + 2 * length_mm * MM / 1e8 + 60e-12
        result = TransientSimulator(netlist).run(window)
        assert len(detect_pulses(result, probes["arrive"])) == 2

    def test_delay_scales_with_length(self):
        delays = {}
        for length_mm in (0.1, 1.0):
            netlist, probes = build_ptl_link(length_mm * MM)
            window = 60e-12 + 2 * length_mm * MM / 1e8 + 60e-12
            result = TransientSimulator(netlist).run(window)
            delays[length_mm] = pulse_delay(result, probes["launch"],
                                            probes["arrive"])
        slope_ps_per_mm = (delays[1.0] - delays[0.1]) / 0.9 * 1e12
        # micro-strip velocity ~1e8 m/s -> ~10 ps/mm
        assert 6.0 < slope_ps_per_mm < 15.0

    def test_delay_matches_analytical_model(self):
        from repro.sfq.ptl import MicrostripPtl
        line = MicrostripPtl()
        length = 1.0 * MM
        netlist, probes = build_ptl_link(length)
        window = 60e-12 + 2 * length / 1e8 + 60e-12
        result = TransientSimulator(netlist).run(window)
        measured = pulse_delay(result, probes["launch"], probes["arrive"])
        # line flight time dominates; allow cell overheads around it
        assert measured == pytest.approx(line.delay(length), rel=0.6)


class TestSplitterUnit:
    def test_splitter_duplicates_pulse(self):
        netlist, probes = build_splitter_unit(0.1 * MM,
                                              pulse_times=(20e-12,))
        result = TransientSimulator(netlist).run(120e-12)
        assert len(detect_pulses(result, probes["arrive"])) == 1
        assert len(detect_pulses(result, probes["arrive_left"])) == 1

    def test_branches_symmetric(self):
        netlist, probes = build_splitter_unit(0.2 * MM,
                                              pulse_times=(20e-12,))
        result = TransientSimulator(netlist).run(140e-12)
        right = pulse_delay(result, probes["launch"], probes["arrive"])
        left = pulse_delay(result, probes["launch"],
                           probes["arrive_left"])
        assert right == pytest.approx(left, rel=0.05)

    def test_energy_per_pulse_order(self):
        """Dissipation per pulse is tens of JJ switch energies."""
        netlist, probes = build_splitter_unit(0.1 * MM,
                                              pulse_times=(20e-12,))
        result = TransientSimulator(netlist).run(120e-12)
        energy = energy_per_pulse(result, pulse_count=1)
        switch = 100e-6 * PHI0
        assert 2 * switch < energy < 200 * switch


class TestMeasurement:
    def test_pulse_delay_raises_on_lost_pulse(self):
        netlist = Netlist()
        lib = SfqCellLibrary()
        netlist.add_junction("j1", "a", "gnd", lib.jj)
        netlist.add_junction("j2", "b", "gnd", lib.jj)
        netlist.add_resistor("r", "a", "b", 5.0)
        netlist.add_pulse("src", "a", (10e-12,), area=1e-18)  # too weak
        result = TransientSimulator(netlist).run(40e-12)
        with pytest.raises(SimulationError):
            pulse_delay(result, "j1", "j2")

    def test_window_energy_monotone(self):
        netlist, _ = build_ptl_link(0.1 * MM)
        result = TransientSimulator(netlist).run(80e-12)
        early = total_dissipated_energy(result, 0, 40e-12)
        full = total_dissipated_energy(result, 0, 80e-12)
        assert full >= early >= 0
